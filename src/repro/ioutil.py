"""Durable file-write helpers shared by every on-disk cache writer.

All persistent state in this repo (page-cache index + blobs, search-index
postings, the lint fingerprint table) follows one discipline: *atomic
rename with fsync*.  A writer never leaves a torn file where a reader
could find it — the bytes go to a sibling temp file, are flushed and
fsynced, and only then renamed over the destination (``os.replace`` is
atomic on POSIX and Windows).  A crash mid-write loses at most the new
version, never the old one.

``fsync`` is best-effort on the containing directory (some filesystems
refuse ``open(dir)``); the file-level fsync is the load-bearing one.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]

_counter = itertools.count()


def atomic_write_bytes(path: str | Path, data: bytes, fsync: bool = True) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename)."""
    path = Path(path)
    # The tmp name must be unique per write: concurrent writers of the
    # same destination (content-addressed stores hit this) would race on
    # a shared tmp file and the loser's rename would fail.
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_counter)}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str, fsync: bool = True,
                      encoding: str = "utf-8") -> Path:
    """Text flavour of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
