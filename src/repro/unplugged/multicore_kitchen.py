"""MulticoreKitchen: Giacaman's restaurant analogy, executable.

Cooks are cores, the head chef assigns dishes (tasks), counter space is
cache, the pantry is main memory, and the single stove is a shared
resource.  The simulation runs a dinner service and measures the
architectural phenomena the analogy maps:

* **scaling** -- more cooks cut service time until the shared stove
  saturates (contention puts a floor under the makespan),
* **cache behaviour** -- each cook's counter is a small LRU of
  ingredients; repeat dishes hit the counter, novel dishes force pantry
  trips, so a repetitive menu (locality) finishes faster than an
  eclectic one.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sync import Lock, Store

__all__ = ["run_multicore_kitchen"]

#: Dish -> (ingredients, prep time, stove time).
MENU: dict[str, tuple[tuple[str, ...], float, float]] = {
    "pasta": (("noodles", "tomato", "basil"), 1.0, 2.0),
    "stirfry": (("rice", "pepper", "soy"), 1.0, 1.5),
    "soup": (("stock", "tomato", "basil"), 0.5, 3.0),
    "salad": (("greens", "tomato", "nuts"), 1.5, 0.0),
    "curry": (("rice", "stock", "spice"), 1.0, 2.5),
}


def _service(
    classroom: Classroom,
    orders: list[str],
    cooks: int,
    counter_slots: int,
    pantry_trip: float,
) -> tuple[float, int, int]:
    """Run one dinner service; returns (time, counter hits, pantry trips)."""
    sim = Simulator()
    tickets = Store(sim, name="tickets")
    for order in orders:
        tickets.put(order)
    stove = Lock(sim, "stove")
    hits = trips = 0

    def cook(c: int):
        nonlocal hits, trips
        name = classroom.student(c % classroom.size)
        counter: list[str] = []              # this cook's LRU counter space
        while len(tickets) > 0:
            dish = yield tickets.get()
            ingredients, prep, stove_time = MENU[dish]
            for item in ingredients:
                if item in counter:
                    hits += 1
                    counter.remove(item)
                else:
                    trips += 1
                    yield sim.timeout(pantry_trip)
                    if len(counter) >= counter_slots:
                        counter.pop(0)
                counter.append(item)
            yield sim.timeout(prep * classroom.step_time(c % classroom.size))
            if stove_time > 0:
                yield stove.acquire(name)
                yield sim.timeout(stove_time)
                stove.release(name)

    for c in range(cooks):
        sim.process(cook(c), name=f"cook{c}")
    return sim.run(), hits, trips


def run_multicore_kitchen(
    classroom: Classroom,
    n_orders: int = 24,
    counter_slots: int = 4,
    pantry_trip: float = 0.6,
) -> ActivityResult:
    """Serve a dinner rush with 1, 2, and 4 cooks, on two menus."""
    if classroom.size < 4:
        raise SimulationError("the kitchen needs at least 4 students")
    rng = np.random.default_rng(classroom.seed + 907)
    dishes = sorted(MENU)
    eclectic = [dishes[int(rng.integers(len(dishes)))] for _ in range(n_orders)]
    # The repetitive menu is the SAME multiset of dishes, grouped into
    # runs -- identical total prep and stove work, different locality.
    repetitive = sorted(eclectic)

    result = ActivityResult(activity="MulticoreKitchen",
                            classroom_size=classroom.size)

    times: dict[int, float] = {}
    for cooks in (1, 2, 4):
        times[cooks], _, _ = _service(
            classroom, eclectic, cooks, counter_slots, pantry_trip
        )

    # Stove saturation: total stove time is serial whatever the cook count.
    stove_floor = sum(MENU[d][2] for d in eclectic)

    _, hits_ecl, trips_ecl = _service(
        classroom, eclectic, 2, counter_slots, pantry_trip
    )
    time_rep, hits_rep, trips_rep = _service(
        classroom, repetitive, 2, counter_slots, pantry_trip
    )
    time_ecl = times[2]
    hit_rate_ecl = hits_ecl / (hits_ecl + trips_ecl)
    hit_rate_rep = hits_rep / (hits_rep + trips_rep)

    result.metrics = {
        "orders": n_orders,
        "times_by_cooks": times,
        "stove_floor": stove_floor,
        "speedup_2": times[1] / times[2],
        "speedup_4": times[1] / times[4],
        "eclectic_hit_rate": hit_rate_ecl,
        "repetitive_hit_rate": hit_rate_rep,
        "repetitive_service_time": time_rep,
        "eclectic_service_time": time_ecl,
    }
    result.require("more_cooks_faster",
                   times[4] <= times[2] <= times[1] + 1e-9)
    result.require("stove_puts_floor_under_makespan",
                   times[4] >= stove_floor - 1e-9)
    result.require("sublinear_scaling_from_contention",
                   times[1] / times[4] < 4.0)
    result.require("locality_raises_hit_rate", hit_rate_rep > hit_rate_ecl)
    result.require("locality_cuts_pantry_trips", trips_rep < trips_ecl)
    # Same dish multiset, fewer pantry trips: the grouped menu can only be
    # slower through incidental scheduling noise, bounded tightly here.
    result.require("locality_speeds_service", time_rep <= time_ecl * 1.05 + 1e-9)
    return result
