"""JuiceSweeteningRobots: the Ben-Ari/Kolikant race scenario, executable.

Two robots share a kitchen; each runs "taste the juice; if not sweet, add
a spoon of sugar".  The simulation delivers the activity's three beats:

1. **Enumerate** -- every interleaving of the two robots' atomic steps,
   counting how many end with the juice double-sweetened (the shared
   check-then-act race).
2. **Detect** -- run one racy schedule through :class:`SharedMemory` and
   watch the lockset detector flag the race on the sugar cell.
3. **Fix** -- wrap each robot's check-and-add in the kitchen lock: every
   schedule now yields exactly one spoon, and the detector stays silent.
"""

from __future__ import annotations

from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.sharedmem import (
    SharedMemory,
    Step,
    explore_interleavings,
)

__all__ = ["run_juice_robots"]


def _robot_steps(robot: str) -> list[Step]:
    """The unsynchronized robot program as atomic steps."""
    def taste(state: dict, r: str = robot) -> None:
        state[f"{r}_saw_sweet"] = state["sugar"] > 0

    def add(state: dict, r: str = robot) -> None:
        if not state[f"{r}_saw_sweet"]:
            state["sugar"] += 1

    return [Step("taste", taste), Step("add", add)]


def _locked_robot_steps(robot: str) -> list[Step]:
    """The fixed program: check-then-act as one atomic step (lock held)."""
    def taste_and_add(state: dict) -> None:
        if state["sugar"] == 0:
            state["sugar"] += 1

    return [Step("taste_and_add", taste_and_add)]


def run_juice_robots(classroom: Classroom) -> ActivityResult:
    """Run the full three-beat dramatization (uses 2 of the students)."""
    result = ActivityResult(activity="JuiceSweeteningRobots",
                            classroom_size=classroom.size)
    a, b = classroom.student(0), classroom.student(1 % classroom.size)

    # Beat 1: exhaustive interleavings of the unsynchronized program.
    racy = explore_interleavings(
        {a: _robot_steps(a), b: _robot_steps(b)},
        initial_state={"sugar": 0},
        violates=lambda s: s["sugar"] != 1,
        outcome=lambda s: s["sugar"],
    )
    # Beat 1b: the same programs with the critical section made atomic.
    fixed = explore_interleavings(
        {a: _locked_robot_steps(a), b: _locked_robot_steps(b)},
        initial_state={"sugar": 0},
        violates=lambda s: s["sugar"] != 1,
        outcome=lambda s: s["sugar"],
    )

    # Beat 2: lockset detection on a racy schedule.
    mem = SharedMemory()
    mem.poke("sugar", 0)
    saw_a = mem.read("sugar", a) > 0          # A tastes
    saw_b = mem.read("sugar", b) > 0          # B tastes (interleaved)
    if not saw_a:
        mem.write("sugar", a, mem.peek("sugar") + 1)
    if not saw_b:
        mem.write("sugar", b, mem.peek("sugar") + 1)
    race_detected = bool(mem.races)
    oversweetened = mem.peek("sugar")

    # Beat 3: the same accesses under the kitchen lock.
    mem_fixed = SharedMemory()
    mem_fixed.poke("sugar", 0)
    for robot in (a, b):
        mem_fixed.lock_acquired(robot, "kitchen")
        if mem_fixed.read("sugar", robot) == 0:
            mem_fixed.write("sugar", robot, mem_fixed.peek("sugar") + 1)
        mem_fixed.lock_released(robot, "kitchen")
    fixed_clean = not mem_fixed.races

    for i, witness in enumerate(racy.witnesses[:3]):
        result.trace.record(float(i), a, "witness", " -> ".join(witness))

    result.metrics = {
        "interleavings": racy.total,
        "double_sugar_schedules": racy.violating,
        "violation_rate": racy.violation_rate,
        "outcome_histogram": dict(sorted(racy.outcomes.items())),
        "racy_final_sugar": oversweetened,
        "fixed_interleavings": fixed.total,
    }
    result.require("race_exists_unsynchronized", racy.violating > 0)
    result.require("detector_flags_race", race_detected)
    result.require("lock_eliminates_bad_outcomes", fixed.violating == 0)
    result.require("detector_silent_with_lock", fixed_clean)
    result.require("racy_schedule_oversweetens", oversweetened == 2)
    return result
