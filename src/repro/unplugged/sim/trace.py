"""Execution traces and their classroom-friendly rendering.

Every activity simulation returns a :class:`Trace`: a time-ordered list of
:class:`TraceEvent` records (who did what, when).  The text Gantt renderer
produces the same picture an instructor draws on the board -- one row per
student, one column per time step -- so a simulation run can be projected
during the unplugged activity it models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TraceEvent", "Trace", "render_gantt"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded action."""

    time: float
    actor: str
    kind: str
    detail: str = ""
    data: Any = None


@dataclass
class Trace:
    """An append-only, queryable event log."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, time: float, actor: str, kind: str,
               detail: str = "", data: Any = None) -> None:
        self.events.append(TraceEvent(time, actor, kind, detail, data))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def by_actor(self, actor: str) -> list[TraceEvent]:
        return [e for e in self.events if e.actor == actor]

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def actors(self) -> list[str]:
        return sorted({e.actor for e in self.events})

    @property
    def makespan(self) -> float:
        return max((e.time for e in self.events), default=0.0)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self.events if predicate(e)]


def render_gantt(
    trace: Trace,
    symbol: Callable[[TraceEvent], str] | None = None,
    slot: float = 1.0,
    max_width: int = 100,
) -> str:
    """Render a trace as a text Gantt chart (rows = actors, cols = time).

    ``symbol`` maps an event to a single display character (default: the
    first letter of its kind).  Events landing in the same cell keep the
    latest symbol.  Time is bucketed into ``slot``-sized columns.
    """
    if not trace.events:
        return "(empty trace)"
    symbol = symbol or (lambda e: (e.kind[:1] or "?"))
    actors = trace.actors()
    columns = int(trace.makespan / slot) + 1
    columns = min(columns, max_width)
    grid = {a: ["."] * columns for a in actors}
    for event in trace.events:
        col = min(int(event.time / slot), columns - 1)
        grid[event.actor][col] = symbol(event)[:1]
    width = max(len(a) for a in actors)
    header = " " * (width + 2) + "".join(str(i % 10) for i in range(columns))
    lines = [header]
    for actor in actors:
        lines.append(f"{actor.rjust(width)}  {''.join(grid[actor])}")
    return "\n".join(lines)
