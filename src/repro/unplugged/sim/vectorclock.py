"""Happens-before race detection with vector clocks.

A second, more precise race detector to pair with the Eraser-style
lockset detector in :mod:`repro.unplugged.sim.sharedmem`:

* the **lockset** detector asks "was there *some* lock protecting every
  access?" -- simple, order-insensitive, but it reports false positives
  for accesses that were ordered by synchronization without a common lock
  (e.g. fork/join hand-offs);
* the **happens-before** detector tracks a vector clock per actor,
  advanced on local steps and joined across explicit synchronization
  edges (lock release -> subsequent acquire, message send -> receive,
  fork -> child start, child end -> join).  Two conflicting accesses race
  iff neither happens-before the other.

The juice-robots schedule is racy under both; a fork/join hand-off is racy
under lockset but clean under happens-before -- the ablation the detector
comparison benchmark stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.errors import RaceConditionError, SimulationError

__all__ = ["VectorClock", "HBAccess", "HBRace", "HappensBeforeDetector"]


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock keyed by actor name."""

    clocks: tuple[tuple[str, int], ...] = ()

    def get(self, actor: str) -> int:
        for name, value in self.clocks:
            if name == actor:
                return value
        return 0

    def tick(self, actor: str) -> "VectorClock":
        items = dict(self.clocks)
        items[actor] = items.get(actor, 0) + 1
        return VectorClock(tuple(sorted(items.items())))

    def join(self, other: "VectorClock") -> "VectorClock":
        items = dict(self.clocks)
        for name, value in other.clocks:
            items[name] = max(items.get(name, 0), value)
        return VectorClock(tuple(sorted(items.items())))

    def happens_before(self, other: "VectorClock") -> bool:
        """True iff self < other (<= componentwise, and != )."""
        if self.clocks == other.clocks:
            return False
        others = dict(other.clocks)
        for name, value in self.clocks:
            if value > others.get(name, 0):
                return False
        return True

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.happens_before(other) and not other.happens_before(self)


@dataclass(frozen=True)
class HBAccess:
    """One access stamped with the actor's clock at access time."""

    location: str
    actor: str
    kind: str              # "read" | "write"
    clock: VectorClock
    index: int

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


@dataclass(frozen=True)
class HBRace:
    location: str
    first: HBAccess
    second: HBAccess

    def describe(self) -> str:
        return (
            f"happens-before race on {self.location!r}: "
            f"{self.first.actor} {self.first.kind} || "
            f"{self.second.actor} {self.second.kind}"
        )


@dataclass
class _LocationHistory:
    reads: list[HBAccess] = field(default_factory=list)
    writes: list[HBAccess] = field(default_factory=list)


class HappensBeforeDetector:
    """Track actors' vector clocks and flag concurrent conflicting accesses.

    Synchronization edges are reported explicitly by the caller:

    * :meth:`sync_release` / :meth:`sync_acquire` -- lock (or message)
      hand-off: the acquirer joins the releaser's clock at release time.
    * :meth:`fork` / :meth:`join` -- parent/child ordering.
    """

    def __init__(self, on_race: str = "record"):
        if on_race not in ("record", "raise", "ignore"):
            raise SimulationError(f"unknown race policy {on_race!r}")
        self.on_race = on_race
        self._clocks: dict[str, VectorClock] = {}
        self._released: dict[str, VectorClock] = {}
        self._history: dict[str, _LocationHistory] = {}
        self.accesses: list[HBAccess] = []
        self.races: list[HBRace] = []

    # -- clock plumbing ----------------------------------------------------------

    def _clock_of(self, actor: str) -> VectorClock:
        return self._clocks.setdefault(actor, VectorClock())

    def _advance(self, actor: str) -> VectorClock:
        clock = self._clock_of(actor).tick(actor)
        self._clocks[actor] = clock
        return clock

    # -- synchronization edges ------------------------------------------------------

    def sync_release(self, actor: str, token: str) -> None:
        """Actor releases a sync token (lock, channel, ...)."""
        self._released[token] = self._advance(actor)

    def sync_acquire(self, actor: str, token: str) -> None:
        """Actor acquires a token: joins the last releaser's clock."""
        self._advance(actor)
        released = self._released.get(token)
        if released is not None:
            self._clocks[actor] = self._clocks[actor].join(released)

    def fork(self, parent: str, child: str) -> None:
        """Child starts after the parent's fork point."""
        point = self._advance(parent)
        self._clocks[child] = self._clock_of(child).join(point).tick(child)

    def join(self, parent: str, child: str) -> None:
        """Parent continues after the child's last step."""
        end = self._advance(child)
        self._clocks[parent] = self._clock_of(parent).join(end).tick(parent)

    # -- accesses ----------------------------------------------------------------------

    def read(self, location: str, actor: str) -> None:
        self._record(location, actor, "read")

    def write(self, location: str, actor: str) -> None:
        self._record(location, actor, "write")

    def _record(self, location: str, actor: str, kind: str) -> None:
        clock = self._advance(actor)
        access = HBAccess(location, actor, kind, clock, len(self.accesses))
        self.accesses.append(access)
        history = self._history.setdefault(location, _LocationHistory())

        conflicts: list[HBAccess] = list(history.writes)
        if access.is_write:
            conflicts += history.reads
        for prior in conflicts:
            if prior.actor != actor and prior.clock.concurrent_with(clock):
                race = HBRace(location, prior, access)
                if self.on_race != "ignore":
                    self.races.append(race)
                if self.on_race == "raise":
                    raise RaceConditionError(race.describe(), races=[race])
                break

        (history.writes if access.is_write else history.reads).append(access)

    @property
    def racy_locations(self) -> list[str]:
        return sorted({r.location for r in self.races})
