"""Task graphs: dependencies, work/span, critical paths, list scheduling.

The TCPP topics ``C_DependencyGraphs`` and ``C_TaskGraphs`` — and the
activities that teach them (ParallelRecipeCooking's recipe plan,
SpeedupJigsaw's puzzle structure, ParallelAdditionCards' adding tree) —
need a task-graph substrate: a DAG of tasks with durations, from which we
compute *work* (total duration), *span* (critical path), and schedules on
``p`` workers with the classic list-scheduling algorithm, all checkable
against Brent's bounds.

Built on networkx for cycle detection and topological order; scheduling is
deterministic (ready tasks are served in priority order, ties by name).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable

import networkx as nx

from repro.errors import SimulationError
from repro.unplugged.sim.metrics import brent_time_bounds

__all__ = ["Task", "TaskGraph", "Schedule", "ScheduledTask"]


@dataclass(frozen=True)
class Task:
    """One unit of work in the graph."""

    name: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"task {self.name!r} has negative duration")


@dataclass(frozen=True)
class ScheduledTask:
    """A task placed on a worker's timeline."""

    task: str
    worker: int
    start: float
    finish: float


@dataclass
class Schedule:
    """The result of scheduling a task graph on ``workers`` workers."""

    workers: int
    entries: list[ScheduledTask] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max((e.finish for e in self.entries), default=0.0)

    def timeline(self, worker: int) -> list[ScheduledTask]:
        return sorted(
            (e for e in self.entries if e.worker == worker),
            key=lambda e: e.start,
        )

    def busy_time(self, worker: int) -> float:
        return sum(e.finish - e.start for e in self.timeline(worker))

    @property
    def total_idle(self) -> float:
        return self.workers * self.makespan - sum(
            e.finish - e.start for e in self.entries
        )

    def start_of(self, task: str) -> float:
        for e in self.entries:
            if e.task == task:
                return e.start
        raise SimulationError(f"task {task!r} not in schedule")

    def finish_of(self, task: str) -> float:
        for e in self.entries:
            if e.task == task:
                return e.finish
        raise SimulationError(f"task {task!r} not in schedule")

    def gantt_rows(self) -> list[str]:
        """One text row per worker, for classroom display."""
        rows = []
        for w in range(self.workers):
            cells = [
                f"[{e.start:.0f}-{e.finish:.0f} {e.task}]"
                for e in self.timeline(w)
            ]
            rows.append(f"cook{w}: " + " ".join(cells))
        return rows


class TaskGraph:
    """A DAG of :class:`Task`\\ s with dependency edges."""

    def __init__(self):
        self._graph = nx.DiGraph()

    # -- construction ---------------------------------------------------------

    def add_task(self, name: str, duration: float,
                 deps: Iterable[str] = ()) -> Task:
        if name in self._graph:
            raise SimulationError(f"duplicate task {name!r}")
        task = Task(name, float(duration))
        self._graph.add_node(name, task=task)
        for dep in deps:
            if dep not in self._graph:
                raise SimulationError(f"unknown dependency {dep!r} of {name!r}")
            self._graph.add_edge(dep, name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(name)
            raise SimulationError(f"adding {name!r} would create a cycle")
        return task

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def tasks(self) -> list[Task]:
        return [self._graph.nodes[n]["task"] for n in self._graph.nodes]

    def task(self, name: str) -> Task:
        try:
            return self._graph.nodes[name]["task"]
        except KeyError:
            raise SimulationError(f"unknown task {name!r}") from None

    def dependencies(self, name: str) -> list[str]:
        return sorted(self._graph.predecessors(name))

    def dependents(self, name: str) -> list[str]:
        return sorted(self._graph.successors(name))

    # -- cost measures -----------------------------------------------------------

    @property
    def work(self) -> float:
        """T1: total duration of all tasks."""
        return sum(t.duration for t in self.tasks)

    @property
    def span(self) -> float:
        """T-infinity: the critical-path duration."""
        if len(self) == 0:
            return 0.0
        finish: dict[str, float] = {}
        for name in nx.topological_sort(self._graph):
            ready = max(
                (finish[p] for p in self._graph.predecessors(name)), default=0.0
            )
            finish[name] = ready + self.task(name).duration
        return max(finish.values())

    def critical_path(self) -> list[str]:
        """One longest (duration-weighted) chain through the graph."""
        if len(self) == 0:
            return []
        finish: dict[str, float] = {}
        parent: dict[str, str | None] = {}
        for name in nx.topological_sort(self._graph):
            preds = list(self._graph.predecessors(name))
            if preds:
                best = max(preds, key=lambda p: finish[p])
                start = finish[best]
                parent[name] = best
            else:
                start = 0.0
                parent[name] = None
            finish[name] = start + self.task(name).duration
        tail = max(finish, key=finish.get)
        path = [tail]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        return list(reversed(path))

    def max_parallelism(self) -> float:
        """The average parallelism W/S (upper bound on useful workers)."""
        span = self.span
        return self.work / span if span > 0 else 0.0

    # -- scheduling ---------------------------------------------------------------

    def list_schedule(
        self,
        workers: int,
        priority: Callable[[Task], float] | None = None,
    ) -> Schedule:
        """Greedy list scheduling on ``workers`` identical workers.

        Ready tasks are dispatched to free workers in priority order
        (default: critical-path-first, i.e. longest downstream chain).
        Deterministic: ties break on task name.
        """
        if workers < 1:
            raise SimulationError("need at least one worker")
        if priority is None:
            downstream = self._downstream_lengths()
            rank = lambda t: downstream[t.name]          # noqa: E731
        else:
            rank = priority

        indegree = {n: self._graph.in_degree(n) for n in self._graph.nodes}
        ready = [
            (-rank(self.task(n)), n) for n, d in indegree.items() if d == 0
        ]
        heapq.heapify(ready)
        # (free_at, worker) heap; workers all free at t=0.
        free = [(0.0, w) for w in range(workers)]
        heapq.heapify(free)
        earliest: dict[str, float] = {n: 0.0 for n in self._graph.nodes}
        schedule = Schedule(workers=workers)
        # Completed-event heap to release dependents.
        pending: list[tuple[float, str]] = []
        scheduled = 0
        now = 0.0

        while scheduled < len(self):
            while ready:
                _, name = heapq.heappop(ready)
                free_at, worker = heapq.heappop(free)
                start = max(free_at, earliest[name])
                dur = self.task(name).duration
                finish = start + dur
                schedule.entries.append(
                    ScheduledTask(name, worker, start, finish)
                )
                heapq.heappush(free, (finish, worker))
                heapq.heappush(pending, (finish, name))
                scheduled += 1
            if scheduled >= len(self):
                break
            if not pending:
                raise SimulationError("cycle or unreachable tasks in graph")
            finish, done = heapq.heappop(pending)
            now = finish
            releases: list[tuple[float, str]] = []
            # Drain all completions at this instant.
            batch = [done]
            while pending and pending[0][0] <= now:
                batch.append(heapq.heappop(pending)[1])
            for done_name in batch:
                for succ in self._graph.successors(done_name):
                    indegree[succ] -= 1
                    earliest[succ] = max(earliest[succ], now)
                    if indegree[succ] == 0:
                        heapq.heappush(
                            ready, (-rank(self.task(succ)), succ)
                        )
        return schedule

    def _downstream_lengths(self) -> dict[str, float]:
        """Longest duration-weighted path from each task to a sink."""
        lengths: dict[str, float] = {}
        for name in reversed(list(nx.topological_sort(self._graph))):
            succ = [lengths[s] for s in self._graph.successors(name)]
            lengths[name] = self.task(name).duration + (max(succ) if succ else 0.0)
        return lengths

    def verify_schedule(self, schedule: Schedule) -> None:
        """Check a schedule is valid: every task once, deps respected,
        no worker overlap, makespan within Brent's bounds."""
        names = [e.task for e in schedule.entries]
        if sorted(names) != sorted(t.name for t in self.tasks):
            raise SimulationError("schedule does not cover the task set exactly")
        finish = {e.task: e.finish for e in schedule.entries}
        start = {e.task: e.start for e in schedule.entries}
        for e in schedule.entries:
            if abs((e.finish - e.start) - self.task(e.task).duration) > 1e-9:
                raise SimulationError(f"task {e.task!r} duration mismatch")
            for dep in self._graph.predecessors(e.task):
                if start[e.task] < finish[dep] - 1e-9:
                    raise SimulationError(
                        f"task {e.task!r} starts before dependency {dep!r} finishes"
                    )
        for w in range(schedule.workers):
            timeline = schedule.timeline(w)
            for a, b in zip(timeline, timeline[1:]):
                if b.start < a.finish - 1e-9:
                    raise SimulationError(f"worker {w} double-booked")
        lo, hi = brent_time_bounds(self.work, self.span, schedule.workers)
        if schedule.makespan < lo - 1e-9:
            raise SimulationError("makespan below the work/span lower bound")
        if schedule.makespan > hi + 1e-9:
            raise SimulationError("makespan above Brent's upper bound")
