"""``repro.unplugged.sim``: the simulated-classroom substrate.

* :mod:`engine` -- deterministic discrete-event kernel (events, processes,
  deadlock detection).
* :mod:`sync` -- locks, semaphores, barriers, bounded buffers.
* :mod:`comm` -- mpi4py-style message passing with the α-β cost model.
* :mod:`sharedmem` -- shared cells with lockset race detection, plus the
  exhaustive interleaving explorer.
* :mod:`topology` -- interconnect shapes (ring/star/mesh/torus/hypercube).
* :mod:`metrics` -- speedup, efficiency, Amdahl, Gustafson, Karp-Flatt,
  Brent bounds.
* :mod:`vectorclock` -- happens-before race detection (vector clocks).
* :mod:`dag` -- task graphs: work/span, critical paths, list scheduling.
* :mod:`trace` -- structured traces and text Gantt rendering.
* :mod:`classroom` -- rosters of students-as-processors and the uniform
  :class:`ActivityResult`.
"""

from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.comm import ANY, Communicator, CostModel, Endpoint, Message
from repro.unplugged.sim.engine import Event, Process, Simulator
from repro.unplugged.sim.metrics import (
    amdahl_limit,
    amdahl_speedup,
    brent_time_bounds,
    efficiency,
    gustafson_speedup,
    karp_flatt,
    phone_call_cost,
    speedup,
    speedup_curve,
)
from repro.unplugged.sim.sharedmem import (
    Access,
    Race,
    SharedMemory,
    Step,
    count_interleavings,
    explore_interleavings,
)
from repro.unplugged.sim.dag import Schedule, Task, TaskGraph
from repro.unplugged.sim.sync import Barrier, Lock, Semaphore, Store
from repro.unplugged.sim.topology import Topology
from repro.unplugged.sim.vectorclock import HappensBeforeDetector, VectorClock
from repro.unplugged.sim.trace import Trace, TraceEvent, render_gantt

__all__ = [
    "ANY",
    "Access",
    "ActivityResult",
    "Barrier",
    "Classroom",
    "Communicator",
    "CostModel",
    "Endpoint",
    "Event",
    "Lock",
    "Message",
    "Process",
    "Race",
    "Semaphore",
    "SharedMemory",
    "Schedule",
    "Simulator",
    "Step",
    "Task",
    "TaskGraph",
    "Store",
    "Topology",
    "Trace",
    "TraceEvent",
    "VectorClock",
    "HappensBeforeDetector",
    "amdahl_limit",
    "amdahl_speedup",
    "brent_time_bounds",
    "count_interleavings",
    "efficiency",
    "explore_interleavings",
    "gustafson_speedup",
    "karp_flatt",
    "phone_call_cost",
    "render_gantt",
    "speedup",
    "speedup_curve",
]
