"""Parallel performance metrics: the numbers the speedup analogies teach.

ExamGradingSpeedup has students compute speedup and efficiency;
RoadTripAmdahl has them find the plateau.  This module is the quantitative
backbone: speedup, efficiency, Amdahl's and Gustafson's laws, the
Karp-Flatt experimentally-determined serial fraction, Brent's theorem
bounds from work and span, and the α-β phone-call cost calculation.
Vectorized (numpy) variants back the benchmark sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "speedup",
    "efficiency",
    "amdahl_speedup",
    "amdahl_limit",
    "gustafson_speedup",
    "karp_flatt",
    "brent_time_bounds",
    "cost",
    "is_cost_optimal",
    "phone_call_cost",
    "speedup_curve",
]


def speedup(t_serial: float, t_parallel: float) -> float:
    """S = T1 / Tp."""
    if t_serial <= 0 or t_parallel <= 0:
        raise SimulationError("times must be positive")
    return t_serial / t_parallel


def efficiency(t_serial: float, t_parallel: float, workers: int) -> float:
    """E = S / p."""
    if workers < 1:
        raise SimulationError("workers must be >= 1")
    return speedup(t_serial, t_parallel) / workers


def amdahl_speedup(serial_fraction: float, workers: int | np.ndarray) -> float | np.ndarray:
    """Amdahl's law: S(p) = 1 / (s + (1-s)/p)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise SimulationError("serial fraction must be in [0, 1]")
    p = np.asarray(workers, dtype=float)
    if np.any(p < 1):
        raise SimulationError("workers must be >= 1")
    result = 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)
    return float(result) if np.isscalar(workers) or result.ndim == 0 else result


def amdahl_limit(serial_fraction: float) -> float:
    """The speedup plateau: lim p->inf S(p) = 1/s."""
    if not 0.0 < serial_fraction <= 1.0:
        raise SimulationError("serial fraction must be in (0, 1] for a finite limit")
    return 1.0 / serial_fraction


def gustafson_speedup(serial_fraction: float, workers: int | np.ndarray) -> float | np.ndarray:
    """Gustafson's law (scaled speedup): S(p) = p - s * (p - 1)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise SimulationError("serial fraction must be in [0, 1]")
    p = np.asarray(workers, dtype=float)
    result = p - serial_fraction * (p - 1.0)
    return float(result) if np.isscalar(workers) or result.ndim == 0 else result


def karp_flatt(measured_speedup: float, workers: int) -> float:
    """The experimentally determined serial fraction e = (1/S - 1/p)/(1 - 1/p)."""
    if workers < 2:
        raise SimulationError("Karp-Flatt needs at least 2 workers")
    if measured_speedup <= 0:
        raise SimulationError("speedup must be positive")
    return (1.0 / measured_speedup - 1.0 / workers) / (1.0 - 1.0 / workers)


def brent_time_bounds(work: float, span: float, workers: int) -> tuple[float, float]:
    """Brent's theorem: max(W/p, S) <= Tp <= W/p + S.

    ``work`` is total operations (T1), ``span`` the critical path (Tinf).
    """
    if workers < 1:
        raise SimulationError("workers must be >= 1")
    if span > work:
        raise SimulationError("span cannot exceed work")
    lower = max(work / workers, span)
    upper = work / workers + span
    return lower, upper


def cost(t_parallel: float, workers: int) -> float:
    """Parallel cost C = p * Tp."""
    return workers * t_parallel


def is_cost_optimal(t_serial: float, t_parallel: float, workers: int,
                    slack: float = 2.0) -> bool:
    """Cost-optimal up to a constant factor: p*Tp <= slack * T1."""
    return cost(t_parallel, workers) <= slack * t_serial


def phone_call_cost(
    messages: int | np.ndarray,
    total_units: float,
    alpha: float,
    beta: float,
) -> float | np.ndarray:
    """Total cost of sending ``total_units`` of data in ``messages`` calls.

    cost = messages * alpha + total_units * beta: the long-distance
    phone-call arithmetic (many short calls pay alpha repeatedly).
    """
    m = np.asarray(messages, dtype=float)
    if np.any(m < 1):
        raise SimulationError("at least one message is required")
    result = m * alpha + total_units * beta
    return float(result) if np.isscalar(messages) or result.ndim == 0 else result


def speedup_curve(t_serial: float, times_by_workers: dict[int, float]) -> dict[int, dict[str, float]]:
    """Speedup/efficiency table for a measured scaling run."""
    out: dict[int, dict[str, float]] = {}
    for p in sorted(times_by_workers):
        tp = times_by_workers[p]
        s = speedup(t_serial, tp)
        out[p] = {
            "time": tp,
            "speedup": s,
            "efficiency": s / p,
        }
    return out
