"""Synchronization primitives for the simulated classroom.

Locks, semaphores, barriers, and a FIFO store (bounded buffer), all built
on the event kernel.  These are the constructs the curated activities
dramatize -- the relay activity's pen is a :class:`Lock`, the dining
philosophers' pens are five locks whose circular acquisition the engine's
deadlock detector exposes, and pipeline hand-offs are :class:`Store`\\ s.

All primitives are FIFO-fair: waiters are served in arrival order, which
keeps simulations deterministic and lets tests assert exact schedules.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.unplugged.sim.engine import Event, Simulator

__all__ = ["Lock", "Semaphore", "Barrier", "Store"]


class Lock:
    """A FIFO mutual-exclusion lock.

    Usage inside a process::

        yield lock.acquire("alice")
        ...critical section...
        lock.release("alice")
    """

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self.owner: str | None = None
        self._waiters: deque[tuple[str, Event]] = deque()
        self.acquisitions = 0

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def acquire(self, actor: str) -> Event:
        """Request the lock; the returned event fires when it is held."""
        ev = self.sim.event(name=f"{self.name}.acquire({actor})")
        if self.owner is None and not self._waiters:
            self.owner = actor
            self.acquisitions += 1
            ev.succeed(actor)
        else:
            self._waiters.append((actor, ev))
        return ev

    def release(self, actor: str) -> None:
        if self.owner != actor:
            raise SimulationError(
                f"{self.name}: {actor!r} released a lock owned by {self.owner!r}"
            )
        if self._waiters:
            next_actor, ev = self._waiters.popleft()
            self.owner = next_actor
            self.acquisitions += 1
            ev.succeed(next_actor)
        else:
            self.owner = None

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Semaphore:
    """A counting semaphore with FIFO waiters."""

    def __init__(self, sim: Simulator, value: int, name: str = "sem"):
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.acquire")
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Barrier:
    """A reusable cyclic barrier for ``parties`` processes.

    ``yield barrier.wait()`` blocks until all parties of the current
    generation have arrived; the event's value is the generation number.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier"):
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self.name = name
        self.generation = 0
        self._arrived: list[Event] = []

    def wait(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.wait(gen={self.generation})")
        self._arrived.append(ev)
        if len(self._arrived) == self.parties:
            generation = self.generation
            self.generation += 1
            arrived, self._arrived = self._arrived, []
            for waiter in arrived:
                waiter.succeed(generation)
        return ev

    @property
    def waiting(self) -> int:
        return len(self._arrived)


class Store:
    """A FIFO buffer connecting producers and consumers.

    ``capacity=None`` means unbounded.  ``put`` blocks when full, ``get``
    blocks when empty -- the synchronized queue CS2013 PCC outcome 6 asks
    about, and the hand-off between pipeline stages.
    """

    def __init__(self, sim: Simulator, capacity: int | None = None, name: str = "store"):
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 (or None)")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = self.sim.event(name=f"{self.name}.put")
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            self.total_put += 1
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.total_put += 1
            ev.succeed()
        else:
            self._putters.append((item, ev))
        return ev

    def get(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pending_item, put_ev = self._putters.popleft()
                self._items.append(pending_item)
                self.total_put += 1
                put_ev.succeed()
            ev.succeed(item)
        elif self._putters:
            pending_item, put_ev = self._putters.popleft()
            self.total_put += 1
            put_ev.succeed()
            ev.succeed(pending_item)
        else:
            self._getters.append(ev)
        return ev
