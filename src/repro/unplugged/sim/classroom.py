"""The simulated classroom: students as processors.

Nearly every curated activity follows "an operational view of computing,
where people act as processes or processors" (paper §III-A).
:class:`Classroom` is that cast: a deterministic roster of named students,
a seeded RNG for shuffles and dealt cards, and per-student step-time
variation (students compare cards at slightly different speeds, which is
what makes load imbalance and stragglers observable in the simulations).

:class:`ActivityResult` is the uniform return type of every activity
simulation: the trace, the metrics the instructor would put on the board,
and the invariant checks that must hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.trace import Trace

__all__ = ["Classroom", "ActivityResult", "ROSTER_NAMES"]

#: Name pool for rosters (cycled with numeric suffixes past its length).
ROSTER_NAMES: tuple[str, ...] = (
    "Ada", "Ben", "Cam", "Dot", "Eli", "Fay", "Gus", "Hal",
    "Ivy", "Jo", "Kai", "Lou", "Mia", "Ned", "Ona", "Pat",
    "Quinn", "Rae", "Sam", "Tess", "Uma", "Vic", "Wes", "Xan",
    "Yara", "Zed",
)


@dataclass
class Classroom:
    """A deterministic roster of students acting as processors."""

    size: int
    seed: int = 0
    base_step_time: float = 1.0
    step_time_jitter: float = 0.0   # fraction of base time, e.g. 0.2

    def __post_init__(self) -> None:
        if self.size < 1:
            raise SimulationError("classroom needs at least one student")
        if not 0.0 <= self.step_time_jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")
        self.rng = np.random.default_rng(self.seed)
        # Per-student step times, fixed for the classroom's lifetime.
        jitter = self.rng.uniform(
            -self.step_time_jitter, self.step_time_jitter, size=self.size
        )
        self._step_times = self.base_step_time * (1.0 + jitter)

    @property
    def students(self) -> list[str]:
        names = []
        for i in range(self.size):
            base = ROSTER_NAMES[i % len(ROSTER_NAMES)]
            suffix = i // len(ROSTER_NAMES)
            names.append(base if suffix == 0 else f"{base}{suffix + 1}")
        return names

    def student(self, rank: int) -> str:
        if not 0 <= rank < self.size:
            raise SimulationError(f"no student at rank {rank}")
        return self.students[rank]

    def step_time(self, rank: int) -> float:
        """How long one unit of work takes this student."""
        return float(self._step_times[rank])

    def deal_cards(self, n_cards: int, low: int = 1, high: int = 100) -> list[int]:
        """Deal a deterministic shuffled hand of distinct card values."""
        if n_cards > high - low + 1:
            raise SimulationError("not enough distinct card values")
        values = self.rng.choice(np.arange(low, high + 1), size=n_cards, replace=False)
        return [int(v) for v in values]

    def shuffle(self, items: list) -> list:
        """Deterministic shuffle (a new list; the input is untouched)."""
        order = self.rng.permutation(len(items))
        return [items[i] for i in order]


@dataclass
class ActivityResult:
    """Uniform result of one activity simulation run."""

    activity: str
    classroom_size: int
    trace: Trace = field(default_factory=Trace)
    metrics: dict[str, Any] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)
    output: Any = None

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def require(self, name: str, condition: bool) -> None:
        """Record an invariant check."""
        self.checks[name] = bool(condition)

    def summary(self) -> str:
        lines = [f"{self.activity} (n={self.classroom_size})"]
        for key, value in self.metrics.items():
            if isinstance(value, float):
                lines.append(f"  {key}: {value:.3f}")
            else:
                lines.append(f"  {key}: {value}")
        status = "PASS" if self.all_checks_pass else "FAIL"
        failing = [k for k, ok in self.checks.items() if not ok]
        lines.append(f"  checks: {status}" + (f" (failing: {failing})" if failing else ""))
        return "\n".join(lines)
