"""Message passing for the simulated classroom, in the mpi4py idiom.

Activities like DesertIslandsDistributedMemory and LongDistancePhoneCall
teach that distributed memory means *explicit, costed* communication.  This
module provides that substrate: a :class:`Communicator` connecting ``size``
ranks, each driven by a generator receiving an :class:`Endpoint` -- the
API deliberately mirrors mpi4py's lowercase pickled-object methods
(``send`` / ``recv`` / ``bcast`` / ``scatter`` / ``gather`` / ``reduce`` /
``allreduce`` / ``barrier`` / ``scan``), so students graduating from the
simulation to real MPI see the same verbs.

Costs follow the α-β (latency/bandwidth) model the phone-call analogy
dramatizes: delivering a message of size *s* over *h* topology hops takes
``h*alpha + s*beta``.  Collectives are implemented *as algorithms over
point-to-point messages* (binomial trees, linear scans), so their costs and
message counts emerge from the model instead of being postulated -- the
communication-overhead benchmark sweeps α to find the crossover the
analogy predicts.

Two send flavours matter pedagogically:

* :meth:`Endpoint.send` -- eager/buffered: completes immediately, the
  message arrives after the transfer delay.
* :meth:`Endpoint.ssend` -- synchronous/rendezvous: completes only when a
  matching receive is posted.  Two ranks ssend-ing to each other deadlock,
  which is exactly CS2013 outcome PCC-3 ("a scenario in which blocking
  message sends can deadlock") and the engine's detector reports it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.errors import CommunicationError
from repro.unplugged.sim.engine import Event, Process, ProcessGen, Simulator

__all__ = ["ANY", "CostModel", "Message", "CommStats", "Communicator", "Endpoint"]

#: Wildcard for ``recv(source=ANY)`` / ``recv(tag=ANY)``.
ANY = -1


def default_size_of(payload: Any) -> int:
    """Message 'size' for the cost model: element count when sized, else 1."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, str)):
        return len(payload)
    try:
        return len(payload)  # type: ignore[arg-type]
    except TypeError:
        return 1


@dataclass(frozen=True)
class CostModel:
    """The α-β communication cost model.

    ``alpha`` is the per-hop latency (the phone call's connection charge),
    ``beta`` the per-unit transfer time (the per-minute charge).
    """

    alpha: float = 1.0
    beta: float = 0.01
    size_of: Callable[[Any], int] = default_size_of

    def transfer_time(self, payload: Any, hops: int = 1) -> float:
        if hops < 1:
            hops = 1
        return hops * self.alpha + self.size_of(payload) * self.beta


@dataclass(frozen=True)
class Message:
    """A delivered message."""

    source: int
    dest: int
    tag: int
    data: Any
    sent_at: float
    received_at: float


@dataclass
class CommStats:
    """Counters the benchmarks report."""

    messages: int = 0
    total_size: int = 0
    per_rank_sent: dict[int, int] = field(default_factory=dict)

    def record(self, source: int, size: int) -> None:
        self.messages += 1
        self.total_size += size
        self.per_rank_sent[source] = self.per_rank_sent.get(source, 0) + 1


class Communicator:
    """A world of ``size`` ranks exchanging messages through one medium."""

    def __init__(
        self,
        sim: Simulator,
        size: int,
        cost_model: CostModel | None = None,
        topology: "object | None" = None,
    ):
        if size < 1:
            raise CommunicationError(f"communicator size must be >= 1, got {size}")
        self.sim = sim
        self.size = size
        self.cost = cost_model or CostModel()
        self.topology = topology   # anything exposing .hops(src, dst)
        self.stats = CommStats()
        # Per-rank inbox of undelivered messages and pending receives.
        self._inbox: list[deque[Message]] = [deque() for _ in range(size)]
        self._recv_waiters: list[deque[tuple[int, int, Event]]] = [
            deque() for _ in range(size)
        ]
        # Pending rendezvous sends: per-dest deque of (message, completion event).
        self._pending_ssends: list[deque[tuple[Message, Event]]] = [
            deque() for _ in range(size)
        ]
        # FIFO wire discipline: per (src, dst) pair, deliveries never
        # overtake -- a later small message queues behind an earlier large
        # one on the same link.
        self._last_arrival: dict[tuple[int, int], float] = {}

    # -- setup ----------------------------------------------------------------

    def endpoint(self, rank: int) -> "Endpoint":
        self._check_rank(rank)
        return Endpoint(self, rank)

    def launch(
        self,
        program: Callable[["Endpoint"], ProcessGen],
        ranks: range | None = None,
    ) -> list[Process]:
        """Start ``program(endpoint)`` as a process on every rank (SPMD)."""
        procs = []
        for rank in ranks or range(self.size):
            ep = self.endpoint(rank)
            procs.append(self.sim.process(program(ep), name=f"rank{rank}"))
        return procs

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise CommunicationError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )

    def _hops(self, source: int, dest: int) -> int:
        if self.topology is None or source == dest:
            return 1
        return int(self.topology.hops(source, dest))

    # -- transport -------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        """Message has arrived at its destination at the current time."""
        waiters = self._recv_waiters[message.dest]
        for i, (src_want, tag_want, ev) in enumerate(waiters):
            if _matches(src_want, tag_want, message):
                del waiters[i]
                ev.succeed(message)
                return
        self._inbox[message.dest].append(message)

    def _post_send(self, source: int, dest: int, tag: int, data: Any) -> float:
        """Schedule delivery; returns the transfer time.

        Delivery respects the per-pair FIFO wire: the arrival time is at
        least the previous message's arrival on the same (source, dest)
        link, so messages between a pair never overtake.
        """
        self._check_rank(dest)
        delay = self.cost.transfer_time(data, self._hops(source, dest))
        self.stats.record(source, self.cost.size_of(data))
        sent_at = self.sim.now

        pair = (source, dest)
        arrival_time = max(sent_at + delay, self._last_arrival.get(pair, 0.0))
        self._last_arrival[pair] = arrival_time

        arrival = self.sim.timeout(
            arrival_time - sent_at, name=f"msg {source}->{dest} tag={tag}"
        )
        arrival.add_callback(
            lambda _ev: self._deliver(
                Message(source, dest, tag, data, sent_at, self.sim.now)
            )
        )
        return arrival_time - sent_at


def _matches(src_want: int, tag_want: int, message: Message) -> bool:
    return (src_want in (ANY, message.source)) and (tag_want in (ANY, message.tag))


class Endpoint:
    """One rank's view of the communicator (``comm`` in MPI programs)."""

    def __init__(self, comm: Communicator, rank: int):
        self.comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def sim(self) -> Simulator:
        return self.comm.sim

    # -- point to point -------------------------------------------------------

    def send(self, dest: int, data: Any, tag: int = 0) -> Event:
        """Eager (buffered) send: completes immediately; delivery is delayed."""
        self.comm._post_send(self.rank, dest, tag, data)
        ev = self.sim.event(name=f"send {self.rank}->{dest}")
        ev.succeed()
        return ev

    def ssend(self, dest: int, data: Any, tag: int = 0) -> Event:
        """Synchronous (rendezvous) send: completes when a receive matches."""
        self.comm._check_rank(dest)
        done = self.sim.event(name=f"ssend {self.rank}->{dest}")
        message = Message(self.rank, dest, tag, data, self.sim.now, self.sim.now)
        waiters = self.comm._recv_waiters[dest]
        for i, (src_want, tag_want, ev) in enumerate(waiters):
            if _matches(src_want, tag_want, message):
                del waiters[i]
                delay = self.comm.cost.transfer_time(
                    data, self.comm._hops(self.rank, dest)
                )
                self.comm.stats.record(self.rank, self.comm.cost.size_of(data))
                arrival = self.sim.timeout(delay)
                arrival.add_callback(
                    lambda _e: ev.succeed(
                        Message(self.rank, dest, tag, data, message.sent_at, self.sim.now)
                    )
                )
                done.succeed()
                return done
        self.comm._pending_ssends[dest].append((message, done))
        return done

    def recv(self, source: int = ANY, tag: int = ANY) -> Event:
        """Receive one message; event value is a :class:`Message`."""
        # Rendezvous sends waiting for us?
        pending = self.comm._pending_ssends[self.rank]
        for i, (message, send_done) in enumerate(pending):
            if _matches(source, tag, message):
                del pending[i]
                delay = self.comm.cost.transfer_time(
                    message.data, self.comm._hops(message.source, self.rank)
                )
                self.comm.stats.record(message.source, self.comm.cost.size_of(message.data))
                ev = self.sim.event(name=f"recv@{self.rank}")
                arrival = self.sim.timeout(delay)
                arrival.add_callback(
                    lambda _e: ev.succeed(
                        Message(message.source, self.rank, message.tag,
                                message.data, message.sent_at, self.sim.now)
                    )
                )
                send_done.succeed()
                return ev
        # Buffered messages already delivered?
        inbox = self.comm._inbox[self.rank]
        for i, message in enumerate(inbox):
            if _matches(source, tag, message):
                del inbox[i]
                ev = self.sim.event(name=f"recv@{self.rank}")
                ev.succeed(message)
                return ev
        ev = self.sim.event(name=f"recv@{self.rank}(src={source},tag={tag})")
        self.comm._recv_waiters[self.rank].append((source, tag, ev))
        return ev

    # -- collectives (generators: use ``yield from ep.bcast(...)``) ------------

    _COLL_TAG = 1 << 20   # tag namespace reserved for collective traffic

    def bcast(self, value: Any, root: int = 0) -> Generator[Event, Any, Any]:
        """Binomial-tree broadcast; returns the broadcast value on every rank.

        The standard algorithm: each rank first receives from its tree
        parent (determined by its lowest set virtual-rank bit), then relays
        to children at successively smaller strides -- ceil(log2 n) rounds.
        """
        comm = self.comm
        comm._check_rank(root)
        vrank = (self.rank - root) % comm.size   # virtual rank, root -> 0
        mask = 1
        while mask < comm.size:
            if vrank & mask:
                parent = (vrank - mask + root) % comm.size
                msg = yield self.recv(source=parent, tag=self._COLL_TAG)
                value = msg.data
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < comm.size:
                child = (vrank + mask + root) % comm.size
                yield self.send(child, value, tag=self._COLL_TAG)
            mask >>= 1
        return value

    def reduce(
        self, value: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Generator[Event, Any, Any]:
        """Binomial-tree reduction; root returns the combined value, others None.

        ``op`` must be associative; combination order is deterministic.
        """
        comm = self.comm
        comm._check_rank(root)
        vrank = (self.rank - root) % comm.size
        acc = value
        mask = 1
        while mask < comm.size:
            if vrank & mask:
                parent = (vrank - mask + root) % comm.size
                yield self.send(parent, acc, tag=self._COLL_TAG + 1)
                break
            partner = vrank + mask
            if partner < comm.size:
                msg = yield self.recv(
                    source=(partner + root) % comm.size, tag=self._COLL_TAG + 1
                )
                acc = op(acc, msg.data)
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any]
    ) -> Generator[Event, Any, Any]:
        total = yield from self.reduce(value, op, root=0)
        total = yield from self.bcast(total, root=0)
        return total

    def gather(self, value: Any, root: int = 0) -> Generator[Event, Any, Any]:
        """Flat gather; root returns the list indexed by rank, others None."""
        comm = self.comm
        comm._check_rank(root)
        if self.rank == root:
            out: list[Any] = [None] * comm.size
            out[root] = value
            for _ in range(comm.size - 1):
                msg = yield self.recv(tag=self._COLL_TAG + 2)
                out[msg.source] = msg.data
            return out
        yield self.send(root, value, tag=self._COLL_TAG + 2)
        return None

    def scatter(self, values: list[Any] | None, root: int = 0) -> Generator[Event, Any, Any]:
        """Root distributes ``values[i]`` to rank ``i``; returns own element."""
        comm = self.comm
        comm._check_rank(root)
        if self.rank == root:
            if values is None or len(values) != comm.size:
                raise CommunicationError(
                    "scatter root needs exactly one value per rank"
                )
            for dest in range(comm.size):
                if dest != root:
                    yield self.send(dest, values[dest], tag=self._COLL_TAG + 3)
            return values[root]
        msg = yield self.recv(source=root, tag=self._COLL_TAG + 3)
        return msg.data

    def allgather(self, value: Any) -> Generator[Event, Any, Any]:
        gathered = yield from self.gather(value, root=0)
        gathered = yield from self.bcast(gathered, root=0)
        return gathered

    def barrier(self) -> Generator[Event, Any, Any]:
        """Tree barrier: reduce a token to rank 0, broadcast it back."""
        yield from self.allreduce(0, lambda a, b: 0)
        return None

    def scan(self, value: Any, op: Callable[[Any, Any], Any]) -> Generator[Event, Any, Any]:
        """Inclusive prefix scan along rank order (linear algorithm)."""
        acc = value
        if self.rank > 0:
            msg = yield self.recv(source=self.rank - 1, tag=self._COLL_TAG + 4)
            acc = op(msg.data, value)
        if self.rank < self.comm.size - 1:
            yield self.send(self.rank + 1, acc, tag=self._COLL_TAG + 4)
        return acc
