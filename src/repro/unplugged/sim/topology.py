"""Interconnection-network topologies for the simulated classroom.

The TopologyYarnWeb activity builds rings, stars, meshes, and hypercubes
out of yarn; this module is its executable counterpart.  A
:class:`Topology` wraps a networkx graph whose nodes are ranks ``0..n-1``
and answers the questions the activity asks with bodies and bead-routing:

* how many hops between two students (:meth:`hops`),
* the worst case over all pairs (:meth:`diameter`),
* how many strands you can cut before someone is isolated
  (:meth:`edge_connectivity`), and which single cut disconnects the
  network (:meth:`survives_edge_cut`).

Topologies plug into :class:`~repro.unplugged.sim.comm.Communicator` as
the hop model, so message costs reflect the network shape.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import SimulationError

__all__ = ["Topology"]


class Topology:
    """An interconnect over ranks ``0..n-1``."""

    def __init__(self, graph: nx.Graph, name: str = "custom"):
        if graph.number_of_nodes() == 0:
            raise SimulationError("topology must have at least one node")
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected:
            raise SimulationError("topology nodes must be ranks 0..n-1")
        self.graph = graph
        self.name = name
        self._dist: dict[int, dict[int, int]] | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def ring(cls, n: int) -> "Topology":
        if n < 3:
            raise SimulationError("a ring needs at least 3 nodes")
        return cls(nx.cycle_graph(n), name=f"ring({n})")

    @classmethod
    def line(cls, n: int) -> "Topology":
        if n < 2:
            raise SimulationError("a line needs at least 2 nodes")
        return cls(nx.path_graph(n), name=f"line({n})")

    @classmethod
    def star(cls, n: int) -> "Topology":
        """Star with rank 0 at the hub and n-1 leaves."""
        if n < 2:
            raise SimulationError("a star needs at least 2 nodes")
        return cls(nx.star_graph(n - 1), name=f"star({n})")

    @classmethod
    def mesh(cls, rows: int, cols: int) -> "Topology":
        if rows < 1 or cols < 1:
            raise SimulationError("mesh dimensions must be positive")
        grid = nx.grid_2d_graph(rows, cols)
        mapping = {(r, c): r * cols + c for r, c in grid.nodes}
        return cls(nx.relabel_nodes(grid, mapping), name=f"mesh({rows}x{cols})")

    @classmethod
    def torus(cls, rows: int, cols: int) -> "Topology":
        if rows < 3 or cols < 3:
            raise SimulationError("torus dimensions must be >= 3")
        grid = nx.grid_2d_graph(rows, cols, periodic=True)
        mapping = {(r, c): r * cols + c for r, c in grid.nodes}
        return cls(nx.relabel_nodes(grid, mapping), name=f"torus({rows}x{cols})")

    @classmethod
    def hypercube(cls, dimension: int) -> "Topology":
        if dimension < 1:
            raise SimulationError("hypercube dimension must be >= 1")
        return cls(_hypercube(dimension), name=f"hypercube({dimension})")

    @classmethod
    def complete(cls, n: int) -> "Topology":
        if n < 2:
            raise SimulationError("a complete graph needs at least 2 nodes")
        return cls(nx.complete_graph(n), name=f"complete({n})")

    # -- queries ----------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self.graph.number_of_edges()

    def _distances(self) -> dict[int, dict[int, int]]:
        if self._dist is None:
            self._dist = {
                src: dict(lengths)
                for src, lengths in nx.all_pairs_shortest_path_length(self.graph)
            }
        return self._dist

    def hops(self, src: int, dst: int) -> int:
        """Shortest hop count between two ranks."""
        if src == dst:
            return 0
        try:
            return self._distances()[src][dst]
        except KeyError:
            raise SimulationError(f"no path from {src} to {dst}") from None

    def route(self, src: int, dst: int) -> list[int]:
        """One shortest path, as the bead would travel."""
        return nx.shortest_path(self.graph, src, dst)

    def diameter(self) -> int:
        return max(max(row.values()) for row in self._distances().values())

    def average_hops(self) -> float:
        dist = self._distances()
        n = self.size
        if n < 2:
            return 0.0
        total = sum(sum(row.values()) for row in dist.values())
        return total / (n * (n - 1))

    def degree(self, rank: int) -> int:
        return self.graph.degree(rank)

    def edge_connectivity(self) -> int:
        """Strands that must be cut to disconnect the network."""
        return nx.edge_connectivity(self.graph)

    def survives_edge_cut(self, u: int, v: int) -> bool:
        """Does the network stay connected if the (u, v) strand is cut?"""
        if not self.graph.has_edge(u, v):
            raise SimulationError(f"no link between {u} and {v}")
        trimmed = self.graph.copy()
        trimmed.remove_edge(u, v)
        return nx.is_connected(trimmed)

    def bisection_width_estimate(self) -> int:
        """Edges crossing the balanced rank-order bisection (exact for the
        standard topologies built by the constructors)."""
        half = set(range(self.size // 2))
        return sum(1 for u, v in self.graph.edges if (u in half) != (v in half))


def _hypercube(dimension: int) -> nx.Graph:
    """Hypercube with integer rank labels (bit-adjacency)."""
    n = 1 << dimension
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for node in range(n):
        for bit in range(dimension):
            neighbor = node ^ (1 << bit)
            graph.add_edge(node, neighbor)
    return graph
