"""Shared memory with dynamic race detection, plus an interleaving explorer.

Two complementary tools for the race-condition activities:

* :class:`SharedMemory` -- named cells that simulated actors read and
  write, with an Eraser-style *lockset* race detector: for every location
  it intersects the sets of locks held across accesses; when the candidate
  set becomes empty while two different actors access the location (at
  least one writing), the access pair is reported as a data race.  The
  juice-robots simulation runs the unsynchronized schedule and the
  detector flags it; re-run holding the kitchen lock and it stays silent.

* :func:`explore_interleavings` -- exhaustive schedule enumeration for
  small straight-line programs (sequences of atomic steps over a shared
  state dict).  This is the operational complement to the assertional
  view: it enumerates *every* interleaving, counts how many violate a
  predicate, and returns witnesses.  The concert-tickets and bank-deposit
  simulations use it to report exactly which schedules lose an update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.errors import RaceConditionError, SimulationError

__all__ = [
    "Access",
    "Race",
    "SharedMemory",
    "Step",
    "InterleavingResult",
    "explore_interleavings",
    "count_interleavings",
]


@dataclass(frozen=True)
class Access:
    """One recorded memory access."""

    location: str
    actor: str
    kind: str            # "read" | "write"
    value: Any
    locks: frozenset[str]
    index: int           # global access sequence number

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


@dataclass(frozen=True)
class Race:
    """A detected data race: two conflicting, unordered accesses."""

    location: str
    first: Access
    second: Access

    def describe(self) -> str:
        return (
            f"race on {self.location!r}: {self.first.actor} {self.first.kind} "
            f"(locks={sorted(self.first.locks)}) vs {self.second.actor} "
            f"{self.second.kind} (locks={sorted(self.second.locks)})"
        )


class SharedMemory:
    """Named shared cells with lockset-based race detection.

    ``on_race`` selects the reaction: ``"record"`` (default) accumulates
    races in :attr:`races`; ``"raise"`` raises
    :class:`~repro.errors.RaceConditionError` at the racy access.
    """

    def __init__(self, on_race: str = "record"):
        if on_race not in ("record", "raise", "ignore"):
            raise SimulationError(f"unknown race policy {on_race!r}")
        self.on_race = on_race
        self._cells: dict[str, Any] = {}
        self._held: dict[str, set[str]] = {}          # actor -> locks held
        self.accesses: list[Access] = []
        self.races: list[Race] = []
        # Per-location detector state.
        self._candidate_locks: dict[str, frozenset[str] | None] = {}
        self._last_conflicting: dict[str, Access] = {}
        self._accessors: dict[str, set[str]] = {}
        self._writers: dict[str, set[str]] = {}
        self._reported: set[str] = set()

    # -- lock bookkeeping ------------------------------------------------------

    def lock_acquired(self, actor: str, lock: str) -> None:
        self._held.setdefault(actor, set()).add(lock)

    def lock_released(self, actor: str, lock: str) -> None:
        held = self._held.get(actor, set())
        if lock not in held:
            raise SimulationError(f"{actor} released lock {lock!r} it does not hold")
        held.remove(lock)

    def locks_of(self, actor: str) -> frozenset[str]:
        return frozenset(self._held.get(actor, ()))

    # -- accesses ---------------------------------------------------------------

    def read(self, location: str, actor: str) -> Any:
        value = self._cells.get(location)
        self._record(location, actor, "read", value)
        return value

    def write(self, location: str, actor: str, value: Any) -> None:
        self._cells[location] = value
        self._record(location, actor, "write", value)

    def peek(self, location: str) -> Any:
        """Read without recording (for assertions and reporting)."""
        return self._cells.get(location)

    def poke(self, location: str, value: Any) -> None:
        """Initialize a location without recording an access."""
        self._cells[location] = value

    def _record(self, location: str, actor: str, kind: str, value: Any) -> None:
        access = Access(
            location=location,
            actor=actor,
            kind=kind,
            value=value,
            locks=self.locks_of(actor),
            index=len(self.accesses),
        )
        self.accesses.append(access)
        self._detect(access)

    def _detect(self, access: Access) -> None:
        loc = access.location
        self._accessors.setdefault(loc, set()).add(access.actor)
        if access.is_write:
            self._writers.setdefault(loc, set()).add(access.actor)

        candidate = self._candidate_locks.get(loc)
        if candidate is None and loc not in self._candidate_locks:
            self._candidate_locks[loc] = access.locks
        else:
            self._candidate_locks[loc] = (candidate or frozenset()) & access.locks

        conflicting = (
            len(self._accessors[loc]) > 1
            and bool(self._writers.get(loc))
            and not self._candidate_locks[loc]
        )
        prev = self._last_conflicting.get(loc)
        if conflicting and prev is not None and prev.actor != access.actor \
                and (prev.is_write or access.is_write) and loc not in self._reported:
            race = Race(location=loc, first=prev, second=access)
            self._reported.add(loc)
            if self.on_race == "raise":
                self.races.append(race)
                raise RaceConditionError(race.describe(), races=[race])
            if self.on_race == "record":
                self.races.append(race)
        self._last_conflicting[loc] = access

    @property
    def racy_locations(self) -> list[str]:
        return sorted({r.location for r in self.races})


# ---------------------------------------------------------------------------
# Exhaustive interleaving exploration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One atomic step of an actor's straight-line program.

    ``action`` mutates (or reads into thread-local scratch) the shared
    ``state`` dict; ``label`` names the step in schedule witnesses.
    """

    label: str
    action: Callable[[dict], None]


@dataclass
class InterleavingResult:
    """Outcome of exhaustive interleaving exploration."""

    total: int = 0
    violating: int = 0
    witnesses: list[tuple[str, ...]] = field(default_factory=list)
    outcomes: dict[Any, int] = field(default_factory=dict)

    @property
    def violation_rate(self) -> float:
        return self.violating / self.total if self.total else 0.0


def count_interleavings(lengths: Sequence[int]) -> int:
    """Number of interleavings of programs with the given step counts.

    The multinomial coefficient (sum n_i)! / prod(n_i!) -- the class can
    check the explosion by hand for two 3-step robots (20 schedules).
    """
    import math

    total = sum(lengths)
    out = math.factorial(total)
    for n in lengths:
        out //= math.factorial(n)
    return out


def explore_interleavings(
    programs: dict[str, Sequence[Step]],
    initial_state: dict,
    violates: Callable[[dict], bool],
    outcome: Callable[[dict], Any] | None = None,
    max_schedules: int = 200_000,
) -> InterleavingResult:
    """Run every interleaving of the programs' atomic steps.

    ``programs`` maps actor name to its step sequence.  For each schedule
    (a merge of the programs preserving per-actor order) the steps run on a
    fresh copy of ``initial_state``; ``violates(state)`` marks bad final
    states and ``outcome(state)`` (optional) buckets final states for the
    outcome histogram.  Schedules are generated deterministically in
    lexicographic actor order.
    """
    names = sorted(programs)
    lengths = [len(programs[n]) for n in names]
    if count_interleavings(lengths) > max_schedules:
        raise SimulationError(
            f"{count_interleavings(lengths)} interleavings exceed the "
            f"max_schedules bound of {max_schedules}"
        )

    result = InterleavingResult()
    sequence = []
    for name, n in zip(names, lengths):
        sequence.extend([name] * n)

    for schedule in _distinct_permutations(sequence):
        state = dict(initial_state)
        counters = {name: 0 for name in names}
        labels: list[str] = []
        for actor in schedule:
            step = programs[actor][counters[actor]]
            counters[actor] += 1
            step.action(state)
            labels.append(f"{actor}.{step.label}")
        result.total += 1
        if violates(state):
            result.violating += 1
            if len(result.witnesses) < 10:
                result.witnesses.append(tuple(labels))
        if outcome is not None:
            key = outcome(state)
            result.outcomes[key] = result.outcomes.get(key, 0) + 1
    return result


def _distinct_permutations(items: Sequence[str]) -> Iterable[tuple[str, ...]]:
    """Distinct permutations of a multiset, in lexicographic order."""
    pool = sorted(items)
    n = len(pool)
    if n == 0:
        yield ()
        return
    current = list(pool)
    while True:
        yield tuple(current)
        # Next lexicographic permutation (Narayana's algorithm).
        i = n - 2
        while i >= 0 and current[i] >= current[i + 1]:
            i -= 1
        if i < 0:
            return
        j = n - 1
        while current[j] <= current[i]:
            j -= 1
        current[i], current[j] = current[j], current[i]
        current[i + 1:] = reversed(current[i + 1:])
