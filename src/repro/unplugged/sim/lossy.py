"""An unreliable messenger: lossy channels and cancellable receives.

The distributed-systems activities lean on unreliable messengers (the
Byzantine game's couriers; the desert islands' mail).  This module
provides the substrate to make message loss executable:

* :class:`LossyChannel` -- a point-to-point channel that drops each
  transmission with a deterministic, seeded probability and delivers the
  rest after a configurable delay.  Receives are *cancellable*, so they
  compose with :meth:`Simulator.any_of` for timeouts without leaking
  waiters that would swallow later messages.
* Retransmission protocols build on top -- see
  :func:`repro.unplugged.unreliable_messenger.run_stop_and_wait`.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.engine import Event, Simulator

__all__ = ["LossyChannel"]


class LossyChannel:
    """A FIFO-delivery channel that loses transmissions with probability
    ``loss_rate`` (decided by a seeded RNG, so runs are reproducible)."""

    def __init__(
        self,
        sim: Simulator,
        loss_rate: float = 0.0,
        delay: float = 1.0,
        seed: int = 0,
        name: str = "channel",
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError("loss rate must be in [0, 1)")
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        self.sim = sim
        self.loss_rate = loss_rate
        self.delay = delay
        self.name = name
        self._rng = np.random.default_rng(seed)
        self._inbox: deque[Any] = deque()
        self._waiters: deque[Event] = deque()
        self.sent = 0
        self.dropped = 0
        self.delivered = 0

    # -- sending ------------------------------------------------------------

    def send(self, payload: Any) -> bool:
        """Transmit; returns whether the messenger made it (the sender, of
        course, cannot see this)."""
        self.sent += 1
        if self._rng.random() < self.loss_rate:
            self.dropped += 1
            return False
        arrival = self.sim.timeout(self.delay, name=f"{self.name}.arrival")
        arrival.add_callback(lambda _ev: self._deliver(payload))
        return True

    def _deliver(self, payload: Any) -> None:
        self.delivered += 1
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:        # skip cancelled receives
                waiter.succeed(payload)
                return
        self._inbox.append(payload)

    # -- receiving -----------------------------------------------------------

    def recv(self) -> Event:
        """Receive the next message; compose with ``any_of`` for timeouts,
        then call :meth:`cancel` on the losing receive."""
        ev = self.sim.event(name=f"{self.name}.recv")
        if self._inbox:
            ev.succeed(self._inbox.popleft())
        else:
            self._waiters.append(ev)
        return ev

    def cancel(self, recv_event: Event) -> None:
        """Withdraw a pending receive so it cannot swallow a later message."""
        if recv_event.triggered:
            return
        try:
            self._waiters.remove(recv_event)
        except ValueError:
            pass
        # Mark triggered (with no value) so _deliver skips it defensively.
        recv_event.succeed(None)

    @property
    def pending(self) -> int:
        return len(self._inbox)
