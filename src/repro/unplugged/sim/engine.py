"""Deterministic discrete-event simulation kernel.

The unplugged activities the corpus curates are dramatizations of parallel
algorithms with "students as processors" (paper §III).  This kernel is the
simulated classroom those dramatizations run on: a process-based
discrete-event simulator in the style of SimPy, reduced to exactly what the
activity simulations need and engineered for *determinism* -- same seed and
program, same trace, every run -- because the activities teach
non-determinism by exploring schedules explicitly, not by accident.

Core concepts:

* :class:`Simulator` -- the event loop: a heap of ``(time, seq, event)``
  entries, where ``seq`` is a monotone tie-breaker making simultaneous
  events fire in schedule order.
* :class:`Event` -- a one-shot occurrence; callbacks run when it fires.
* :class:`Process` -- a Python generator driven by the simulator.  The
  generator *yields* events (e.g. ``sim.timeout(2)``, a channel receive,
  a lock acquire) and is resumed with the event's value when it fires.
* Deadlock detection -- when the event heap drains while processes are
  still blocked, :meth:`Simulator.run` raises
  :class:`~repro.errors.DeadlockError` naming them (the dining-philosophers
  dramatization relies on this).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Event", "Process", "Simulator", "ProcessGen"]

ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot event that processes can wait on.

    An event is *triggered* once, with an optional value; callbacks added
    before triggering run when it fires, callbacks added after run
    immediately at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_fired", "value", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[Event], None]] = []
        self._triggered = False   # scheduled to fire
        self._fired = False       # callbacks have run
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def fired(self) -> bool:
        return self._fired

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event ``delay`` time units from now."""
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        self._triggered = True
        self.value = value
        self.sim._schedule(delay, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._fired:
            # Fire immediately (still via the queue to keep ordering sane).
            immediate = Event(self.sim, name=f"immediate:{self.name}")
            immediate.callbacks.append(lambda _e: fn(self))
            immediate._triggered = True
            self.sim._schedule(0.0, immediate)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        self._fired = True
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else ("triggered" if self._triggered else "pending")
        return f"<Event {self.name or hex(id(self))} {state}>"


class Process(Event):
    """A generator-based simulated actor.

    The process *is* an event: it triggers (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other -- ``yield other_process``.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        sim._processes.append(self)
        # Kick off at current time.
        start = Event(sim, name=f"start:{self.name}")
        start.callbacks.append(self._resume)
        start._triggered = True
        sim._schedule(0.0, start)

    @property
    def alive(self) -> bool:
        return not self._triggered

    @property
    def waiting_on(self) -> Event | None:
        return self._waiting_on

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            target = self._gen.send(event.value if event is not self else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        if target.sim is not self.sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another simulator"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """The discrete-event loop."""

    def __init__(self):
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.now: float = 0.0
        self._processes: list[Process] = []

    # -- event construction ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that fires ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        ev = Event(self, name=name or f"timeout({delay})")
        ev._triggered = True
        ev.value = value
        self._schedule(delay, ev)
        return ev

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Register a generator as a simulated process."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """An event firing when the *first* input event fires.

        The value is ``(index, value)`` of the winning event.  Later
        firings of the other events are ignored by this combinator (their
        own callbacks still run) -- the waiting process resumes exactly
        once.  This is the select/timeout primitive: e.g.
        ``yield sim.any_of([channel_recv, sim.timeout(5)])``.
        """
        events = list(events)
        done = self.event(name)
        if not events:
            raise SimulationError("any_of needs at least one event")

        def make_cb(i: int):
            def cb(ev: Event) -> None:
                if not done.triggered:
                    done.succeed((i, ev.value))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """An event firing when every input event has fired (barrier join)."""
        events = list(events)
        done = self.event(name)
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * remaining

        def make_cb(i: int):
            def cb(ev: Event) -> None:
                nonlocal remaining
                values[i] = ev.value
                remaining -= 1
                if remaining == 0:
                    done.succeed(list(values))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def step(self) -> None:
        time, _seq, event = heapq.heappop(self._heap)
        if time < self.now:  # pragma: no cover - guarded by negative-delay check
            raise SimulationError("time went backwards")
        self.now = time
        event._fire()

    def run(self, until: float | None = None, detect_deadlock: bool = True) -> float:
        """Run until the heap drains (or simulated time passes ``until``).

        Raises :class:`~repro.errors.DeadlockError` if the heap drains while
        registered processes are still blocked on untriggered events.
        Returns the final simulation time.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            self.step()
        if detect_deadlock:
            blocked = [p for p in self._processes if p.alive]
            if blocked:
                details = ", ".join(
                    f"{p.name} waiting on {p.waiting_on.name if p.waiting_on else '?'}"
                    for p in blocked
                )
                raise DeadlockError(
                    f"deadlock: {len(blocked)} process(es) blocked with no "
                    f"pending events ({details})"
                )
        return self.now
