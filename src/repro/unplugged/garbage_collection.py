"""ParallelGarbageCollection: the Sivilotti-Pike marking dramatization.

Students-as-objects hold strings to the objects they reference while a
collector marks reachable objects and a mutator keeps re-wiring
references.  The simulation stages the classroom's two acts:

1. **Naive concurrent mark** -- the collector scans each object's
   out-edges once while the mutator concurrently moves a reference from a
   not-yet-scanned object to an already-scanned one.  The hidden object
   stays unmarked: a live object would be swept.  (The classic black-to-
   white pointer hazard.)
2. **Snapshot / re-scan fix** -- the collector re-scans objects that
   changed during the pass (a coarse write barrier) until a pass makes no
   progress, and every reachable object ends marked.

The object graph, mutation schedule, and scan order are all deterministic
functions of the classroom seed.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_garbage_collection"]


def _reachable(graph: nx.DiGraph, roots: list[int]) -> set[int]:
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.successors(node))
    return seen


def _build_heap(n: int, rng: np.random.Generator) -> tuple[nx.DiGraph, list[int]]:
    """A random object graph over n student-objects with two roots."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for node in range(n):
        out_degree = int(rng.integers(1, 3))
        targets = rng.choice(n, size=min(out_degree, n - 1), replace=False)
        for t in targets:
            if int(t) != node:
                graph.add_edge(node, int(t))
    roots = [0, 1 % n]
    return graph, roots


def run_garbage_collection(classroom: Classroom, mutations: int = 3) -> ActivityResult:
    """Run naive concurrent marking, then the re-scan fix, on one heap."""
    n = classroom.size
    if n < 4:
        raise SimulationError("the GC dramatization needs at least 4 students")
    rng = np.random.default_rng(classroom.seed + 101)
    graph, roots = _build_heap(n, rng)
    result = ActivityResult(activity="ParallelGarbageCollection", classroom_size=n)

    # ---- Act 1: naive single-pass concurrent mark with an adversarial mutator.
    naive_graph = graph.copy()
    marked: set[int] = set(roots)
    scanned: set[int] = set()
    missed_demo = False
    mutation_budget = mutations

    frontier = list(roots)
    while frontier:
        obj = frontier.pop(0)
        if obj in scanned:
            continue
        # Adversarial mutator: before the collector scans `obj`, move one of
        # obj's outgoing references to hang off an already-scanned object,
        # then delete it from obj -- hiding the target behind black nodes.
        if mutation_budget > 0 and scanned:
            succs = [s for s in naive_graph.successors(obj) if s not in marked]
            black = [b for b in scanned]
            if succs and black:
                hidden = succs[0]
                host = black[0]
                naive_graph.remove_edge(obj, hidden)
                naive_graph.add_edge(host, hidden)
                mutation_budget -= 1
                missed_demo = True
                result.trace.record(
                    float(len(scanned)), classroom.student(hidden % n), "hide",
                    f"reference moved from {obj} to scanned {host}",
                )
        for succ in naive_graph.successors(obj):
            if succ not in marked:
                marked.add(succ)
                frontier.append(succ)
        scanned.add(obj)
        result.trace.record(float(len(scanned)), classroom.student(obj % n),
                            "scan", "naive pass")

    live_after = _reachable(naive_graph, roots)
    naive_missed = sorted(live_after - marked)

    # ---- Act 2: re-scan rounds (coarse write barrier) on the mutated heap.
    marked2: set[int] = set(roots)
    passes = 0
    while True:
        passes += 1
        changed = False
        for obj in sorted(marked2.copy()):
            for succ in naive_graph.successors(obj):
                if succ not in marked2:
                    marked2.add(succ)
                    changed = True
        if not changed:
            break
    fixed_missed = sorted(live_after - marked2)

    result.metrics = {
        "objects": n,
        "live_objects": len(live_after),
        "naive_marked": len(marked),
        "naive_missed_live": len(naive_missed),
        "rescan_passes": passes,
        "fixed_missed_live": len(fixed_missed),
    }
    result.require("naive_pass_misses_live_objects",
                   (len(naive_missed) > 0) == missed_demo)
    result.require("rescan_marks_all_live", not fixed_missed)
    result.require("no_dead_marked", marked2 <= live_after)
    return result
