"""DiningPhilosophersDramatization: deadlock on cue, then two classroom fixes.

Five students, five pens, each needs both neighbors' pens to sign a menu
card.  The simulation stages the three acts:

1. **Greedy left-then-right** -- every philosopher grabs the left pen,
   pauses (the instructor's cue), then reaches right: circular wait, and
   the engine's deadlock detector names all five.
2. **Lock ordering** -- one philosopher picks up right first (equivalently:
   pens are acquired in global id order), breaking the cycle; everyone
   eventually eats.
3. **Waiter** -- a semaphore admits at most n-1 to the table; no ordering
   needed, everyone eats.

Both fixes are timed so the class can compare throughput and fairness.
"""

from __future__ import annotations

from repro.errors import DeadlockError, SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sync import Lock, Semaphore

__all__ = ["run_dining_philosophers"]


def _dine(
    n: int,
    meals_each: int,
    classroom: Classroom,
    strategy: str,
) -> tuple[bool, float, dict[int, int]]:
    """Run one strategy; returns (deadlocked, finish_time, meals per seat)."""
    sim = Simulator()
    pens = [Lock(sim, f"pen{i}") for i in range(n)]
    waiter = Semaphore(sim, n - 1, name="waiter") if strategy == "waiter" else None
    meals = {i: 0 for i in range(n)}

    def philosopher(i: int):
        me = f"phil{i}"
        left, right = pens[i], pens[(i + 1) % n]
        for _ in range(meals_each):
            if strategy == "greedy":
                first, second = left, right
            elif strategy == "ordered":
                # Acquire the lower-numbered pen first (global order).
                first, second = sorted(
                    (left, right), key=lambda p: int(p.name.removeprefix("pen"))
                )
            elif strategy == "waiter":
                yield waiter.acquire()
                first, second = left, right
            else:
                raise SimulationError(f"unknown strategy {strategy!r}")
            yield first.acquire(me)
            yield sim.timeout(0.5)             # the instructor's pause
            yield second.acquire(me)
            yield sim.timeout(classroom.step_time(i % classroom.size))
            meals[i] += 1
            second.release(me)
            first.release(me)
            if waiter is not None:
                waiter.release()
            yield sim.timeout(0.1)             # think a moment

    for i in range(n):
        sim.process(philosopher(i), name=f"phil{i}")
    try:
        finish = sim.run()
        return False, finish, meals
    except DeadlockError:
        return True, sim.now, meals


def run_dining_philosophers(
    classroom: Classroom,
    philosophers: int = 5,
    meals_each: int = 3,
) -> ActivityResult:
    """Stage all three acts and compare the fixes."""
    if philosophers < 2:
        raise SimulationError("need at least two philosophers")
    n = philosophers
    result = ActivityResult(activity="DiningPhilosophersDramatization",
                            classroom_size=classroom.size)

    greedy_deadlocked, _, greedy_meals = _dine(n, meals_each, classroom, "greedy")
    ordered_deadlocked, ordered_time, ordered_meals = _dine(
        n, meals_each, classroom, "ordered"
    )
    waiter_deadlocked, waiter_time, waiter_meals = _dine(
        n, meals_each, classroom, "waiter"
    )

    result.metrics = {
        "philosophers": n,
        "meals_each": meals_each,
        "greedy_deadlocked": greedy_deadlocked,
        "ordered_time": ordered_time,
        "waiter_time": waiter_time,
        "ordered_meals": sum(ordered_meals.values()),
        "waiter_meals": sum(waiter_meals.values()),
    }
    result.require("greedy_deadlocks_on_cue", greedy_deadlocked)
    result.require("ordering_fix_completes",
                   not ordered_deadlocked
                   and sum(ordered_meals.values()) == n * meals_each)
    result.require("waiter_fix_completes",
                   not waiter_deadlocked
                   and sum(waiter_meals.values()) == n * meals_each)
    result.require("fixes_are_fair",
                   min(ordered_meals.values()) == meals_each
                   and min(waiter_meals.values()) == meals_each)
    return result
