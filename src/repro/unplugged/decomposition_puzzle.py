"""DataDecompositionPuzzle: the iPDC mosaic activity, executable.

A picture is cut into tiles dealt to students who each color their tile by
a shared rule, then the picture is reassembled.  Tiles whose rule depends
on a neighbor's edge force communication -- so the activity is secretly a
stencil computation, and the tile shape decides the compute/communication
ratio.  The simulation:

* runs one Jacobi-style averaging sweep over a grid decomposed into
  student tiles, verified against the whole-grid computation;
* counts halo (edge) elements each student must ask neighbors for; and
* ablates strip vs block decomposition: for p students on an n x n grid,
  blocks exchange ~4 * n * sqrt(p)-ish halo cells versus strips' 2 * n * p
  -- blocks win as p grows (the surface-to-volume argument).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_decomposition_puzzle", "halo_volume"]


def halo_volume(n: int, rows: int, cols: int) -> int:
    """Total halo cells exchanged for an n x n grid on a rows x cols tiling.

    Each internal tile boundary is exchanged once in each direction:
    vertical cuts contribute 2 * n per cut (cols-1 cuts), horizontal cuts
    2 * n per cut (rows-1 cuts).
    """
    if n % rows or n % cols:
        raise SimulationError("tiling must divide the grid")
    return 2 * n * (cols - 1) + 2 * n * (rows - 1)


def _tilings(p: int, n: int) -> dict[str, int]:
    out = {}
    for r in range(1, p + 1):
        if p % r == 0:
            c = p // r
            if n % r == 0 and n % c == 0:
                out[f"{r}x{c}"] = halo_volume(n, r, c)
    return out


def run_decomposition_puzzle(
    classroom: Classroom,
    n: int = 24,
    tiles: tuple[int, int] | None = None,
) -> ActivityResult:
    """One stencil sweep over the mosaic, tiled across students."""
    p_max = classroom.size
    if tiles is None:
        # Squarest feasible tiling not exceeding the classroom.
        best = None
        for p in range(min(p_max, n * n), 0, -1):
            options = _tilings(p, n)
            if options:
                key = min(options, key=lambda k: abs(
                    int(k.split("x")[0]) - int(k.split("x")[1])))
                best = tuple(int(x) for x in key.split("x"))
                break
        tiles = best
    rows, cols = tiles
    teams = rows * cols
    if teams > p_max:
        raise SimulationError("tiling exceeds classroom size")
    if n % rows or n % cols:
        raise SimulationError("tiling must divide the grid")

    rng = np.random.default_rng(classroom.seed + 503)
    grid = rng.random((n, n))
    padded = np.pad(grid, 1, mode="edge")
    # Reference: one whole-grid 4-neighbor averaging sweep.
    expected = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                + padded[1:-1, :-2] + padded[1:-1, 2:]) / 4.0

    result = ActivityResult(activity="DataDecompositionPuzzle",
                            classroom_size=classroom.size)
    tile_r, tile_c = n // rows, n // cols
    out = np.zeros_like(grid)
    halo_cells = 0
    for ti in range(rows):
        for tj in range(cols):
            r0, r1 = ti * tile_r, (ti + 1) * tile_r
            c0, c1 = tj * tile_c, (tj + 1) * tile_c
            # The student copies their tile plus a one-cell halo from
            # neighbors (clamped at the picture edge).
            hr0, hr1 = max(r0 - 1, 0), min(r1 + 1, n)
            hc0, hc1 = max(c0 - 1, 0), min(c1 + 1, n)
            halo_cells += (hr1 - hr0) * (hc1 - hc0) - (r1 - r0) * (c1 - c0)
            local = np.pad(grid[hr0:hr1, hc0:hc1], 1, mode="edge")
            # Trim the pad so interior tiles use true neighbor data.
            lr0, lc0 = r0 - hr0 + 1, c0 - hc0 + 1
            window = local[lr0 - 1: lr0 + (r1 - r0) + 1,
                           lc0 - 1: lc0 + (c1 - c0) + 1]
            sweep = (window[:-2, 1:-1] + window[2:, 1:-1]
                     + window[1:-1, :-2] + window[1:-1, 2:]) / 4.0
            out[r0:r1, c0:c1] = sweep
            result.trace.record(float(ti * cols + tj),
                                classroom.student((ti * cols + tj) % classroom.size),
                                "tile", f"[{ti},{tj}]")

    tilings = _tilings(teams, n)
    strip = tilings.get(f"1x{teams}")
    chosen = tilings[f"{rows}x{cols}"]

    result.output = out
    result.metrics = {
        "grid": n,
        "tiling": f"{rows}x{cols}",
        "teams": teams,
        "halo_cells_measured": halo_cells,
        "halo_by_tiling": tilings,
        "compute_per_team": (n * n) // teams,
        "surface_to_volume": chosen / (n * n),
    }
    result.require("sweep_matches_reference",
                   bool(np.allclose(out, expected)))
    if strip is not None and f"{rows}x{cols}" != f"1x{teams}":
        result.require("blocks_exchange_less_than_strips", chosen <= strip)
    result.require("halo_formula_is_lower_bound",
                   halo_cells >= halo_volume(n, rows, cols))
    return result
