"""ActingOutAlgorithms and ObjectRolePlay, executable.

* :func:`run_parallel_search` (Fleury): each student scans a strip of the
  data and raises a hand on a hit; a broadcast of "found!" stops the
  others early.  Measured: time to first hit vs a single scanner, and the
  wasted work the early-termination broadcast saves.

* :func:`run_object_roleplay` (Andrianoff & Levine): students play objects
  exchanging *synchronous* messages.  Two objects that call each other and
  block for replies deadlock -- staged on the communicator's rendezvous
  sends so the engine's detector catches it -- and the fix (asynchronous
  sends with an inbox) completes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeadlockError, SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.comm import Communicator, Endpoint
from repro.unplugged.sim.engine import Simulator

__all__ = ["run_parallel_search", "run_object_roleplay"]


def run_parallel_search(
    classroom: Classroom,
    haystack_size: int = 240,
    target_position: int | None = None,
) -> ActivityResult:
    """Search a shuffled deck of slips for the marked one, strip per student."""
    n = classroom.size
    if n < 2:
        raise SimulationError("need at least two searchers")
    if haystack_size < n:
        raise SimulationError("need at least one slip per searcher")
    rng = np.random.default_rng(classroom.seed + 701)
    position = (int(rng.integers(haystack_size))
                if target_position is None else target_position)
    if not 0 <= position < haystack_size:
        raise SimulationError("target out of range")

    result = ActivityResult(activity="ActingOutAlgorithms", classroom_size=n)
    strip = -(-haystack_size // n)
    owner = position // strip
    offset_in_strip = position - owner * strip

    # Parallel: all students scan their strips simultaneously, one slip
    # per step; the owner shouts at offset+1 steps and everyone stops.
    time_to_hit = (offset_in_strip + 1) * classroom.step_time(owner)
    # Work done before the shout: everyone scanned ~the same number of slips.
    steps_at_shout = offset_in_strip + 1
    work_with_stop = sum(
        min(steps_at_shout,
            max(0, min(strip, haystack_size - i * strip)))
        for i in range(n)
    )
    work_without_stop = haystack_size
    sequential_time = (position + 1) * classroom.step_time(0)

    result.metrics = {
        "haystack": haystack_size,
        "target_position": position,
        "finder": classroom.student(owner),
        "parallel_time": time_to_hit,
        "sequential_time": sequential_time,
        "speedup": sequential_time / time_to_hit,
        "slips_scanned_with_early_stop": work_with_stop,
        "slips_scanned_without_stop": work_without_stop,
    }
    result.require("finder_owns_target", owner * strip <= position < (owner + 1) * strip)
    result.require("parallel_no_slower",
                   time_to_hit <= sequential_time * 1.3 + 1e-9)
    result.require("early_stop_saves_work",
                   work_with_stop <= work_without_stop)
    result.require("worst_case_bounded",
                   time_to_hit <= strip * max(classroom.step_time(i)
                                              for i in range(n)) + 1e-9)
    return result


def run_object_roleplay(classroom: Classroom) -> ActivityResult:
    """Synchronous mutual calls deadlock; asynchronous messaging completes."""
    if classroom.size < 2:
        raise SimulationError("need two students to play the objects")
    result = ActivityResult(activity="ObjectRolePlay",
                            classroom_size=classroom.size)

    # Act 1: two objects ssend requests to each other and block for replies.
    sim = Simulator()
    comm = Communicator(sim, 2)

    def blocking_object(ep: Endpoint):
        yield ep.ssend(1 - ep.rank, ("request", ep.rank))
        yield ep.recv()

    comm.launch(blocking_object)
    try:
        sim.run()
        deadlocked = False
    except DeadlockError:
        deadlocked = True

    # Act 2: asynchronous sends with an inbox; each object answers requests.
    sim2 = Simulator()
    comm2 = Communicator(sim2, 2)
    replies: dict[int, object] = {}

    def async_object(ep: Endpoint):
        yield ep.send(1 - ep.rank, ("request", ep.rank), tag=1)
        request = yield ep.recv(tag=1)
        yield ep.send(request.source, ("reply", ep.rank), tag=2)
        reply = yield ep.recv(tag=2)
        replies[ep.rank] = reply.data

    comm2.launch(async_object)
    sim2.run()

    result.metrics = {
        "synchronous_deadlocks": deadlocked,
        "async_replies": dict(sorted(replies.items())),
        "async_messages": comm2.stats.messages,
    }
    result.require("mutual_blocking_calls_deadlock", deadlocked)
    result.require("async_protocol_completes",
                   replies == {0: ("reply", 1), 1: ("reply", 0)})
    result.require("four_messages_exchanged", comm2.stats.messages == 4)
    return result
