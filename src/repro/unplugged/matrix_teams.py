"""MatrixMultiplicationTeams: the iPDC block-tiling worksheet, executable.

Teams compute C = A @ B one result block per team.  Each team must copy
the row band of A and column band of B its block needs -- so the tiling
decides how much input is duplicated across desks, exactly the discussion
the worksheet stages.  The simulation:

* computes the product blockwise (verified against ``numpy.matmul``),
* charges each team for the input elements it copies, and
* ablates the process grid: for p teams, 1 x p strips vs the squarest
  r x c grid -- the squarer grid always copies less (the classic
  communication-lower-bound intuition).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_matrix_teams", "copy_volume", "grid_shapes"]


def grid_shapes(teams: int) -> list[tuple[int, int]]:
    """All r x c factorizations of ``teams``, squarest last."""
    shapes = [
        (r, teams // r) for r in range(1, teams + 1) if teams % r == 0
    ]
    return sorted(shapes, key=lambda rc: abs(rc[0] - rc[1]), reverse=True)


def copy_volume(n: int, rows: int, cols: int) -> int:
    """Input elements copied under an rows x cols team grid (n x n matrices).

    Each team copies an (n/rows) x n band of A and an n x (n/cols) band of
    B: total = teams * (n^2/rows + n^2/cols) = n^2 * (cols + rows).
    """
    if n % rows or n % cols:
        raise SimulationError("grid must divide the matrix dimension")
    return n * n * (rows + cols)


def run_matrix_teams(
    classroom: Classroom,
    n: int = 12,
    grid: tuple[int, int] | None = None,
) -> ActivityResult:
    """Multiply two dealt n x n matrices with a team per result block."""
    teams_available = classroom.size
    if grid is None:
        # Squarest grid with at most as many teams as students.
        for teams in range(min(teams_available, n * n), 0, -1):
            candidates = [
                (r, c) for r, c in grid_shapes(teams)
                if n % r == 0 and n % c == 0
            ]
            if candidates:
                grid = candidates[-1]
                break
    rows, cols = grid
    teams = rows * cols
    if teams > teams_available:
        raise SimulationError(f"{teams} teams exceed the classroom of "
                              f"{teams_available}")
    if n % rows or n % cols:
        raise SimulationError("grid must divide the matrix dimension")

    rng = np.random.default_rng(classroom.seed + 211)
    a = rng.integers(-5, 6, size=(n, n))
    b = rng.integers(-5, 6, size=(n, n))
    expected = a @ b

    result = ActivityResult(activity="MatrixMultiplicationTeams",
                            classroom_size=classroom.size)
    block_r, block_c = n // rows, n // cols

    c = np.zeros((n, n), dtype=a.dtype)
    copies = 0
    team_times = []
    for ti in range(rows):
        for tj in range(cols):
            team = ti * cols + tj
            row_band = a[ti * block_r : (ti + 1) * block_r, :]
            col_band = b[:, tj * block_c : (tj + 1) * block_c]
            copies += row_band.size + col_band.size
            c[ti * block_r : (ti + 1) * block_r,
              tj * block_c : (tj + 1) * block_c] = row_band @ col_band
            flops = block_r * block_c * n
            team_times.append(classroom.step_time(team % classroom.size) * flops)
            result.trace.record(team_times[-1], classroom.student(team % classroom.size),
                                "block", f"C[{ti},{tj}]")

    # Tiling ablation: strips vs the squarest grid for the same team count.
    volumes = {
        f"{r}x{cc}": copy_volume(n, r, cc)
        for r, cc in grid_shapes(teams)
        if n % r == 0 and n % cc == 0
    }
    strip_key = f"1x{teams}" if f"1x{teams}" in volumes else None
    squarest = min(volumes.values())

    result.output = c
    result.metrics = {
        "n": n,
        "grid": f"{rows}x{cols}",
        "teams": teams,
        "copied_elements": copies,
        "copy_volumes_by_grid": volumes,
        "parallel_time": max(team_times),
        "sequential_time": classroom.step_time(0) * n ** 3,
    }
    result.require("product_correct", bool(np.array_equal(c, expected)))
    result.require("copy_formula_matches", copies == copy_volume(n, rows, cols))
    result.require("squarer_grids_copy_less",
                   volumes[f"{rows}x{cols}"] == squarest
                   or abs(rows - cols) > min(abs(r - cc) for r, cc in grid_shapes(teams)
                                             if n % r == 0 and n % cc == 0))
    if strip_key and f"{rows}x{cols}" != strip_key:
        result.require("beats_strip_tiling",
                       volumes[f"{rows}x{cols}"] <= volumes[strip_key])
    return result
