"""SynchronizationRelay: Chesebrough & Turner's construct comparison.

Teams pass a pen (the lock) under three hand-off disciplines; the class
times each and compares wasted effort -- CS2013 outcome PF-2, "multiple
sufficient programming constructs for synchronization ... with
complementary advantages":

* **busy-wait** -- the next runner polls the exchange zone every tick:
  lowest hand-off latency, most wasted checks.
* **signal** -- the finishing runner taps the next awake (a condition
  signal): zero wasted checks, hand-off costs a tap.
* **tray** -- the pen goes into a tray the next runner checks on a
  schedule (semaphore-ish): no tapping, latency up to a whole polling
  period.

The simulation counts both total relay time and wasted polls, so the
trade-off is a table rather than an assertion of one winner.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator

__all__ = ["run_synchronization_relay"]


def _relay(
    classroom: Classroom,
    runners: int,
    leg_time: float,
    scheme: str,
    poll_period: float,
    tap_time: float,
) -> tuple[float, int]:
    """Run one relay; returns (finish time, wasted polls)."""
    sim = Simulator()
    polls = 0
    handed = [sim.event(name=f"handoff{i}") for i in range(runners + 1)]
    handed[0].succeed()                    # the starting gun

    def runner(i: int):
        nonlocal polls
        if scheme == "busy-wait":
            # Poll the zone every tick until the predecessor arrives.
            while not handed[i].fired:
                polls += 1
                yield sim.timeout(poll_period)
        elif scheme == "signal":
            yield handed[i]                # woken by the tap, no polling
        elif scheme == "tray":
            # Check the tray on a fixed schedule.
            while not handed[i].fired:
                polls += 1
                yield sim.timeout(poll_period * 4)
        else:
            raise SimulationError(f"unknown scheme {scheme!r}")
        yield sim.timeout(leg_time * classroom.step_time(i % classroom.size))
        if scheme == "signal":
            yield sim.timeout(tap_time)    # walking over to tap costs time
        handed[i + 1].succeed()

    for i in range(runners):
        sim.process(runner(i), name=f"runner{i}")
    sim.run(detect_deadlock=False)
    return sim.now, polls


def run_synchronization_relay(
    classroom: Classroom,
    runners: int | None = None,
    leg_time: float = 5.0,
    poll_period: float = 0.25,
    tap_time: float = 0.5,
) -> ActivityResult:
    """Time the relay under all three disciplines."""
    n = runners or min(classroom.size, 8)
    if n < 2:
        raise SimulationError("a relay needs at least two runners")

    result = ActivityResult(activity="SynchronizationRelay",
                            classroom_size=classroom.size)
    outcomes = {
        scheme: _relay(classroom, n, leg_time, scheme, poll_period, tap_time)
        for scheme in ("busy-wait", "signal", "tray")
    }

    times = {s: t for s, (t, _) in outcomes.items()}
    polls = {s: p for s, (_, p) in outcomes.items()}

    total_legs = sum(
        leg_time * classroom.step_time(i % classroom.size) for i in range(n)
    )
    result.metrics = {
        "runners": n,
        "times": times,
        "wasted_polls": polls,
        "pure_running_time": total_legs,
    }
    # The complementary-advantages table the activity builds.  Each
    # discipline's time is the running time plus its hand-off overhead;
    # the bounds below are exact consequences of the model.
    result.require("signal_wastes_no_polls", polls["signal"] == 0)
    result.require("busy_wait_wastes_most_polls",
                   polls["busy-wait"] > polls["tray"] > 0)
    result.require(
        "signal_time_exact",
        abs(times["signal"] - (total_legs + n * tap_time)) < 1e-9,
    )
    result.require(
        "busy_wait_latency_bounded",
        total_legs <= times["busy-wait"] <= total_legs + n * poll_period + 1e-9,
    )
    result.require(
        "tray_latency_bounded",
        total_legs <= times["tray"] <= total_legs + n * 4 * poll_period + 1e-9,
    )
    return result
