"""NondeterministicSorting: the Sivilotti-Pike assertional activity, executable.

Students in a line may swap with an out-of-order neighbor at any time, in
any order, chosen nondeterministically.  The assertional argument the
activity teaches:

* **Invariant** -- the multiset of held values never changes.
* **Variant** -- every swap removes exactly one inversion, so the
  inversion count strictly decreases and the system must terminate.
* **Postcondition** -- no enabled swap means no adjacent inversion, and a
  line with no adjacent inversions is sorted.

The simulation runs many independently-seeded schedules (each a different
"classroom afternoon"), checks all three properties on every run, and
reports the *distribution* of step counts -- concretely showing that the
answer is deterministic while the path to it is not.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_nondeterministic_sort"]


def _inversions(values: list[int]) -> int:
    return sum(
        1
        for i in range(len(values))
        for j in range(i + 1, len(values))
        if values[i] > values[j]
    )


def run_nondeterministic_sort(
    classroom: Classroom,
    schedules: int = 25,
) -> ActivityResult:
    """Run ``schedules`` random maximal executions of the swap system."""
    if schedules < 1:
        raise SimulationError("need at least one schedule")
    n = classroom.size
    original = classroom.deal_cards(n)
    result = ActivityResult(
        activity="NondeterministicSorting", classroom_size=n
    )

    step_counts: list[int] = []
    all_sorted = True
    multiset_ok = True
    variant_ok = True
    initial_inversions = _inversions(original)

    for schedule_no in range(schedules):
        rng = np.random.default_rng(classroom.seed * 7919 + schedule_no)
        line = list(original)
        steps = 0
        inversions = initial_inversions
        while True:
            enabled = [i for i in range(n - 1) if line[i] > line[i + 1]]
            if not enabled:
                break
            pick = int(rng.integers(len(enabled)))
            i = enabled[pick]
            line[i], line[i + 1] = line[i + 1], line[i]
            steps += 1
            new_inversions = _inversions(line)
            variant_ok &= new_inversions == inversions - 1
            inversions = new_inversions
            if schedule_no == 0:
                result.trace.record(
                    float(steps), classroom.student(i), "swap",
                    f"positions {i}<->{i + 1}",
                )
        all_sorted &= line == sorted(original)
        multiset_ok &= sorted(line) == sorted(original)
        step_counts.append(steps)

    counts = np.array(step_counts)
    result.output = sorted(original)
    result.metrics = {
        "schedules": schedules,
        "initial_inversions": initial_inversions,
        "min_steps": int(counts.min()),
        "max_steps": int(counts.max()),
        "mean_steps": float(counts.mean()),
        "distinct_step_counts": int(len(set(step_counts))),
    }
    result.require("always_sorted", all_sorted)
    result.require("multiset_invariant", multiset_ok)
    result.require("variant_strictly_decreases", variant_ok)
    # Adjacent-swap sorting always takes exactly #inversions swaps,
    # whatever the schedule: the deep punchline of the assertional view.
    result.require(
        "steps_equal_inversions",
        all(s == initial_inversions for s in step_counts),
    )
    return result
