"""LongDistancePhoneCall: the OSCER communication-overhead analogy, executable.

A call costs a connection charge (latency α) plus a per-minute charge
(1/bandwidth β).  The simulation does the arithmetic the workshop does on
the board -- many short calls versus one batched call -- and then
*validates the closed form against the discrete-event communicator*: the
same traffic is replayed through :class:`Communicator` under the same
:class:`CostModel`, and the measured completion time must match the
formula.  That agreement is the point: the analogy *is* the α-β model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.comm import Communicator, CostModel, Endpoint
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.metrics import phone_call_cost

__all__ = ["run_phone_call", "batching_sweep"]


def batching_sweep(
    total_units: float, alpha: float, beta: float, max_messages: int = 64
) -> dict[int, float]:
    """Cost of splitting ``total_units`` across k calls, for k = 1..max."""
    ks = np.arange(1, max_messages + 1)
    costs = phone_call_cost(ks, total_units, alpha, beta)
    return {int(k): float(c) for k, c in zip(ks, costs)}


def run_phone_call(
    classroom: Classroom,
    total_units: int = 120,
    n_messages: int = 12,
    alpha: float = 5.0,
    beta: float = 0.1,
) -> ActivityResult:
    """Compare chatty vs batched transfers, on paper and in the simulator."""
    if n_messages < 1 or total_units < n_messages:
        raise SimulationError("need at least one unit per message")
    result = ActivityResult(activity="LongDistancePhoneCall",
                            classroom_size=classroom.size)
    cost = CostModel(alpha=alpha, beta=beta)

    chatty_formula = phone_call_cost(n_messages, total_units, alpha, beta)
    batched_formula = phone_call_cost(1, total_units, alpha, beta)

    # Replay both through the communicator (rank 0 -> rank 1), sequentially:
    # each chunk is sent only after the previous is acknowledged, which is
    # what "making another call" means.
    def run_transfer(chunks: list[bytes]) -> float:
        sim = Simulator()
        comm = Communicator(sim, 2, cost_model=cost)

        def sender(ep: Endpoint):
            for chunk in chunks:
                yield ep.send(1, chunk)
                yield ep.recv(source=1)          # wait for the ack

        def receiver(ep: Endpoint):
            for _ in chunks:
                yield ep.recv(source=0)
                yield ep.send(0, None)           # zero-size ack

        comm.launch(lambda ep: sender(ep) if ep.rank == 0 else receiver(ep))
        sim.run()
        return sim.now

    unit = b"x"
    per_chunk = total_units // n_messages
    chatty_chunks = [unit * per_chunk for _ in range(n_messages)]
    # Give any remainder to the last chunk so totals match exactly.
    remainder = total_units - per_chunk * n_messages
    if remainder:
        chatty_chunks[-1] += unit * remainder
    chatty_sim = run_transfer(chatty_chunks)
    batched_sim = run_transfer([unit * total_units])

    # The simulated chatty time also pays the ack latency per round trip;
    # the formula models one-way charges only, so compare one-way parts.
    chatty_one_way = chatty_sim - n_messages * alpha   # subtract ack legs
    batched_one_way = batched_sim - alpha

    sweep = batching_sweep(total_units, alpha, beta)
    best_k = min(sweep, key=sweep.get)

    result.metrics = {
        "alpha": alpha,
        "beta": beta,
        "chatty_formula": chatty_formula,
        "batched_formula": batched_formula,
        "chatty_simulated_one_way": chatty_one_way,
        "batched_simulated_one_way": batched_one_way,
        "savings_factor": chatty_formula / batched_formula,
        "optimal_message_count": best_k,
    }
    result.require("batching_always_wins", batched_formula < chatty_formula)
    result.require("formula_matches_simulator_chatty",
                   abs(chatty_one_way - chatty_formula) < 1e-6)
    result.require("formula_matches_simulator_batched",
                   abs(batched_one_way - batched_formula) < 1e-6)
    result.require("one_call_is_optimal", best_k == 1)
    return result
