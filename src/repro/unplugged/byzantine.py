"""ByzantineGenerals: Lloyd's classroom game, executable.

Student generals exchange written orders through messengers while secret
traitors lie.  The simulation implements the recursive Oral Messages
algorithm OM(m) of Lamport, Shostak and Pease -- exactly the game Lloyd's
write-up stages round by round -- and sweeps the traitor count to expose
the n > 3m boundary the class discovers empirically:

* with n = 7, m = 2: loyal lieutenants agree and obey a loyal commander;
* with n = 6, m = 2 (or OM(1) against 2 traitors): agreement can fail.

Traitor behaviour is deterministic per seed: a traitor flips every value
it relays, the strongest consistent adversary for the majority-vote
algorithm.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_byzantine_generals", "om_agreement"]

ATTACK, RETREAT = "attack", "retreat"


def _flip(order: str) -> str:
    return RETREAT if order == ATTACK else ATTACK


def _om(
    commander: int,
    order: str,
    lieutenants: list[int],
    m: int,
    traitors: set[int],
) -> dict[int, str]:
    """OM(m): returns the value each lieutenant settles on.

    A traitorous commander sends alternating orders; a traitorous relay
    flips what it forwards.
    """
    decisions: dict[int, str] = {}
    # Step 1: commander sends a value to every lieutenant.
    sent: dict[int, str] = {}
    for idx, lt in enumerate(lieutenants):
        if commander in traitors:
            sent[lt] = order if idx % 2 == 0 else _flip(order)
        else:
            sent[lt] = order

    if m == 0:
        return dict(sent)

    # Step 2: each lieutenant acts as commander in OM(m-1) for the others.
    received: dict[int, dict[int, str]] = {lt: {} for lt in lieutenants}
    for lt in lieutenants:
        value = sent[lt]
        if lt in traitors:
            value = _flip(value)
        others = [o for o in lieutenants if o != lt]
        sub = _om(lt, value, others, m - 1, traitors)
        for other, v in sub.items():
            received[other][lt] = v

    # Step 3: majority over own value and relayed values.
    for lt in lieutenants:
        values = [sent[lt]] + [received[lt][o] for o in lieutenants if o != lt]
        attack_votes = sum(1 for v in values if v == ATTACK)
        decisions[lt] = ATTACK if attack_votes * 2 > len(values) else RETREAT
    return decisions


def om_agreement(
    n: int, m: int, traitors: set[int], order: str = ATTACK
) -> tuple[bool, bool, dict[int, str]]:
    """Run OM(m) with general 0 commanding; returns (agreement, validity, decisions).

    *Agreement*: all loyal lieutenants decide the same value.  *Validity*:
    if the commander is loyal, they decide the commander's order.
    """
    if n < 2:
        raise SimulationError("need at least a commander and one lieutenant")
    lieutenants = list(range(1, n))
    decisions = _om(0, order, lieutenants, m, traitors)
    loyal = [lt for lt in lieutenants if lt not in traitors]
    loyal_values = {decisions[lt] for lt in loyal}
    agreement = len(loyal_values) <= 1
    validity = (0 in traitors) or loyal_values <= {order}
    return agreement, validity, decisions


def run_byzantine_generals(
    classroom: Classroom,
    m: int = 1,
    commander_traitor: bool = False,
) -> ActivityResult:
    """Play the game with the classroom as the army.

    Traitors are the last ``m`` students (plus the commander when
    ``commander_traitor``); the result's checks encode the n > 3m theorem.
    """
    n = classroom.size
    if n < 3:
        raise SimulationError("the game needs at least 3 generals")
    if m < 0 or m >= n:
        raise SimulationError("traitor count out of range")

    traitors = set(range(n - m, n)) if m else set()
    if commander_traitor:
        traitors = {0} | set(range(n - max(m - 1, 0), n)) if m else {0}

    agreement, validity, decisions = om_agreement(n, m, traitors)
    result = ActivityResult(activity="ByzantineGenerals", classroom_size=n)
    for lt, decision in decisions.items():
        result.trace.record(float(m), classroom.student(lt), "decide", decision)

    # Message count of OM(m): (n-1)(n-2)...(n-1-m) in the full algorithm.
    messages = 1
    span = n - 1
    for _ in range(m + 1):
        messages *= span
        span -= 1
    result.metrics = {
        "generals": n,
        "traitors": len(traitors),
        "rounds": m + 1,
        "oral_messages": messages,
        "agreement": agreement,
        "validity": validity,
    }
    if n > 3 * len(traitors) and m >= len(traitors):
        result.require("agreement_guaranteed", agreement)
        result.require("validity_guaranteed", validity)
    else:
        result.require("bound_noted", True)
    result.output = decisions
    return result
