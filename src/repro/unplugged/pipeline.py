"""LaundryPipeline: the washer/dryer/folder dramatization, executable.

Loads flow through staged students connected by hand-off baskets
(bounded :class:`Store`\\ s).  The simulation measures what the activity
stages physically:

* latency of one load = sum of stage times (nothing overlaps for a
  single load),
* steady-state throughput = 1 / slowest-stage time (the bottleneck rule),
* total time for L loads ≈ fill + (L-1) * bottleneck, vs the serial
  L * sum(stages) -- the pipeline's speedup approaches
  sum(stages)/max(stage) as L grows.

Stage times are configurable so the class can ask "what if the dryer is
twice as slow?" and watch the bottleneck move.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sync import Store

__all__ = ["run_laundry_pipeline"]


def run_laundry_pipeline(
    classroom: Classroom,
    loads: int = 12,
    stage_times: tuple[float, ...] = (2.0, 3.0, 1.0),
    basket_capacity: int = 2,
) -> ActivityResult:
    """Push ``loads`` laundry loads through the staged classroom."""
    if loads < 1:
        raise SimulationError("need at least one load")
    if len(stage_times) < 2:
        raise SimulationError("a pipeline needs at least two stages")
    if classroom.size < len(stage_times):
        raise SimulationError("need one student per stage")
    stages = len(stage_times)

    sim = Simulator()
    # baskets[i] feeds stage i; the source basket starts full of loads.
    baskets = [Store(sim, capacity=None if i == 0 else basket_capacity,
                     name=f"basket{i}") for i in range(stages)]
    done = Store(sim, name="done")
    for load in range(loads):
        baskets[0].put(load)

    completion_times: list[float] = []

    def stage(i: int):
        student = classroom.student(i)
        for _ in range(loads):
            load = yield baskets[i].get()
            yield sim.timeout(stage_times[i])
            if i + 1 < stages:
                yield baskets[i + 1].put(load)
            else:
                completion_times.append(sim.now)
                yield done.put(load)
            # trace each hand-off
        return None

    for i in range(stages):
        sim.process(stage(i), name=f"stage{i}")
    sim.run()

    total_time = max(completion_times)
    latency_one = sum(stage_times)
    bottleneck = max(stage_times)
    serial_time = loads * latency_one
    # Inter-departure gaps at the sink in steady state.
    gaps = [
        completion_times[i + 1] - completion_times[i]
        for i in range(len(completion_times) - 1)
    ]
    steady_gaps = gaps[stages:] if len(gaps) > stages else gaps

    result = ActivityResult(activity="LaundryPipeline", classroom_size=classroom.size)
    result.metrics = {
        "loads": loads,
        "stages": stages,
        "stage_times": list(stage_times),
        "pipeline_time": total_time,
        "serial_time": serial_time,
        "speedup": serial_time / total_time,
        "first_load_latency": completion_times[0],
        "bottleneck": bottleneck,
        "steady_state_gap": steady_gaps[-1] if steady_gaps else None,
        "asymptotic_speedup": latency_one / bottleneck,
    }
    result.require("all_loads_done", len(completion_times) == loads)
    result.require("order_preserved",
                   completion_times == sorted(completion_times))
    result.require("first_load_pays_full_latency",
                   abs(completion_times[0] - latency_one) < 1e-9)
    result.require(
        "steady_throughput_is_bottleneck",
        all(abs(g - bottleneck) < 1e-9 for g in steady_gaps) if steady_gaps else True,
    )
    result.require(
        "pipeline_time_formula",
        abs(total_time - (latency_one + (loads - 1) * bottleneck)) < 1e-9
        or total_time <= serial_time,
    )
    return result
