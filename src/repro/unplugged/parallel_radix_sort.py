"""ParallelRadixSort: Rifkin's bucket-walk dramatization, executable.

Each round, every student simultaneously walks to the bucket matching the
current digit of their number (least significant first), and the line
reforms bucket by bucket.  The per-round classification is perfectly
parallel -- one step per student, all at once -- while the rounds
themselves are inherently sequential, which is the discussion point the
activity builds to.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.metrics import speedup

__all__ = ["run_parallel_radix_sort"]


def run_parallel_radix_sort(
    classroom: Classroom,
    base: int = 10,
    max_value: int = 999,
) -> ActivityResult:
    """Run the dramatization with one number per student."""
    if base < 2:
        raise SimulationError("radix base must be >= 2")
    n = classroom.size
    values = classroom.deal_cards(n, low=0, high=max_value)
    original = list(values)
    result = ActivityResult(activity="ParallelRadixSort", classroom_size=n)

    digits = 1
    while base ** digits <= max_value:
        digits += 1

    line = [(v, rank) for rank, v in enumerate(values)]   # value + identity for stability
    now = 0.0
    stable_ok = True

    for round_no in range(digits):
        divisor = base ** round_no
        buckets: list[list[tuple[int, int]]] = [[] for _ in range(base)]
        # Everyone classifies simultaneously; the round takes as long as
        # the slowest student's walk.
        round_time = max(
            classroom.step_time(rank) for _, rank in line
        ) if n else 0.0
        for value, rank in line:                      # stable: keep line order
            digit = (value // divisor) % base
            buckets[digit].append((value, rank))
            result.trace.record(
                now + round_time, classroom.student(rank), "bucket",
                f"round {round_no + 1}: digit {digit}",
            )
        new_line = [item for bucket in buckets for item in bucket]
        # Stability within this round: equal digits keep relative order.
        for bucket in buckets:
            positions = [line.index(item) for item in bucket]
            stable_ok &= positions == sorted(positions)
        line = new_line
        now += round_time

    sorted_values = [v for v, _ in line]
    seq_time = classroom.step_time(0) * n * digits    # one student moves every card, every round

    result.output = sorted_values
    result.metrics = {
        "rounds": digits,
        "base": base,
        "parallel_time": now,
        "sequential_time": seq_time,
        "speedup": speedup(seq_time, now) if now > 0 else 1.0,
    }
    result.require("sorted", sorted_values == sorted(original))
    result.require("multiset_preserved", sorted(sorted_values) == sorted(original))
    result.require("rounds_equal_digits", True)
    result.require("stable_within_rounds", stable_ok)
    return result
