"""FencePaintingDecomposition: Giacaman's fence analogy, executable.

Friends paint a long fence split into stretches.  The analogy's three
probing questions, answered with numbers:

* *What if stretches differ?*  Some stretches are in the shade and dry
  slower (cost heterogeneity): an equal-length split leaves the shaded
  painter straggling, while a cost-aware split balances finish times.
* *What if there is one bucket of paint?*  A shared bucket serializes
  refills (a lock); per-painter buckets remove the contention.
* *Why keep your bucket beside you?*  Walking to a far bucket is a
  locality cost proportional to distance; the simulation charges it per
  refill so the "paint cans near painters" refinement is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sync import Lock

__all__ = ["run_fence_painting"]


def _split_equal_length(costs: list[float], painters: int) -> list[list[int]]:
    """Contiguous equal-count shares of the fence stretches."""
    n = len(costs)
    per, extra = divmod(n, painters)
    shares, idx = [], 0
    for p in range(painters):
        count = per + (1 if p < extra else 0)
        shares.append(list(range(idx, idx + count)))
        idx += count
    return shares


def _split_cost_aware(costs: list[float], painters: int) -> list[list[int]]:
    """Optimal contiguous split minimizing the maximum share cost.

    Classic linear-partition dynamic program: dp[p][i] = best possible
    max-cost splitting the first i stretches among p painters.  Optimality
    guarantees the cost-aware split never loses to the equal-length split.
    """
    n = len(costs)
    prefix = [0.0]
    for c in costs:
        prefix.append(prefix[-1] + c)

    INF = float("inf")
    dp = [[INF] * (n + 1) for _ in range(painters + 1)]
    cut = [[0] * (n + 1) for _ in range(painters + 1)]
    dp[0][0] = 0.0
    for p in range(1, painters + 1):
        for i in range(p, n + 1):
            for j in range(p - 1, i):
                candidate = max(dp[p - 1][j], prefix[i] - prefix[j])
                if candidate < dp[p][i]:
                    dp[p][i] = candidate
                    cut[p][i] = j

    shares: list[list[int]] = []
    i = n
    for p in range(painters, 0, -1):
        j = cut[p][i]
        shares.append(list(range(j, i)))
        i = j
    shares.reverse()
    return shares


def run_fence_painting(
    classroom: Classroom,
    stretches: int = 32,
    shade_slowdown: float = 3.0,
    refills_per_stretch: float = 0.5,
    refill_time: float = 0.4,
) -> ActivityResult:
    """Paint the fence under the analogy's three regimes."""
    painters = min(classroom.size, 8)
    if painters < 2:
        raise SimulationError("need at least two painters")
    if stretches < painters:
        raise SimulationError("need at least one stretch per painter")
    rng = np.random.default_rng(classroom.seed + 811)

    # Stretch costs: a shaded band paints slower.
    costs = np.ones(stretches)
    shaded = rng.choice(stretches, size=stretches // 4, replace=False)
    costs[shaded] *= shade_slowdown
    costs = [float(c) for c in costs]

    result = ActivityResult(activity="FencePaintingDecomposition",
                            classroom_size=classroom.size)

    def makespan(shares: list[list[int]]) -> float:
        return max(
            sum(costs[i] for i in share)
            * classroom.step_time(p % classroom.size)
            for p, share in enumerate(shares)
        )

    equal_split = _split_equal_length(costs, painters)
    aware_split = _split_cost_aware(costs, painters)
    equal_makespan = makespan(equal_split)
    aware_makespan = makespan(aware_split)
    # Speed-agnostic work imbalance (the quantity the DP provably minimizes).
    equal_max_share = max(sum(costs[i] for i in s) for s in equal_split)
    aware_max_share = max(sum(costs[i] for i in s) for s in aware_split)

    # Bucket regimes, simulated: painting pauses for refills; a shared
    # bucket is a lock at the fence's start, own buckets sit beside each
    # painter (no lock, no walk).
    def paint_with_buckets(shared_bucket: bool) -> float:
        sim = Simulator()
        bucket = Lock(sim, "bucket") if shared_bucket else None

        def painter(p: int, share: list[int]):
            name = classroom.student(p % classroom.size)
            for stretch in share:
                yield sim.timeout(costs[stretch] * classroom.step_time(p % classroom.size))
                if rng.random() < refills_per_stretch:
                    if bucket is not None:
                        walk = 0.05 * abs(stretch - 0)   # bucket at position 0
                        yield sim.timeout(walk)
                        yield bucket.acquire(name)
                        yield sim.timeout(refill_time)
                        bucket.release(name)
                        yield sim.timeout(walk)
                    else:
                        yield sim.timeout(refill_time)

        for p, share in enumerate(aware_split):
            sim.process(painter(p, share), name=f"painter{p}")
        return sim.run()

    shared_time = paint_with_buckets(shared_bucket=True)
    own_time = paint_with_buckets(shared_bucket=False)

    total_work = sum(costs)
    result.metrics = {
        "stretches": stretches,
        "painters": painters,
        "total_work": total_work,
        "equal_split_makespan": equal_makespan,
        "cost_aware_makespan": aware_makespan,
        "equal_max_share": equal_max_share,
        "cost_aware_max_share": aware_max_share,
        "imbalance_removed": equal_max_share / aware_max_share,
        "shared_bucket_time": shared_time,
        "own_bucket_time": own_time,
        "contention_cost": shared_time - own_time,
    }
    covered = sorted(i for share in aware_split for i in share)
    result.require("every_stretch_painted_once", covered == list(range(stretches)))
    # The DP is optimal over contiguous splits, so it can never lose to
    # the equal-length split on work imbalance (a theorem, not a tendency).
    result.require("cost_aware_never_worse_on_work",
                   aware_max_share <= equal_max_share + 1e-9)
    result.require("own_buckets_not_slower", own_time <= shared_time + 1e-9)
    result.require("above_work_lower_bound",
                   aware_max_share >= total_work / painters - 1e-9)
    return result
