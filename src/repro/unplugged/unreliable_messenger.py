"""The unreliable messenger: stop-and-wait over a lossy channel, executable.

The Byzantine generals game sends written orders by courier; the desert
islands exchange letters.  Both activities invite the question the class
always asks: *what if the messenger is lost?*  This simulation answers it
with the classic stop-and-wait ARQ protocol:

* the sender transmits a numbered letter and waits for an acknowledgement;
* on a timeout it retransmits; duplicate deliveries are filtered by
  sequence number at the receiver;
* both directions cross a :class:`~repro.unplugged.sim.lossy.LossyChannel`
  that drops each crossing with a seeded probability.

Measured: deliveries always complete (for loss < 1), every letter arrives
exactly once and in order, and the retransmission overhead grows like
1/((1-p)^2) -- each successful round trip needs both crossings to survive.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.lossy import LossyChannel

__all__ = ["run_stop_and_wait"]


def run_stop_and_wait(
    classroom: Classroom,
    letters: int = 20,
    loss_rate: float = 0.3,
    timeout: float = 5.0,
    delay: float = 1.0,
) -> ActivityResult:
    """Deliver ``letters`` numbered letters reliably across lossy water."""
    if letters < 1:
        raise SimulationError("need at least one letter")
    if timeout <= 2 * delay:
        raise SimulationError("timeout must exceed a round trip")

    sim = Simulator()
    to_island = LossyChannel(sim, loss_rate=loss_rate, delay=delay,
                             seed=classroom.seed + 11, name="letters")
    to_mainland = LossyChannel(sim, loss_rate=loss_rate, delay=delay,
                               seed=classroom.seed + 13, name="acks")
    result = ActivityResult(activity="UnreliableMessenger",
                            classroom_size=classroom.size)

    received: list[tuple[int, str]] = []
    transmissions = 0
    duplicates_filtered = 0

    def sender():
        nonlocal transmissions
        for seq in range(letters):
            payload = (seq, f"letter-{seq}")
            acked = False
            while not acked:
                transmissions += 1
                to_island.send(payload)
                deadline = sim.timeout(timeout)
                while True:
                    ack_recv = to_mainland.recv()
                    index, value = yield sim.any_of([ack_recv, deadline])
                    if index == 0:
                        if value == seq:
                            acked = True       # fresh ack: next letter
                            break
                        continue               # stale ack: keep listening
                    to_mainland.cancel(ack_recv)
                    break                      # timed out: retransmit

    def receiver():
        nonlocal duplicates_filtered
        expected = 0
        # Run past completion: the final ack may be lost, so the islander
        # keeps answering duplicate letters until the mainland goes quiet
        # (the event heap draining ends the watch).
        while True:
            message = yield to_island.recv()
            seq, text = message
            if seq == expected and expected < letters:
                received.append((seq, text))
                expected += 1
            else:
                duplicates_filtered += 1
            # Always ack what we have seen (acks can be lost too).
            to_mainland.send(seq)

    sim.process(sender(), name="mainland")
    sim.process(receiver(), name="island")
    sim.run(detect_deadlock=False)

    expected_overhead = 1.0 / ((1.0 - loss_rate) ** 2)
    measured_overhead = transmissions / letters

    result.metrics = {
        "letters": letters,
        "loss_rate": loss_rate,
        "transmissions": transmissions,
        "retransmissions": transmissions - letters,
        "duplicates_filtered": duplicates_filtered,
        "letters_dropped_by_sea": to_island.dropped,
        "acks_dropped_by_sea": to_mainland.dropped,
        "measured_overhead": measured_overhead,
        "expected_overhead": expected_overhead,
        "completion_time": sim.now,
    }
    result.require("all_letters_delivered", len(received) == letters)
    result.require("in_order_exactly_once",
                   received == [(i, f"letter-{i}") for i in range(letters)])
    result.require("loss_actually_happened",
                   (to_island.dropped + to_mainland.dropped > 0)
                   or loss_rate == 0.0)
    result.require("overhead_at_least_one", measured_overhead >= 1.0)
    return result
