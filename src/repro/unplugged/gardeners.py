"""Gardeners: Kolikant's distributed-work scenario, executable.

Gardeners must water a long row of plants without a supervisor,
coordinating only through notes.  The simulation compares the two
protocols students propose:

* **Static split** -- the row is pre-divided evenly; with uneven plant
  sizes (some need long soaking) one gardener straggles while the rest
  idle: the makespan is the slowest share.
* **Work stealing via notes** -- finished gardeners take the next
  unwatered plant from a claim sheet (a master-worker queue); the
  makespan approaches total-work / gardeners.

Plant watering times are deterministic per seed and deliberately skewed
(a few thirsty plants) so the two protocols visibly diverge.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sync import Store

__all__ = ["run_gardeners"]


def _plant_times(n_plants: int, rng: np.random.Generator) -> list[float]:
    """Skewed watering times: mostly quick, a few deep-soak plants."""
    base = rng.uniform(0.5, 1.5, size=n_plants)
    thirsty = rng.choice(n_plants, size=max(1, n_plants // 8), replace=False)
    base[thirsty] *= 6.0
    return [float(t) for t in base]


def run_gardeners(classroom: Classroom, n_plants: int = 48) -> ActivityResult:
    """Compare static division against note-based work stealing."""
    gardeners = classroom.size
    if gardeners < 2:
        raise SimulationError("need at least two gardeners")
    if n_plants < gardeners:
        raise SimulationError("need at least one plant per gardener")
    rng = np.random.default_rng(classroom.seed + 31)
    times = _plant_times(n_plants, rng)
    total_work = sum(times)
    result = ActivityResult(activity="Gardeners", classroom_size=gardeners)

    # Static split: contiguous equal-count shares.
    per = n_plants // gardeners
    extras = n_plants % gardeners
    static_spans = []
    idx = 0
    for g in range(gardeners):
        count = per + (1 if g < extras else 0)
        share = times[idx : idx + count]
        idx += count
        static_spans.append(sum(share))
    static_makespan = max(static_spans)
    static_idle = sum(static_makespan - s for s in static_spans)

    # Work stealing: a claim-sheet queue drained by all gardeners.  The
    # sheet lists the thirstiest plants first (LPT order) -- the "start
    # the deep-soak plants at dawn" refinement the class lands on.
    sim = Simulator()
    sheet = Store(sim, name="claim-sheet")
    for plant, t in sorted(enumerate(times), key=lambda pt: -pt[1]):
        sheet.put((plant, t))
    finish = {g: 0.0 for g in range(gardeners)}
    watered: list[int] = []

    def gardener(g: int):
        while len(sheet) > 0:
            item = yield sheet.get()
            plant, t = item
            yield sim.timeout(t)
            watered.append(plant)
            finish[g] = sim.now
            result.trace.record(sim.now, classroom.student(g), "water",
                                f"plant {plant}")

    for g in range(gardeners):
        sim.process(gardener(g), name=f"gardener{g}")
    sim.run()
    dynamic_makespan = max(finish.values())
    dynamic_idle = sum(dynamic_makespan - f for f in finish.values())

    lower_bound = max(total_work / gardeners, max(times))
    result.metrics = {
        "plants": n_plants,
        "total_work": total_work,
        "static_makespan": static_makespan,
        "static_idle_time": static_idle,
        "dynamic_makespan": dynamic_makespan,
        "dynamic_idle_time": dynamic_idle,
        "lower_bound": lower_bound,
        "improvement": static_makespan / dynamic_makespan,
    }
    result.require("all_plants_watered", sorted(watered) == list(range(n_plants)))
    result.require("no_plant_watered_twice", len(watered) == len(set(watered)))
    # Stealing beats the static split except when the static shares happen
    # to be nearly perfectly balanced, so allow a 2 % near-tie margin; the
    # bound-based checks below are the actual theorems.
    result.require("stealing_not_worse",
                   dynamic_makespan <= static_makespan * 1.02 + 1e-9)
    result.require("respects_lower_bound", dynamic_makespan >= lower_bound - 1e-9)
    # Greedy list scheduling is within 2x of optimal (Graham's bound).
    result.require("graham_bound", dynamic_makespan <= 2.0 * lower_bound + 1e-9)
    return result
