"""CheckoutResourceContention and PrinterQueueSharing, executable.

Two shared-resource analogies:

* :func:`run_checkout_contention` (OSCER): shoppers queue at k open
  checkout lanes.  Adding shoppers without adding lanes grows waiting
  time linearly; adding lanes divides it -- the simulation sweeps both
  and reports mean/max wait so the "throughput is capped by the shared
  resource" punchline is a measured curve.

* :func:`run_printer_queue` (Smith & Srivastava): the CS2013 PF-1
  distinction, computed.  The same office staff either (a) split one
  report to finish it sooner -- wall-clock shrinks with workers -- or
  (b) share one printer -- total print time is fixed; more workers only
  reorder who waits.  The simulation runs both modes and checks the
  distinguishing signatures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sync import Semaphore

__all__ = ["run_checkout_contention", "run_printer_queue"]


def _simulate_lanes(
    shoppers: int, lanes: int, service_time: float, arrival_gap: float,
) -> tuple[float, float, float]:
    """Shoppers arrive every ``arrival_gap``; returns (mean wait, max wait,
    finish time)."""
    sim = Simulator()
    open_lanes = Semaphore(sim, lanes, name="lanes")
    waits: list[float] = []

    def shopper(i: int):
        yield sim.timeout(i * arrival_gap)
        arrived = sim.now
        yield open_lanes.acquire()
        waits.append(sim.now - arrived)
        yield sim.timeout(service_time)
        open_lanes.release()

    for i in range(shoppers):
        sim.process(shopper(i), name=f"shopper{i}")
    finish = sim.run()
    return float(np.mean(waits)), float(np.max(waits)), finish


def run_checkout_contention(
    classroom: Classroom,
    service_time: float = 3.0,
    arrival_gap: float = 1.0,
) -> ActivityResult:
    """Sweep shopper and lane counts around the classroom size."""
    n = classroom.size
    if n < 4:
        raise SimulationError("the analogy needs at least four shoppers")
    result = ActivityResult(activity="CheckoutResourceContention",
                            classroom_size=n)

    # Sweep 1: more shoppers, one lane.
    shopper_sweep = {}
    for shoppers in (n // 2, n, 2 * n):
        mean_w, max_w, _ = _simulate_lanes(shoppers, 1, service_time, arrival_gap)
        shopper_sweep[shoppers] = {"mean_wait": mean_w, "max_wait": max_w}

    # Sweep 2: fixed shoppers, more lanes.
    lane_sweep = {}
    for lanes in (1, 2, 4):
        mean_w, max_w, finish = _simulate_lanes(n, lanes, service_time, arrival_gap)
        lane_sweep[lanes] = {"mean_wait": mean_w, "finish": finish}

    result.metrics = {
        "service_time": service_time,
        "arrival_gap": arrival_gap,
        "shopper_sweep": shopper_sweep,
        "lane_sweep": lane_sweep,
    }
    waits_by_shoppers = [shopper_sweep[k]["mean_wait"] for k in sorted(shopper_sweep)]
    result.require("more_shoppers_wait_longer",
                   waits_by_shoppers == sorted(waits_by_shoppers)
                   and waits_by_shoppers[-1] > waits_by_shoppers[0])
    waits_by_lanes = [lane_sweep[k]["mean_wait"] for k in sorted(lane_sweep)]
    result.require("more_lanes_wait_less",
                   waits_by_lanes == sorted(waits_by_lanes, reverse=True))
    # With service faster than arrivals times lanes, queues vanish.
    result.require("enough_lanes_no_queue",
                   lane_sweep[4]["mean_wait"] < lane_sweep[1]["mean_wait"] / 2)
    return result


def run_printer_queue(
    classroom: Classroom,
    pages_total: int = 60,
    page_time: float = 0.5,
) -> ActivityResult:
    """The PF-1 distinction: faster-answer parallelism vs shared-resource
    management, same staff, measured."""
    n = min(classroom.size, 8)
    if n < 2:
        raise SimulationError("need at least two workers")
    result = ActivityResult(activity="PrinterQueueSharing",
                            classroom_size=classroom.size)

    # Mode A: split the report among w workers -> wall clock ~ total/w.
    mode_a = {}
    for workers in (1, 2, 4, n):
        share = -(-pages_total // workers)
        mode_a[workers] = max(
            classroom.step_time(r % classroom.size) * page_time * share
            for r in range(workers)
        )

    # Mode B: w workers each print their own report on ONE printer.
    # The printer is serial: total time is fixed; only the wait order changes.
    mode_b = {}
    for workers in (1, 2, 4, n):
        sim = Simulator()
        printer = Semaphore(sim, 1, name="printer")
        base, extra = divmod(pages_total, workers)

        def worker(i: int, pages: int):
            yield printer.acquire()
            yield sim.timeout(pages * page_time)
            printer.release()

        for i in range(workers):
            sim.process(worker(i, base + (1 if i < extra else 0)), name=f"w{i}")
        mode_b[workers] = sim.run()

    result.metrics = {
        "pages": pages_total,
        "split_report_times": mode_a,
        "shared_printer_times": mode_b,
    }
    # Signature of mode A: time strictly shrinks with workers.
    a_times = [mode_a[w] for w in sorted(mode_a)]
    result.require("faster_answer_scales", a_times == sorted(a_times, reverse=True)
                   and a_times[-1] < a_times[0] / 2)
    # Signature of mode B: total time invariant in the worker count.
    b_times = list(mode_b.values())
    result.require("shared_resource_does_not_scale",
                   max(b_times) - min(b_times) < page_time + 1e-9)
    return result
