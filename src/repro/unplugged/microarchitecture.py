"""The Eum-Sethumadhavan microarchitecture metaphors, executable.

* :func:`run_cache_library` -- the study-desk memory hierarchy: books on
  the desk (registers), the shelf (cache), the library (memory),
  interlibrary loan (disk).  The simulation computes average access time
  over a hit-rate sweep (the AMAT formula), and replays a reference
  string through an LRU "desk shelf" so the class sees locality turn into
  hit rate.

* :func:`run_assembly_line` -- the car plant instruction pipeline: a
  5-stage line, stalls when a station waits on a part (data hazard), and
  a full re-tooling flush when the model changes (branch mispredict).
  Reports CPI against the ideal of 1.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_cache_library", "run_assembly_line", "amat", "lru_hit_rate"]


def amat(hit_time: float, miss_rate: float, miss_penalty: float) -> float:
    """Average memory access time = hit + miss_rate * penalty."""
    if not 0.0 <= miss_rate <= 1.0:
        raise SimulationError("miss rate must be in [0, 1]")
    return hit_time + miss_rate * miss_penalty


def lru_hit_rate(references: list[int], capacity: int) -> float:
    """Hit rate of an LRU cache of ``capacity`` slots over a reference string."""
    if capacity < 1:
        raise SimulationError("cache needs at least one slot")
    cache: OrderedDict[int, None] = OrderedDict()
    hits = 0
    for ref in references:
        if ref in cache:
            hits += 1
            cache.move_to_end(ref)
        else:
            if len(cache) >= capacity:
                cache.popitem(last=False)
            cache[ref] = None
    return hits / len(references) if references else 0.0


def run_cache_library(
    classroom: Classroom,
    shelf_slots: int = 4,
    books: int = 16,
    lookups: int = 200,
    locality: float = 0.8,
) -> ActivityResult:
    """The desk-shelf study session: locality -> hit rate -> AMAT."""
    if not 0.0 <= locality < 1.0:
        raise SimulationError("locality must be in [0, 1)")
    rng = np.random.default_rng(classroom.seed + 307)
    result = ActivityResult(activity="CacheLibraryMetaphor",
                            classroom_size=classroom.size)

    # Metaphor costs (in minutes): shelf 1, library trip 30.
    shelf_time, library_trip = 1.0, 30.0

    def reference_string(loc: float) -> list[int]:
        """With probability ``loc`` re-reference a recently used book
        (temporal locality); otherwise pick any book in the library."""
        refs: list[int] = []
        recent: list[int] = []
        for _ in range(lookups):
            if recent and rng.random() < loc:
                book = recent[int(rng.integers(len(recent)))]
            else:
                book = int(rng.integers(books))
            refs.append(book)
            if book in recent:
                recent.remove(book)
            recent.append(book)
            if len(recent) > shelf_slots:
                recent.pop(0)
        return refs

    focused = reference_string(locality)
    scattered = reference_string(0.0)
    focused_hits = lru_hit_rate(focused, shelf_slots)
    scattered_hits = lru_hit_rate(scattered, shelf_slots)
    focused_amat = amat(shelf_time, 1 - focused_hits, library_trip)
    scattered_amat = amat(shelf_time, 1 - scattered_hits, library_trip)

    sweep = {
        round(h, 2): amat(shelf_time, 1 - h, library_trip)
        for h in (0.0, 0.5, 0.9, 0.99)
    }

    result.metrics = {
        "shelf_slots": shelf_slots,
        "focused_hit_rate": focused_hits,
        "scattered_hit_rate": scattered_hits,
        "focused_amat_minutes": focused_amat,
        "scattered_amat_minutes": scattered_amat,
        "amat_by_hit_rate": sweep,
    }
    result.require("locality_raises_hit_rate", focused_hits > scattered_hits)
    result.require("hit_rate_drives_amat", focused_amat < scattered_amat)
    result.require("amat_formula_monotone",
                   list(sweep.values()) == sorted(sweep.values(), reverse=True))
    result.require("perfect_hits_cost_shelf_time",
                   amat(shelf_time, 0.0, library_trip) == shelf_time)
    return result


def run_assembly_line(
    classroom: Classroom,
    cars: int = 40,
    stall_every: int = 7,
    stall_cycles: int = 2,
    model_change_every: int = 13,
) -> ActivityResult:
    """The pipelined car plant: throughput 1/cycle until stalls and flushes."""
    if cars < 1:
        raise SimulationError("need at least one car")
    stages = 5
    result = ActivityResult(activity="AssemblyLinePipeline",
                            classroom_size=classroom.size)

    # Cycle-accurate tally: the line retires one car per cycle except when
    # a stall bubbles through or a model change flushes the line.
    cycles = stages                       # fill
    stalls = flushes = 0
    for car in range(1, cars):
        cycles += 1
        if stall_every and car % stall_every == 0:
            cycles += stall_cycles        # the waiting-for-parts bubble
            stalls += 1
        if model_change_every and car % model_change_every == 0:
            cycles += stages - 1          # re-tool: refill the line
            flushes += 1

    ideal_cycles = stages + (cars - 1)
    unpipelined = stages * cars
    cpi = cycles / cars
    result.metrics = {
        "cars": cars,
        "stages": stages,
        "cycles": cycles,
        "ideal_cycles": ideal_cycles,
        "unpipelined_cycles": unpipelined,
        "stalls": stalls,
        "flushes": flushes,
        "cpi": cpi,
        "speedup_vs_unpipelined": unpipelined / cycles,
    }
    result.require("pipelining_helps", cycles < unpipelined)
    result.require("hazards_cost_cycles", cycles > ideal_cycles)
    result.require("cpi_above_one", cpi > 1.0)
    result.require(
        "cycle_accounting_exact",
        cycles == ideal_cycles + stalls * stall_cycles + flushes * (stages - 1),
    )
    # Asymptotically the speedup approaches (but never reaches) the stage
    # count, and hazards pull it further down.
    result.require("speedup_below_stage_count",
                   unpipelined / cycles < stages)
    return result
