"""TopologyYarnWeb: the interconnection-network building game, executable.

Students holding yarn build a ring, a star, a mesh, and (for power-of-two
classes) a hypercube; a bead is routed hop by hop, and cutting a strand
tests fault tolerance.  The simulation builds the same networks over the
classroom, routes the same bead, and tabulates what the class counts:
hops between the chosen pair, diameter, strands used, and whether one cut
disconnects anyone -- plus the cost trade-off (strands bought vs hops
paid) that makes "which network is best?" a real discussion.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.topology import Topology

__all__ = ["run_topology_yarn"]


def _buildable(n: int) -> dict[str, Topology]:
    nets: dict[str, Topology] = {}
    if n >= 3:
        nets["ring"] = Topology.ring(n)
    if n >= 2:
        nets["star"] = Topology.star(n)
    rows = int(math.isqrt(n))
    while rows > 1 and n % rows:
        rows -= 1
    if rows > 1:
        nets["mesh"] = Topology.mesh(rows, n // rows)
    dim = int(math.log2(n))
    if 2 ** dim == n and dim >= 2:
        nets["hypercube"] = Topology.hypercube(dim)
    nets["complete"] = Topology.complete(n)
    return nets


def run_topology_yarn(classroom: Classroom) -> ActivityResult:
    """Build every network the class size allows and route the bead."""
    n = classroom.size
    if n < 4:
        raise SimulationError("the yarn game needs at least four students")
    result = ActivityResult(activity="TopologyYarnWeb", classroom_size=n)

    networks = _buildable(n)
    src, dst = 0, n // 2                   # the "far corner" pair

    table: dict[str, dict[str, object]] = {}
    for name, topo in networks.items():
        route = topo.route(src, dst)
        survives = all(
            topo.survives_edge_cut(u, v)
            for u, v in zip(route, route[1:])
        ) if len(route) > 1 else True
        table[name] = {
            "strands": topo.num_links,
            "hops": topo.hops(src, dst),
            "diameter": topo.diameter(),
            "avg_hops": topo.average_hops(),
            "one_cut_safe": topo.edge_connectivity() >= 2,
            "route_cut_survivable": survives,
        }
        for hop, student in enumerate(route):
            result.trace.record(float(hop), classroom.student(student),
                                "bead", name)

    result.metrics = {"pair": (src, dst), "networks": table}

    result.require("star_two_hops_max", table["star"]["diameter"] == 2)
    result.require("ring_farthest_pair",
                   table["ring"]["hops"] == n // 2 if "ring" in table else True)
    result.require("complete_is_one_hop", table["complete"]["hops"] == 1)
    result.require(
        "star_dies_on_one_cut",
        not table["star"]["one_cut_safe"],
    )
    result.require(
        "ring_survives_one_cut",
        table["ring"]["one_cut_safe"] if "ring" in table else True,
    )
    if "hypercube" in table:
        dim = int(math.log2(n))
        result.require("hypercube_log_diameter",
                       table["hypercube"]["diameter"] == dim)
    # The trade-off the class lands on: more strands, fewer hops.
    by_strands = sorted(table.values(), key=lambda r: r["strands"])
    result.require(
        "strands_buy_shorter_routes",
        by_strands[-1]["avg_hops"] <= by_strands[0]["avg_hops"],
    )
    return result
