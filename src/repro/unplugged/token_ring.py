"""SelfStabilizingTokenRing: Dijkstra's K-state protocol, executable.

The Sivilotti-Demirbas outreach activity: students in a circle hold
counter values; student 0 (the "bottom" machine) holds a token when her
counter equals her predecessor's, everyone else when their counter
*differs* from their predecessor's.  Firing a token advances the counter,
passing the token on.  A gremlin may corrupt every counter arbitrarily --
and the system still converges to exactly one circulating token, which is
the fault-tolerance punchline.

Dijkstra's protocol (K >= n states): machine 0 fires when ``c[0] == c[n-1]``
(sets ``c[0] = (c[0]+1) % K``); machine i>0 fires when ``c[i] != c[i-1]``
(sets ``c[i] = c[i-1]``).  A machine holds "the token" iff it is enabled;
legitimate states have exactly one enabled machine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_token_ring", "enabled_machines"]


def enabled_machines(counters: list[int], k: int) -> list[int]:
    """Indices of machines holding a token (enabled to fire)."""
    n = len(counters)
    enabled = []
    if counters[0] == counters[n - 1]:
        enabled.append(0)
    for i in range(1, n):
        if counters[i] != counters[i - 1]:
            enabled.append(i)
    return enabled


def run_token_ring(
    classroom: Classroom,
    corruptions: int = 5,
    horizon_factor: int = 20,
) -> ActivityResult:
    """Run the protocol through ``corruptions`` gremlin attacks.

    After each corruption the ring runs under a randomized (seeded)
    central daemon until it stabilizes; we record stabilization times and
    verify closure (once legal, always legal) over a trailing window.
    """
    n = classroom.size
    if n < 2:
        raise SimulationError("token ring needs at least 2 students")
    k = n + 1                      # K >= n guarantees self-stabilization
    rng = np.random.default_rng(classroom.seed + 17)
    result = ActivityResult(activity="SelfStabilizingTokenRing", classroom_size=n)

    counters = [0] * n             # a legitimate state (only machine 0 enabled)
    stabilization_steps: list[int] = []
    always_stabilized = True
    closure_ok = True
    mutual_exclusion_ok = True
    horizon = horizon_factor * n * k

    for attack in range(corruptions):
        # Gremlin corrupts every counter.
        counters = [int(rng.integers(k)) for _ in range(n)]
        steps = 0
        stabilized_at: int | None = None
        while steps < horizon:
            enabled = enabled_machines(counters, k)
            if len(enabled) == 1 and stabilized_at is None:
                stabilized_at = steps
            if stabilized_at is not None and len(enabled) != 1:
                closure_ok = False     # left the legal set after entering it
            if not enabled:            # cannot happen in Dijkstra's protocol
                mutual_exclusion_ok = False
                break
            fire = enabled[int(rng.integers(len(enabled)))]
            if fire == 0:
                counters[0] = (counters[0] + 1) % k
            else:
                counters[fire] = counters[fire - 1]
            steps += 1
            result.trace.record(
                float(steps), classroom.student(fire), "fire",
                f"attack {attack + 1}",
            )
            # Run a while past stabilization to exercise closure.
            if stabilized_at is not None and steps >= stabilized_at + 3 * n:
                break
        if stabilized_at is None:
            always_stabilized = False
            stabilization_steps.append(horizon)
        else:
            stabilization_steps.append(stabilized_at)

    arr = np.array(stabilization_steps)
    result.metrics = {
        "corruptions": corruptions,
        "k_states": k,
        "min_stabilization_steps": int(arr.min()),
        "max_stabilization_steps": int(arr.max()),
        "mean_stabilization_steps": float(arr.mean()),
    }
    result.require("always_stabilizes", always_stabilized)
    result.require("closure_once_legal", closure_ok)
    result.require("at_least_one_token_always", mutual_exclusion_ok)
    return result
