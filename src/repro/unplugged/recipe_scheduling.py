"""ParallelRecipeCooking: Giacaman's dinner-plan analogy, executable.

Students decompose a multi-dish dinner into tasks, mark dependencies, and
assign cooks so the meal finishes soonest.  The simulation builds the
recipe :class:`~repro.unplugged.sim.dag.TaskGraph`, computes work, span
and the critical path, list-schedules it on 1..p cooks, and renders the
Gantt chart the class draws -- showing the makespan hit the span wall
exactly when cooks exceed the graph's average parallelism.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.dag import TaskGraph

__all__ = ["run_recipe_scheduling", "build_dinner_graph"]


def build_dinner_graph() -> TaskGraph:
    """The worked dinner plan: three dishes sharing prep and oven stages."""
    g = TaskGraph()
    # Starter: soup.
    g.add_task("chop-vegetables", 10)
    g.add_task("simmer-soup", 25, deps=["chop-vegetables"])
    # Main: roast with sauce.
    g.add_task("marinate-roast", 15)
    g.add_task("preheat-oven", 10)
    g.add_task("roast-meat", 40, deps=["marinate-roast", "preheat-oven"])
    g.add_task("make-sauce", 15, deps=["chop-vegetables"])
    g.add_task("plate-main", 5, deps=["roast-meat", "make-sauce"])
    # Dessert.
    g.add_task("mix-batter", 10)
    g.add_task("bake-cake", 30, deps=["mix-batter", "preheat-oven"])
    g.add_task("frost-cake", 10, deps=["bake-cake"])
    # Serving depends on everything plated.
    g.add_task("serve", 5, deps=["simmer-soup", "plate-main", "frost-cake"])
    return g


def run_recipe_scheduling(
    classroom: Classroom,
    graph: TaskGraph | None = None,
    max_cooks: int | None = None,
) -> ActivityResult:
    """Schedule the dinner on 1..max_cooks cooks and chart the results."""
    graph = graph or build_dinner_graph()
    limit = max_cooks or min(classroom.size, 6)
    if limit < 1:
        raise SimulationError("need at least one cook")

    result = ActivityResult(activity="ParallelRecipeCooking",
                            classroom_size=classroom.size)
    work, span = graph.work, graph.span
    critical = graph.critical_path()

    makespans: dict[int, float] = {}
    all_valid = True
    for cooks in range(1, limit + 1):
        schedule = graph.list_schedule(cooks)
        try:
            graph.verify_schedule(schedule)
        except SimulationError:
            all_valid = False
        makespans[cooks] = schedule.makespan
        for entry in schedule.timeline(0):
            result.trace.record(entry.start,
                                classroom.student(entry.worker % classroom.size),
                                "cook", f"p={cooks}: {entry.task}")

    monotone = all(
        makespans[p + 1] <= makespans[p] + 1e-9 for p in range(1, limit)
    )
    result.metrics = {
        "tasks": len(graph),
        "work": work,
        "span": span,
        "max_parallelism": graph.max_parallelism(),
        "critical_path": critical,
        "makespans": makespans,
        "speedup_at_max": makespans[1] / makespans[limit],
    }
    result.require("single_cook_time_is_work", abs(makespans[1] - work) < 1e-9)
    result.require("never_beats_span", all(m >= span - 1e-9 for m in makespans.values()))
    result.require("more_cooks_never_slower", monotone)
    result.require("all_schedules_valid", all_valid)
    result.require(
        "span_wall_reached",
        limit < graph.max_parallelism() or abs(makespans[limit] - span) < span * 0.5,
    )
    return result
