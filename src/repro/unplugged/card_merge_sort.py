"""ParallelCardSort: the Bachelis/Moore team merge sort, executable.

Teams of students each sort a hand of cards alone, then pairs of teams
merge their sorted hands, halving the number of runs each round.  The
simulation reproduces the timing demonstration the activity stages --
sorting the same deck with 1, 2, 4, 8 sorters -- including the serial
final merges that keep the speedup sublinear (the Amdahl discussion the
instructor is fishing for).
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.metrics import speedup

__all__ = ["run_card_merge_sort", "merge_sort_time_model"]


def _merge(left: list[int], right: list[int]) -> tuple[list[int], int]:
    """Merge two sorted hands; returns (merged, comparisons)."""
    out: list[int] = []
    i = j = comparisons = 0
    while i < len(left) and j < len(right):
        comparisons += 1
        if left[i] <= right[j]:
            out.append(left[i]); i += 1
        else:
            out.append(right[j]); j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out, comparisons


def merge_sort_time_model(deck_size: int, sorters: int, step_time: float = 1.0) -> float:
    """Closed-form time model: local n/p log(n/p) sorts + log p merge rounds."""
    if sorters < 1:
        raise SimulationError("need at least one sorter")
    chunk = deck_size / sorters
    local = chunk * max(1.0, math.log2(max(chunk, 2)))
    merge_total = 0.0
    runs = sorters
    size = chunk
    while runs > 1:
        size *= 2
        merge_total += size          # one merge pass over the combined hand
        runs = math.ceil(runs / 2)
    return step_time * (local + merge_total)


def run_card_merge_sort(
    classroom: Classroom,
    deck_size: int = 64,
    sorters: int | None = None,
) -> ActivityResult:
    """Sort a dealt deck with ``sorters`` students (default: whole class)."""
    p = sorters if sorters is not None else classroom.size
    if p < 1 or p > classroom.size:
        raise SimulationError(f"sorters must be in 1..{classroom.size}")
    deck = classroom.deal_cards(deck_size, low=1, high=deck_size * 10)
    result = ActivityResult(activity="ParallelCardSort", classroom_size=classroom.size)

    # Deal hands round-robin, sort each locally (insertion-sort cost model:
    # students sort small hands by insertion, ~k^2/4 comparisons).
    hands: list[list[int]] = [deck[i::p] for i in range(p)]
    now = 0.0
    local_times = []
    comparisons = 0
    for rank, hand in enumerate(hands):
        k = len(hand)
        cost = classroom.step_time(rank) * (k * k) / 4.0
        local_times.append(cost)
        comparisons += (k * k) // 4
        hand.sort()
        result.trace.record(cost, classroom.student(rank), "sort",
                            f"local hand of {k}")
    now += max(local_times) if local_times else 0.0

    # Pairwise merge rounds: in each round, team 2i merges with 2i+1.
    runs = hands
    round_no = 0
    merge_rounds = 0
    while len(runs) > 1:
        round_no += 1
        merge_rounds += 1
        next_runs: list[list[int]] = []
        round_time = 0.0
        for g in range(0, len(runs), 2):
            if g + 1 >= len(runs):
                next_runs.append(runs[g])
                continue
            merged, cmps = _merge(runs[g], runs[g + 1])
            comparisons += cmps
            merger_rank = (g // 2) % classroom.size
            t = classroom.step_time(merger_rank) * len(merged)
            round_time = max(round_time, t)
            next_runs.append(merged)
            result.trace.record(now + t, classroom.student(merger_rank),
                                "merge", f"round {round_no}: {len(merged)} cards")
        now += round_time
        runs = next_runs

    final = runs[0]
    # The sequential baseline is the same human cost model at p=1: one
    # student insertion-sorting the whole deck (~n^2/4 comparisons).  The
    # quadratic local sort is why the classroom demonstration looks so
    # dramatic -- splitting quadratic work across p hands cuts the local
    # term by p^2, a genuine talking point when the class computes
    # efficiency.
    seq_time = classroom.step_time(0) * (deck_size * deck_size) / 4.0

    result.output = final
    result.metrics = {
        "sorters": p,
        "deck_size": deck_size,
        "comparisons": comparisons,
        "merge_rounds": merge_rounds,
        "parallel_time": now,
        "sequential_time": seq_time,
        "speedup": speedup(seq_time, now) if now > 0 else 1.0,
    }
    result.require("sorted", final == sorted(deck))
    result.require("multiset_preserved", sorted(final) == sorted(deck))
    result.require("log_merge_rounds", merge_rounds == math.ceil(math.log2(p)) if p > 1 else merge_rounds == 0)
    return result
