"""ParallelAdditionCards and CoinCountingArraySum (iPDC), executable.

* :func:`run_parallel_addition` -- pairs sum card piles up a binary tree.
  Runs as a real message-passing reduction on the communicator, draws the
  dependency tree, and compares tree levels against the single adder's
  step count.

* :func:`run_coin_counting` -- the data-parallel loop: a coin pile split
  among students counted simultaneously, with two classroom variations:
  a skewed split (someone gets the big pile -- imbalance) and the
  "two students grab the same coins" mistake (double counting, which the
  exact-total check catches the way the class does).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.comm import Communicator, Endpoint
from repro.unplugged.sim.engine import Simulator

__all__ = ["run_parallel_addition", "run_coin_counting"]


def run_parallel_addition(
    classroom: Classroom,
    cards_per_student: int = 4,
) -> ActivityResult:
    """Tree-sum one pile of cards per student over the communicator."""
    n = classroom.size
    if n < 2:
        raise SimulationError("need at least two adders")
    piles = [
        classroom.deal_cards(cards_per_student, low=1, high=500)
        for _ in range(n)
    ]
    locals_sums = [sum(p) for p in piles]
    expected = sum(locals_sums)

    sim = Simulator()
    comm = Communicator(sim, n)
    roots: dict[int, int] = {}

    def adder(ep: Endpoint):
        total = yield from ep.reduce(locals_sums[ep.rank], lambda a, b: a + b,
                                     root=0)
        if ep.rank == 0:
            roots[0] = total

    comm.launch(adder)
    sim.run()

    result = ActivityResult(activity="ParallelAdditionCards", classroom_size=n)
    levels = math.ceil(math.log2(n))
    sequential_steps = n * cards_per_student - 1
    parallel_steps = cards_per_student - 1 + levels

    result.output = roots[0]
    result.metrics = {
        "students": n,
        "cards_each": cards_per_student,
        "tree_levels": levels,
        "messages": comm.stats.messages,
        "sequential_additions": sequential_steps,
        "parallel_critical_path": parallel_steps,
        "speedup_bound": sequential_steps / parallel_steps,
    }
    result.require("sum_correct", roots[0] == expected)
    result.require("messages_are_n_minus_1", comm.stats.messages == n - 1)
    result.require("logarithmic_levels", levels == math.ceil(math.log2(n)))
    result.require("tree_beats_single_adder",
                   parallel_steps < sequential_steps or n <= 2)
    return result


def run_coin_counting(
    classroom: Classroom,
    coins: int = 120,
) -> ActivityResult:
    """Split-count-combine, with the imbalance and double-count variations."""
    n = classroom.size
    if n < 2:
        raise SimulationError("need at least two counters")
    if coins < n:
        raise SimulationError("need at least one coin per counter")
    rng = np.random.default_rng(classroom.seed + 601)
    values = rng.integers(1, 4, size=coins)        # pennies to larger coins
    total = int(values.sum())
    result = ActivityResult(activity="CoinCountingArraySum", classroom_size=n)

    # Even split: each student counts a contiguous share.
    bounds = np.linspace(0, coins, n + 1, dtype=int)
    shares = [values[bounds[i]: bounds[i + 1]] for i in range(n)]
    partials = [int(s.sum()) for s in shares]
    even_time = max(
        classroom.step_time(i) * len(shares[i]) for i in range(n)
    )
    combine_time = classroom.step_time(0) * n      # reporting in, serially
    sequential_time = classroom.step_time(0) * coins

    # Skewed split: one student gets half the pile.
    big = coins // 2
    rest = coins - big
    skew_counts = [big] + [rest // (n - 1)] * (n - 1)
    skew_counts[-1] += rest - sum(skew_counts[1:])
    skew_time = max(
        classroom.step_time(i) * c for i, c in enumerate(skew_counts)
    )

    # The double-grab mistake: two students both count an overlapping run.
    overlap = len(shares[1]) // 2
    wrong_partials = list(partials)
    wrong_partials[0] += int(shares[1][:overlap].sum())
    mistake_total = sum(wrong_partials)

    result.metrics = {
        "coins": coins,
        "true_total": total,
        "partials": partials,
        "even_parallel_time": even_time + combine_time,
        "skewed_parallel_time": skew_time + combine_time,
        "sequential_time": sequential_time,
        "speedup": sequential_time / (even_time + combine_time),
        "double_count_total": mistake_total,
    }
    result.require("partials_combine_exactly", sum(partials) == total)
    result.require("parallel_beats_sequential",
                   even_time + combine_time < sequential_time)
    result.require("skew_hurts", skew_time > even_time)
    result.require("double_count_detected", mistake_total > total)
    return result
