"""RhythmClapSIMD: the lockstep percussion demonstration, executable.

A conductor calls one instruction per beat and every student executes it
on their own hands -- SIMD.  Masking (only students matching a predicate
play) and the MIMD contrast (everyone follows their own rhythm card) are
the two variations the activity stages.  The simulation builds the cost
model the demonstration embodies:

* SIMD: beats = instructions; masked students burn the beat idle, so
  *utilization* drops with divergence even though time doesn't.
* MIMD: every student finishes their own card independently; time is the
  longest card, and a conductor is no longer needed (asynchrony).

Flynn's distinction becomes two numbers: lockstep beats vs per-student
finish spread.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_rhythm_clap"]


def run_rhythm_clap(
    classroom: Classroom,
    beats: int = 32,
    mask_fraction: float = 0.5,
) -> ActivityResult:
    """Play one SIMD piece (with a masked section) and one MIMD piece."""
    n = classroom.size
    if not 0.0 <= mask_fraction <= 1.0:
        raise SimulationError("mask fraction must be in [0, 1]")
    if beats < 4:
        raise SimulationError("need at least four beats")
    rng = np.random.default_rng(classroom.seed + 401)
    result = ActivityResult(activity="RhythmClapSIMD", classroom_size=n)

    # --- SIMD: one instruction stream, all students in lockstep. -------------
    # A contiguous middle section is predicated (e.g. "only glasses-wearers").
    masked_span = (beats // 4, beats // 4 + beats // 2)
    masked_students = set(
        int(i) for i in rng.choice(n, size=int(n * mask_fraction), replace=False)
    )
    executed = 0
    idle = 0
    for beat in range(beats):
        in_masked_section = masked_span[0] <= beat < masked_span[1]
        for student in range(n):
            if in_masked_section and student in masked_students:
                idle += 1
            else:
                executed += 1
    simd_beats = beats                        # lockstep: time == instructions
    utilization = executed / (beats * n)

    # --- MIMD: every student gets their own rhythm card. ----------------------
    cards = rng.integers(beats // 2, beats + beats // 2, size=n)
    finishes = np.array([
        int(cards[i]) for i in range(n)
    ], dtype=float)
    mimd_time = float(finishes.max())
    finish_spread = float(finishes.max() - finishes.min())

    result.metrics = {
        "students": n,
        "simd_beats": simd_beats,
        "masked_students": len(masked_students),
        "simd_utilization": utilization,
        "mimd_time": mimd_time,
        "mimd_finish_spread": finish_spread,
    }
    expected_idle = len(masked_students) * (masked_span[1] - masked_span[0])
    result.require("mask_idles_exactly_the_predicated",
                   idle == expected_idle)
    result.require("divergence_costs_utilization",
                   utilization < 1.0 if masked_students else utilization == 1.0)
    result.require("simd_time_is_instruction_count", simd_beats == beats)
    result.require("mimd_desynchronizes", finish_spread > 0 or n == 1)
    return result
