"""ConcertTickets: the Kolikant/Lewandowski box-office scenario, executable.

Two box offices sell the last tickets from a shared pool.  The simulation
plays both halves of the classroom discussion:

* **What can go wrong** -- exhaustive interleavings of two unsynchronized
  check-then-sell transactions on one remaining ticket, counting the
  schedules that oversell.
* **Student solutions** -- the coordination schemes novices propose in
  the Commonsense Computing studies, run as discrete-event simulations
  with many buyers: a per-sale lock on the pool (correct, serialized) and
  a pre-partitioned allocation of tickets per office (correct, parallel,
  but can refuse buyers while the other office holds stock).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sharedmem import Step, explore_interleavings
from repro.unplugged.sim.sync import Lock

__all__ = ["run_concert_tickets"]


def _office_steps(office: str) -> list[Step]:
    def check(state: dict, o: str = office) -> None:
        state[f"{o}_saw"] = state["tickets"]

    def sell(state: dict, o: str = office) -> None:
        if state[f"{o}_saw"] > 0:
            state["tickets"] -= 1
            state[f"{o}_sold"] = state.get(f"{o}_sold", 0) + 1

    return [Step("check", check), Step("sell", sell)]


def run_concert_tickets(
    classroom: Classroom,
    tickets: int = 10,
    buyers: int = 16,
) -> ActivityResult:
    """Run the oversell analysis plus the two proposed fixes."""
    if tickets < 1 or buyers < 2:
        raise SimulationError("need at least 1 ticket and 2 buyers")
    result = ActivityResult(activity="ConcertTickets", classroom_size=classroom.size)
    office_a, office_b = "East", "West"

    # Part 1: one ticket left, two offices race.
    race = explore_interleavings(
        {office_a: _office_steps(office_a), office_b: _office_steps(office_b)},
        initial_state={"tickets": 1},
        violates=lambda s: s["tickets"] < 0,
        outcome=lambda s: s["tickets"],
    )

    # Part 2a: lock-per-sale (the 'one clerk at the drawer' student fix).
    sim = Simulator()
    pool = {"tickets": tickets, "sold": 0, "refused": 0}
    drawer = Lock(sim, "drawer")

    def locked_office(name: str, my_buyers: int):
        for _ in range(my_buyers):
            yield drawer.acquire(name)
            yield sim.timeout(1.0)           # the sale transaction
            if pool["tickets"] > 0:
                pool["tickets"] -= 1
                pool["sold"] += 1
            else:
                pool["refused"] += 1
            drawer.release(name)

    half = buyers // 2
    sim.process(locked_office(office_a, half), name=office_a)
    sim.process(locked_office(office_b, buyers - half), name=office_b)
    sim.run()
    locked_time = sim.now
    locked_sold, locked_refused = pool["sold"], pool["refused"]

    # Part 2b: pre-partitioned allocation (the 'split the stack' fix).
    sim2 = Simulator()
    stock = {office_a: (tickets + 1) // 2, office_b: tickets // 2}
    outcome = {"sold": 0, "refused": 0}

    def partitioned_office(name: str, my_buyers: int):
        for _ in range(my_buyers):
            yield sim2.timeout(1.0)
            if stock[name] > 0:
                stock[name] -= 1
                outcome["sold"] += 1
            else:
                outcome["refused"] += 1

    sim2.process(partitioned_office(office_a, half), name=office_a)
    sim2.process(partitioned_office(office_b, buyers - half), name=office_b)
    sim2.run()
    part_time = sim2.now

    result.metrics = {
        "interleavings": race.total,
        "oversell_schedules": race.violating,
        "oversell_rate": race.violation_rate,
        "locked_sold": locked_sold,
        "locked_refused": locked_refused,
        "locked_time": locked_time,
        "partitioned_sold": outcome["sold"],
        "partitioned_refused": outcome["refused"],
        "partitioned_time": part_time,
    }
    result.require("oversell_possible_unsynchronized", race.violating > 0)
    result.require("lock_never_oversells", locked_sold <= tickets)
    result.require("lock_sells_out", locked_sold == min(tickets, buyers))
    result.require("partition_never_oversells", outcome["sold"] <= tickets)
    result.require("partition_is_parallel", part_time <= locked_time)
    # The partition's weakness the class discusses: with skewed demand it
    # can refuse buyers while stock remains elsewhere (not asserted -- the
    # balanced run here sells out; see the gardeners activity for skew).
    return result
