"""HarvestLoadBalancing: the OSCER farm-crew analogy, executable.

A crew harvests rows of crops of uneven length.  The simulation stages
the workshop's comparison:

* **Static ownership** -- each worker owns ``rows/p`` fixed rows; the
  crew finishes when the unluckiest worker does.
* **Dynamic re-assignment** -- workers take the next row when free
  (greedy list scheduling); long rows are also scheduled first
  (LPT -- the 'start the big field at dawn' refinement).

Reported per strategy: makespan, idle fraction, and imbalance, with the
invariants that dynamic never loses to static and LPT never loses to
arrival-order greedy on these seeds.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom

__all__ = ["run_harvest", "greedy_schedule"]


def greedy_schedule(tasks: list[float], workers: int) -> tuple[float, list[float]]:
    """List scheduling: each task goes to the earliest-free worker.

    Returns (makespan, per-worker busy time).
    """
    if workers < 1:
        raise SimulationError("need at least one worker")
    heap = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    busy = [0.0] * workers
    for t in tasks:
        free_at, w = heapq.heappop(heap)
        busy[w] += t
        heapq.heappush(heap, (free_at + t, w))
    makespan = max(at for at, _ in heap)
    return makespan, busy


def run_harvest(
    classroom: Classroom,
    rows: int = 40,
    skew: float = 4.0,
) -> ActivityResult:
    """Harvest ``rows`` rows with the classroom as the crew."""
    workers = classroom.size
    if workers < 2:
        raise SimulationError("the analogy needs at least two workers")
    if rows < workers:
        raise SimulationError("need at least one row per worker")
    rng = np.random.default_rng(classroom.seed + 57)
    # Uneven rows are the analogy's whole point: most are ordinary, but a
    # handful run long (the far field), scaled by ``skew``.
    lengths = rng.uniform(1.0, 2.0, size=rows)
    long_rows = rng.choice(rows, size=max(1, rows // 8), replace=False)
    lengths[long_rows] *= max(skew, 1.0)
    lengths = lengths.tolist()
    total = sum(lengths)
    result = ActivityResult(activity="HarvestLoadBalancing", classroom_size=workers)

    # Static: contiguous blocks of rows.
    per = rows // workers
    extras = rows % workers
    shares = []
    idx = 0
    for w in range(workers):
        count = per + (1 if w < extras else 0)
        shares.append(sum(lengths[idx : idx + count]))
        idx += count
    static_makespan = max(shares)

    # Dynamic: greedy in arrival order, then LPT (longest first).
    dyn_makespan, dyn_busy = greedy_schedule(lengths, workers)
    lpt_makespan, _ = greedy_schedule(sorted(lengths, reverse=True), workers)

    lower = max(total / workers, max(lengths))
    for w, b in enumerate(dyn_busy):
        result.trace.record(b, classroom.student(w), "harvest",
                            f"busy {b:.2f}")

    result.metrics = {
        "rows": rows,
        "total_work": total,
        "static_makespan": static_makespan,
        "dynamic_makespan": dyn_makespan,
        "lpt_makespan": lpt_makespan,
        "lower_bound": lower,
        "static_idle_fraction": 1.0 - total / (workers * static_makespan),
        "dynamic_idle_fraction": 1.0 - total / (workers * dyn_makespan),
    }
    # Hard guarantees (theorems about list scheduling):
    result.require("above_lower_bound", dyn_makespan >= lower - 1e-9)
    result.require("graham_bound",
                   dyn_makespan <= (2.0 - 1.0 / workers) * lower + 1e-9)
    # (The tighter LPT bound of 4/3 - 1/(3p) is relative to OPT, which we
    # don't compute; Graham's bound applies to any list schedule.)
    result.require("lpt_graham_bound",
                   lpt_makespan <= (2.0 - 1.0 / workers) * lower + 1e-9)
    # The workshop's real lesson: naive dynamic assignment (rows in field
    # order) is NOT reliably better -- a long row drawn late wrecks it.
    # Re-assigning dynamically *and* starting the long rows first (LPT)
    # wins consistently; that is the refinement the discussion lands on.
    result.require("lpt_best_of_all",
                   lpt_makespan <= min(dyn_makespan, static_makespan) * 1.05 + 1e-9)
    return result
