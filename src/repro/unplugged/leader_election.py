"""StableLeaderElection: the Sivilotti-Pike ring election, executable.

Students form a ring; each starts knowing only their own id and passes
the largest id seen so far to their neighbor.  The activity's assertional
content: the system is *stable* (once everyone knows the maximum, the
leader never changes) and *live* (the count of students unaware of the
maximum shrinks every round).

The simulation runs the message-passing version on the communicator --
both the simple flooding variant the classroom uses (n rounds, n messages
per round) and Chang-Roberts (unidirectional, id-filtering) for the
message-count comparison an upper-level class makes.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.comm import Communicator, Endpoint
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.topology import Topology

__all__ = ["run_leader_election"]


def run_leader_election(classroom: Classroom, algorithm: str = "flood") -> ActivityResult:
    """Elect the max-id student on a ring.

    ``algorithm`` is ``"flood"`` (the classroom dramatization: everyone
    forwards the max seen every round for n rounds) or ``"chang-roberts"``
    (only forward ids larger than your own; expected O(n log n) messages).
    """
    n = classroom.size
    if n < 3:
        raise SimulationError("ring election needs at least 3 students")
    if algorithm not in ("flood", "chang-roberts"):
        raise SimulationError(f"unknown algorithm {algorithm!r}")

    ids = classroom.deal_cards(n, low=1, high=max(100, n * 10))
    sim = Simulator()
    topo = Topology.ring(n)
    comm = Communicator(sim, n, topology=topo)
    result = ActivityResult(activity="StableLeaderElection", classroom_size=n)

    leaders: dict[int, int] = {}
    leader_history: dict[int, list[int]] = {r: [] for r in range(n)}

    if algorithm == "flood":
        def program(ep: Endpoint):
            best = ids[ep.rank]
            for _round in range(n):
                yield ep.send((ep.rank + 1) % n, best)
                msg = yield ep.recv(source=(ep.rank - 1) % n)
                best = max(best, msg.data)
                leader_history[ep.rank].append(best)
                result.trace.record(
                    ep.sim.now, classroom.student(ep.rank), "learn", f"max={best}"
                )
            leaders[ep.rank] = best
            return best
    else:
        def program(ep: Endpoint):
            my_id = ids[ep.rank]
            yield ep.send((ep.rank + 1) % n, ("candidate", my_id))
            best = my_id
            while True:
                msg = yield ep.recv(source=(ep.rank - 1) % n)
                kind, value = msg.data
                if kind == "candidate":
                    best = max(best, value)
                    if value > my_id:
                        yield ep.send((ep.rank + 1) % n, ("candidate", value))
                    elif value == my_id:
                        # My own id survived the whole ring: I am the leader.
                        yield ep.send((ep.rank + 1) % n, ("elected", my_id))
                        leaders[ep.rank] = my_id
                        return my_id
                else:
                    leaders[ep.rank] = value
                    if value != my_id:
                        yield ep.send((ep.rank + 1) % n, ("elected", value))
                    return value

    comm.launch(program)
    sim.run()

    true_leader = max(ids)
    agreed = len(set(leaders.values())) == 1 and len(leaders) == n
    # Liveness variant for the flooding version: the number of students who
    # do not yet know the maximum is non-increasing round over round.
    monotone = True
    if algorithm == "flood":
        for round_no in range(1, n):
            unaware_prev = sum(
                1 for r in range(n) if leader_history[r][round_no - 1] != true_leader
            )
            unaware_now = sum(
                1 for r in range(n) if leader_history[r][round_no] != true_leader
            )
            monotone &= unaware_now <= unaware_prev
        # Stability: once a student knows the max, their belief never changes.
        for r in range(n):
            hist = leader_history[r]
            if true_leader in hist:
                first = hist.index(true_leader)
                monotone &= all(h == true_leader for h in hist[first:])

    result.output = leaders.get(0)
    result.metrics = {
        "algorithm": algorithm,
        "messages": comm.stats.messages,
        "completion_time": sim.now,
        "leader_id": true_leader,
        "leader_student": classroom.student(ids.index(true_leader)),
    }
    result.require("unique_leader", agreed)
    result.require("leader_is_maximum", set(leaders.values()) == {true_leader})
    result.require("stable_and_live", monotone)
    if algorithm == "flood":
        result.require("n_squared_messages", comm.stats.messages == n * n)
    return result
