"""OddEvenTranspositionSort: Rifkin's parallel bubble sort, executable.

Students stand in a line holding numbers.  In odd phases the pairs
(1,2), (3,4), ... compare-and-swap; in even phases the pairs (0,1),
(2,3), ... do.  All pairs in a phase act simultaneously, so each phase
costs one (slowest-pair) step, and the line is provably sorted after at
most n phases.  The simulation checks the textbook invariants the
dramatization teaches and measures parallel time against sequential
bubble sort.
"""

from __future__ import annotations

from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.metrics import speedup

__all__ = ["run_odd_even_sort", "sequential_bubble_sort"]


def sequential_bubble_sort(values: list[int], step_time: float = 1.0) -> tuple[list[int], float, int]:
    """Classic bubble sort: returns (sorted, time, comparisons)."""
    data = list(values)
    comparisons = 0
    n = len(data)
    for i in range(n):
        swapped = False
        for j in range(n - 1 - i):
            comparisons += 1
            if data[j] > data[j + 1]:
                data[j], data[j + 1] = data[j + 1], data[j]
                swapped = True
        if not swapped:
            break
    return data, step_time * comparisons, comparisons


def run_odd_even_sort(classroom: Classroom, early_exit: bool = True) -> ActivityResult:
    """Run the dramatization; one held value per student.

    ``early_exit`` stops when a full odd+even sweep makes no swap (the
    classroom version: everyone shouts 'sorted!'); disable it to observe
    the worst-case n phases.
    """
    n = classroom.size
    values = classroom.deal_cards(n)
    original = list(values)
    result = ActivityResult(activity="OddEvenTranspositionSort", classroom_size=n)

    line = list(values)
    phases = 0
    swaps = 0
    now = 0.0
    quiet_phases = 0
    adjacency_ok = True

    while phases < n or not early_exit:
        start = 1 if phases % 2 == 0 else 0   # odd phase first, like the write-up
        phase_swapped = False
        phase_time = 0.0
        for left in range(start, n - 1, 2):
            pair_time = max(classroom.step_time(left), classroom.step_time(left + 1))
            phase_time = max(phase_time, pair_time)
            if line[left] > line[left + 1]:
                # Parity invariant: only pairs of the right parity swap.
                adjacency_ok &= (left % 2 == start % 2)
                line[left], line[left + 1] = line[left + 1], line[left]
                swaps += 1
                phase_swapped = True
                result.trace.record(
                    now + pair_time, classroom.student(left), "swap",
                    f"phase {phases + 1}: positions {left}<->{left + 1}",
                )
        phases += 1
        now += phase_time if n > 1 else 0.0
        if phase_swapped:
            quiet_phases = 0
        else:
            quiet_phases += 1
        if early_exit and quiet_phases >= 2:
            break
        if phases >= n:
            break

    _, seq_time, seq_comparisons = sequential_bubble_sort(
        original, classroom.step_time(0)
    )
    par_comparisons = phases * ((n - 1) // 2 + (n - 1) % 2)  # approx; trace has exact swaps

    result.output = line
    result.metrics = {
        "phases": phases,
        "swaps": swaps,
        "parallel_time": now,
        "sequential_time": seq_time,
        "sequential_comparisons": seq_comparisons,
        "speedup": speedup(seq_time, now) if now > 0 and seq_time > 0 else 1.0,
    }
    result.require("sorted", line == sorted(original))
    result.require("multiset_preserved", sorted(line) == sorted(original))
    result.require("at_most_n_phases", phases <= n)
    result.require("parity_respected", adjacency_ok)
    result.require("swap_count_is_inversions", swaps == _inversions(original))
    return result


def _inversions(values: list[int]) -> int:
    """Inversion count: every adjacent transposition fixes exactly one."""
    count = 0
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            if values[i] > values[j]:
                count += 1
    return count
