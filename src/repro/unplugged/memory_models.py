"""Whiteboard vs desert islands: the OSCER memory-model analogies, executable.

The same task -- summing values held by every student -- is run under the
two memory models the analogies teach:

* **Shared whiteboard** -- everyone adds their value to a running total
  on the board, but only one marker exists: each update is a lock-
  protected read-modify-write, so the board serializes the sum and the
  marker queue grows with the class (contention).
* **Desert islands** -- values live on private islands and move only by
  letters; the sum runs as a binomial reduction tree over the
  communicator, paying latency per letter but combining in parallel.

The crossover the instructor narrates falls out of the models: the
whiteboard wins for small classes and cheap markers; the islands win when
the class is large enough that the logarithmic tree beats the serialized
marker queue.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.comm import Communicator, CostModel, Endpoint
from repro.unplugged.sim.engine import Simulator
from repro.unplugged.sim.sharedmem import SharedMemory
from repro.unplugged.sim.sync import Lock

__all__ = ["run_memory_models", "whiteboard_sum_time", "islands_sum_time"]


def whiteboard_sum_time(
    classroom: Classroom, values: list[int], write_time: float = 1.0
) -> tuple[int, float, bool]:
    """Simulate the lock-protected shared-board sum.

    Returns (total, finish time, detector_clean).
    """
    n = classroom.size
    if len(values) != n:
        raise SimulationError("one value per student required")
    sim = Simulator()
    board = SharedMemory()
    board.poke("total", 0)
    marker = Lock(sim, "marker")

    def student(rank: int):
        name = classroom.student(rank)
        yield marker.acquire(name)
        board.lock_acquired(name, "marker")
        current = board.read("total", name)
        yield sim.timeout(write_time * classroom.step_time(rank))
        board.write("total", name, current + values[rank])
        board.lock_released(name, "marker")
        marker.release(name)

    for rank in range(n):
        sim.process(student(rank), name=f"student{rank}")
    sim.run()
    return board.peek("total"), sim.now, not board.races


def islands_sum_time(
    classroom: Classroom, values: list[int], cost: CostModel
) -> tuple[int, float, int]:
    """Simulate the letter-based reduction across islands.

    Returns (total at island 0, finish time, letters sent).
    """
    n = classroom.size
    if len(values) != n:
        raise SimulationError("one value per island required")
    sim = Simulator()
    comm = Communicator(sim, n, cost_model=cost)
    totals: dict[int, int] = {}

    def islander(ep: Endpoint):
        total = yield from ep.reduce(values[ep.rank], lambda a, b: a + b, root=0)
        if ep.rank == 0:
            totals[0] = total

    comm.launch(islander)
    sim.run()
    return totals[0], sim.now, comm.stats.messages


def run_memory_models(
    classroom: Classroom,
    write_time: float = 1.0,
    letter_cost: CostModel | None = None,
) -> ActivityResult:
    """Run the same reduction under both memory models and compare."""
    if classroom.size < 2:
        raise SimulationError("the comparison needs at least two students")
    cost = letter_cost or CostModel(alpha=1.0, beta=0.01)
    values = classroom.deal_cards(classroom.size)

    board_total, board_time, detector_clean = whiteboard_sum_time(
        classroom, values, write_time
    )
    island_total, island_time, letters = islands_sum_time(classroom, values, cost)

    result = ActivityResult(activity="MemoryModels", classroom_size=classroom.size)
    result.metrics = {
        "whiteboard_total": board_total,
        "whiteboard_time": board_time,
        "islands_total": island_total,
        "islands_time": island_time,
        "letters_sent": letters,
        "faster_model": "whiteboard" if board_time <= island_time else "islands",
    }
    result.require("same_answer", board_total == island_total == sum(values))
    result.require("no_races_on_board", detector_clean)
    result.require("letters_are_n_minus_1", letters == classroom.size - 1)
    return result
