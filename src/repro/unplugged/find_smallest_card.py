"""FindSmallestCard: the Bachelis et al. tournament minimum, executable.

Each student holds one card; pairs compare simultaneously and losers sit
down, so the minimum emerges in ceil(log_k n) rounds of a k-ary tournament
(the classroom runs k=2; the arity is an ablation knob).  The simulation
reproduces what the instructor demonstrates:

* exactly n-1 comparisons happen regardless of arity (every card but the
  winner loses exactly once),
* rounds = ceil(log_k n), so the parallel time is logarithmic while the
  one-student scan is linear,
* per-student speed jitter makes each round as slow as its slowest pair --
  the first taste of stragglers.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.metrics import speedup

__all__ = ["run_find_smallest_card", "sequential_minimum"]


def sequential_minimum(cards: list[int], step_time: float = 1.0) -> tuple[int, float, int]:
    """One student scans every card: returns (min, time, comparisons)."""
    if not cards:
        raise SimulationError("no cards to scan")
    best = cards[0]
    comparisons = 0
    for card in cards[1:]:
        comparisons += 1
        if card < best:
            best = card
    return best, step_time * comparisons, comparisons


def run_find_smallest_card(
    classroom: Classroom,
    arity: int = 2,
) -> ActivityResult:
    """Run the tournament on a classroom; one card per student.

    ``arity`` is the tournament fan-in: groups of up to ``arity`` students
    compare per round (k-ary ablation; the paper's dramatization is 2).
    """
    if arity < 2:
        raise SimulationError("tournament arity must be >= 2")
    n = classroom.size
    cards = classroom.deal_cards(n)
    result = ActivityResult(activity="FindSmallestCard", classroom_size=n)

    # holders[i] = (rank, card) of players still standing.
    holders = [(rank, cards[rank]) for rank in range(n)]
    comparisons = 0
    rounds = 0
    now = 0.0

    while len(holders) > 1:
        rounds += 1
        next_holders: list[tuple[int, int]] = []
        round_time = 0.0
        for g in range(0, len(holders), arity):
            group = holders[g : g + arity]
            # The group's comparison completes when its slowest member does;
            # a k-way huddle needs k-1 pairwise comparisons.
            group_time = max(classroom.step_time(rank) for rank, _ in group)
            comparisons += len(group) - 1
            winner = min(group, key=lambda rc: rc[1])
            next_holders.append(winner)
            round_time = max(round_time, group_time)
            for rank, card in group:
                result.trace.record(
                    now + group_time,
                    classroom.student(rank),
                    "advance" if (rank, card) == winner else "sit",
                    f"round {rounds}",
                )
        now += round_time
        holders = next_holders

    winner_rank, winner_card = holders[0]
    seq_min, seq_time, seq_comparisons = sequential_minimum(
        cards, classroom.step_time(0)
    )

    result.output = winner_card
    result.metrics = {
        "rounds": rounds,
        "comparisons": comparisons,
        "parallel_time": now,
        "sequential_time": seq_time,
        "speedup": speedup(seq_time, now) if now > 0 else float(n > 1),
        "winner": classroom.student(winner_rank),
    }
    result.require("finds_minimum", winner_card == min(cards))
    result.require("n_minus_1_comparisons", comparisons == n - 1)
    result.require(
        "logarithmic_rounds",
        rounds == (math.ceil(math.log(n, arity)) if n > 1 else 0),
    )
    return result
