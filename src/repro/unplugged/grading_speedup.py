"""ExamGradingSpeedup and RoadTripAmdahl: Bogaerts' analogies, executable.

Two faces of Amdahl's law:

* :func:`run_exam_grading` -- the measured experiment: dealing the stack
  out and stapling results back are serial phases around a perfectly
  parallel grading phase.  The simulation times 1..p graders, fits the
  serial fraction back out of the measurements with Karp-Flatt, and
  checks the fit recovers the model's true serial share.
* :func:`run_road_trip` -- the closed-form story: city driving is fixed,
  highway speed scales; the trip-time curve plateaus at 1/s.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.metrics import (
    amdahl_limit,
    amdahl_speedup,
    gustafson_speedup,
    karp_flatt,
)

__all__ = ["run_exam_grading", "run_road_trip", "run_weak_scaling_grading"]


def run_exam_grading(
    classroom: Classroom,
    exams: int = 120,
    grade_time: float = 1.0,
    deal_time_per_exam: float = 0.05,
    staple_time_per_exam: float = 0.05,
) -> ActivityResult:
    """Grade a stack with 1..p graders; serial deal/collect bound the gain."""
    if exams < 1:
        raise SimulationError("need at least one exam")
    max_graders = min(classroom.size, 8)
    result = ActivityResult(activity="ExamGradingSpeedup",
                            classroom_size=classroom.size)

    serial = exams * (deal_time_per_exam + staple_time_per_exam)
    parallel_work = exams * grade_time
    true_serial_fraction = serial / (serial + parallel_work)

    times: dict[int, float] = {}
    for p in range(1, max_graders + 1):
        # Graders work simultaneously; the phase ends with the slowest.
        share = -(-exams // p)                       # ceil division
        grade_phase = max(
            classroom.step_time(r % classroom.size) * grade_time * share
            for r in range(p)
        )
        times[p] = serial + grade_phase
        result.trace.record(times[p], classroom.student((p - 1) % classroom.size),
                            "grade", f"p={p}")

    speedups = {p: times[1] / t for p, t in times.items()}
    fitted = {
        p: karp_flatt(speedups[p], p) for p in speedups if p >= 2
    }
    mean_fit = float(np.mean(list(fitted.values())))

    result.metrics = {
        "exams": exams,
        "times": times,
        "speedups": speedups,
        "true_serial_fraction": true_serial_fraction,
        "karp_flatt_fits": fitted,
        "mean_fitted_serial_fraction": mean_fit,
    }
    result.require("speedup_monotone",
                   all(speedups[p + 1] >= speedups[p] - 0.05
                       for p in range(1, max_graders)))
    result.require("below_amdahl_ceiling",
                   all(speedups[p] <= amdahl_speedup(true_serial_fraction, p) * 1.3
                       for p in speedups))
    # Karp-Flatt recovers the serial fraction to within jitter effects.
    result.require("karp_flatt_recovers_serial_fraction",
                   abs(mean_fit - true_serial_fraction) < 0.12)
    return result


def run_weak_scaling_grading(
    classroom: Classroom,
    exams_per_grader: int = 30,
    grade_time: float = 1.0,
    handling_time_per_exam: float = 0.1,
    setup_time: float = 5.0,
) -> ActivityResult:
    """The Gustafson variant: grow the stack with the staff.

    Each grader brings their own section's exams (p graders grade
    p * exams_per_grader exams) and deals/staples their own section, so
    only the fixed course setup (posting the rubric) is serial.
    Wall-clock stays nearly flat while total work grows linearly -- the
    scaled speedup tracks Gustafson's law, the counterpoint to the
    fixed-stack Amdahl plateau of :func:`run_exam_grading`.
    """
    if exams_per_grader < 1:
        raise SimulationError("need at least one exam per grader")
    max_graders = min(classroom.size, 8)
    result = ActivityResult(activity="ExamGradingWeakScaling",
                            classroom_size=classroom.size)

    per_exam = grade_time + handling_time_per_exam
    times: dict[int, float] = {}
    scaled_speedups: dict[int, float] = {}
    serial_fractions: dict[int, float] = {}
    for p in range(1, max_graders + 1):
        section_phase = max(
            classroom.step_time(r % classroom.size) * per_exam * exams_per_grader
            for r in range(p)
        )
        times[p] = setup_time + section_phase
        # Scaled speedup: this p-sized job done by one grader, vs measured.
        serial_job = setup_time + classroom.step_time(0) * per_exam \
            * exams_per_grader * p
        scaled_speedups[p] = serial_job / times[p]
        serial_fractions[p] = setup_time / times[p]

    gustafson_predictions = {
        p: gustafson_speedup(serial_fractions[p], p) for p in times
    }
    result.metrics = {
        "exams_per_grader": exams_per_grader,
        "times": times,
        "scaled_speedups": scaled_speedups,
        "gustafson_predictions": gustafson_predictions,
    }
    result.require(
        "scaled_speedup_grows_nearly_linearly",
        all(scaled_speedups[p] > 0.6 * p for p in times),
    )
    result.require(
        "tracks_gustafson",
        all(abs(scaled_speedups[p] - gustafson_predictions[p])
            <= 0.35 * gustafson_predictions[p] for p in times),
    )
    # The weak-scaling signature: time grows only with setup + jitter, far
    # slower than the p-fold work growth.
    result.require(
        "wall_clock_nearly_flat",
        times[max_graders] <= times[1] * 1.5,
    )
    return result


def run_road_trip(
    classroom: Classroom,
    city_hours: float = 1.0,
    highway_hours: float = 9.0,
    max_multiplier: int = 64,
) -> ActivityResult:
    """Speed up only the highway segment and watch the plateau."""
    if city_hours <= 0 or highway_hours <= 0:
        raise SimulationError("trip segments must take positive time")
    result = ActivityResult(activity="RoadTripAmdahl",
                            classroom_size=classroom.size)
    total = city_hours + highway_hours
    serial_fraction = city_hours / total

    multipliers = [m for m in (1, 2, 4, 8, 16, 32, 64) if m <= max_multiplier]
    trip_times = {m: city_hours + highway_hours / m for m in multipliers}
    speedups = {m: total / t for m, t in trip_times.items()}
    ceiling = amdahl_limit(serial_fraction)

    result.metrics = {
        "serial_fraction": serial_fraction,
        "trip_times": trip_times,
        "speedups": speedups,
        "plateau": ceiling,
    }
    result.require(
        "matches_amdahl_exactly",
        all(abs(speedups[m] - amdahl_speedup(serial_fraction, m)) < 1e-9
            for m in multipliers),
    )
    result.require("never_exceeds_plateau",
                   all(s < ceiling for s in speedups.values()))
    result.require(
        "plateau_approached",
        speedups[multipliers[-1]] > 0.8 * ceiling,
    )
    return result
