"""``repro.unplugged``: executable simulations of the curated activities.

Every major activity in the corpus has a runnable counterpart here --
"students as processors" on the deterministic discrete-event substrate in
:mod:`repro.unplugged.sim`.  Each ``run_*`` function takes a
:class:`~repro.unplugged.sim.classroom.Classroom` and returns an
:class:`~repro.unplugged.sim.classroom.ActivityResult` carrying the trace,
the board metrics, and the invariant checks.

:data:`SIMULATIONS` maps corpus activity names (the ``.md`` file slugs) to
their simulation entry points, so tests and the CLI can cross-link the
curation and the executable layer.
"""

from typing import Callable

from repro.unplugged.acting_out import run_object_roleplay, run_parallel_search
from repro.unplugged.bank_deposit import run_bank_deposit
from repro.unplugged.byzantine import om_agreement, run_byzantine_generals
from repro.unplugged.card_merge_sort import merge_sort_time_model, run_card_merge_sort
from repro.unplugged.comm_overhead import batching_sweep, run_phone_call
from repro.unplugged.concert_tickets import run_concert_tickets
from repro.unplugged.contention import run_checkout_contention, run_printer_queue
from repro.unplugged.decomposition_puzzle import halo_volume, run_decomposition_puzzle
from repro.unplugged.dining_philosophers import run_dining_philosophers
from repro.unplugged.fence_painting import run_fence_painting
from repro.unplugged.find_smallest_card import run_find_smallest_card, sequential_minimum
from repro.unplugged.garbage_collection import run_garbage_collection
from repro.unplugged.gardeners import run_gardeners
from repro.unplugged.grading_speedup import (
    run_exam_grading,
    run_road_trip,
    run_weak_scaling_grading,
)
from repro.unplugged.leader_election import run_leader_election
from repro.unplugged.load_balancing import greedy_schedule, run_harvest
from repro.unplugged.matrix_teams import copy_volume, grid_shapes, run_matrix_teams
from repro.unplugged.memory_models import (
    islands_sum_time,
    run_memory_models,
    whiteboard_sum_time,
)
from repro.unplugged.microarchitecture import (
    amat,
    lru_hit_rate,
    run_assembly_line,
    run_cache_library,
)
from repro.unplugged.multicore_kitchen import run_multicore_kitchen
from repro.unplugged.nondeterministic_sort import run_nondeterministic_sort
from repro.unplugged.odd_even_sort import run_odd_even_sort, sequential_bubble_sort
from repro.unplugged.parallel_addition import run_coin_counting, run_parallel_addition
from repro.unplugged.parallel_radix_sort import run_parallel_radix_sort
from repro.unplugged.pipeline import run_laundry_pipeline
from repro.unplugged.race_condition import run_juice_robots
from repro.unplugged.recipe_scheduling import build_dinner_graph, run_recipe_scheduling
from repro.unplugged.simd_rhythm import run_rhythm_clap
from repro.unplugged.speedup_jigsaw import build_puzzle_graph, run_speedup_jigsaw
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sync_relay import run_synchronization_relay
from repro.unplugged.token_ring import enabled_machines, run_token_ring
from repro.unplugged.unreliable_messenger import run_stop_and_wait
from repro.unplugged.yarn_topology import run_topology_yarn

#: Corpus activity slug -> simulation entry point.
SIMULATIONS: dict[str, Callable[..., ActivityResult]] = {
    "findsmallestcard": run_find_smallest_card,
    "parallelcardsort": run_card_merge_sort,
    "oddeventranspositionsort": run_odd_even_sort,
    "parallelradixsort": run_parallel_radix_sort,
    "nondeterministicsorting": run_nondeterministic_sort,
    "parallelgarbagecollection": run_garbage_collection,
    "stableleaderelection": run_leader_election,
    "selfstabilizingtokenring": run_token_ring,
    "byzantinegenerals": run_byzantine_generals,
    "juicesweeteningrobots": run_juice_robots,
    "concerttickets": run_concert_tickets,
    "gardeners": run_gardeners,
    "harvestloadbalancing": run_harvest,
    "whiteboardsharedmemory": run_memory_models,
    "desertislandsdistributedmemory": run_memory_models,
    "longdistancephonecall": run_phone_call,
    "laundrypipeline": run_laundry_pipeline,
    "bankdepositrace": run_bank_deposit,
    "checkoutresourcecontention": run_checkout_contention,
    "printerqueuesharing": run_printer_queue,
    "parallelrecipecooking": run_recipe_scheduling,
    "examgradingspeedup": run_exam_grading,
    "roadtripamdahl": run_road_trip,
    "diningphilosophers": run_dining_philosophers,
    "synchronizationrelay": run_synchronization_relay,
    "matrixmultiplicationteams": run_matrix_teams,
    "cachelibrarymetaphor": run_cache_library,
    "assemblylinepipeline": run_assembly_line,
    "rhythmclapsimd": run_rhythm_clap,
    "datadecompositionpuzzle": run_decomposition_puzzle,
    "paralleladditioncards": run_parallel_addition,
    "coincountingarraysum": run_coin_counting,
    "actingoutalgorithms": run_parallel_search,
    "objectroleplay": run_object_roleplay,
    "topologyyarnweb": run_topology_yarn,
    "fencepaintingdecomposition": run_fence_painting,
    "multicorekitchen": run_multicore_kitchen,
    "speedupjigsaw": run_speedup_jigsaw,
}

__all__ = [
    "ActivityResult",
    "Classroom",
    "SIMULATIONS",
    "amat",
    "batching_sweep",
    "build_dinner_graph",
    "build_puzzle_graph",
    "copy_volume",
    "enabled_machines",
    "greedy_schedule",
    "grid_shapes",
    "halo_volume",
    "islands_sum_time",
    "lru_hit_rate",
    "merge_sort_time_model",
    "om_agreement",
    "run_assembly_line",
    "run_bank_deposit",
    "run_byzantine_generals",
    "run_cache_library",
    "run_card_merge_sort",
    "run_checkout_contention",
    "run_coin_counting",
    "run_concert_tickets",
    "run_decomposition_puzzle",
    "run_dining_philosophers",
    "run_exam_grading",
    "run_fence_painting",
    "run_find_smallest_card",
    "run_garbage_collection",
    "run_gardeners",
    "run_harvest",
    "run_juice_robots",
    "run_laundry_pipeline",
    "run_leader_election",
    "run_matrix_teams",
    "run_memory_models",
    "run_multicore_kitchen",
    "run_nondeterministic_sort",
    "run_object_roleplay",
    "run_odd_even_sort",
    "run_parallel_addition",
    "run_parallel_radix_sort",
    "run_parallel_search",
    "run_phone_call",
    "run_printer_queue",
    "run_recipe_scheduling",
    "run_rhythm_clap",
    "run_speedup_jigsaw",
    "run_road_trip",
    "run_stop_and_wait",
    "run_synchronization_relay",
    "run_token_ring",
    "run_weak_scaling_grading",
    "run_topology_yarn",
    "sequential_bubble_sort",
    "sequential_minimum",
    "whiteboard_sum_time",
]
