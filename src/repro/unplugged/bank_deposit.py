"""BankDepositRace: the OSCER lost-update dramatization, executable.

Two tellers read-modify-write the same balance slip.  The simulation
enumerates every interleaving (which schedules lose a deposit, and which
serial order each bad schedule is *not* equivalent to), runs the racy
schedule through the lockset detector, and fixes it by locking the slip --
after which every schedule is serializable and the balance is exact.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.sharedmem import SharedMemory, Step, explore_interleavings

__all__ = ["run_bank_deposit"]


def run_bank_deposit(
    classroom: Classroom,
    opening_balance: int = 100,
    deposits: tuple[int, int] = (50, 30),
) -> ActivityResult:
    """Stage the lost update, detect it, and fix it."""
    if len(deposits) != 2:
        raise SimulationError("the dramatization uses exactly two tellers")
    d1, d2 = deposits
    t1, t2 = classroom.student(0), classroom.student(1 % classroom.size)
    correct = opening_balance + d1 + d2
    result = ActivityResult(activity="BankDepositRace",
                            classroom_size=classroom.size)

    def teller(name: str, amount: int) -> list[Step]:
        return [
            Step("read", lambda s, n=name: s.__setitem__(f"seen_{n}", s["balance"])),
            Step("write", lambda s, n=name, a=amount:
                 s.__setitem__("balance", s[f"seen_{n}"] + a)),
        ]

    unsynchronized = explore_interleavings(
        {t1: teller(t1, d1), t2: teller(t2, d2)},
        {"balance": opening_balance},
        violates=lambda s: s["balance"] != correct,
        outcome=lambda s: s["balance"],
    )

    # Atomic (locked) read-modify-write: one step per teller.
    def atomic_teller(amount: int) -> list[Step]:
        return [Step("deposit", lambda s, a=amount:
                     s.__setitem__("balance", s["balance"] + a))]

    locked = explore_interleavings(
        {t1: atomic_teller(d1), t2: atomic_teller(d2)},
        {"balance": opening_balance},
        violates=lambda s: s["balance"] != correct,
        outcome=lambda s: s["balance"],
    )

    # Lockset detection on the racy schedule.
    mem = SharedMemory()
    mem.poke("balance", opening_balance)
    seen1 = mem.read("balance", t1)
    seen2 = mem.read("balance", t2)
    mem.write("balance", t1, seen1 + d1)
    mem.write("balance", t2, seen2 + d2)
    racy_final = mem.peek("balance")

    result.metrics = {
        "correct_balance": correct,
        "interleavings": unsynchronized.total,
        "lost_update_schedules": unsynchronized.violating,
        "final_balances": dict(sorted(unsynchronized.outcomes.items())),
        "racy_schedule_balance": racy_final,
        "race_detected": bool(mem.races),
        "locked_interleavings": locked.total,
    }
    result.require("lost_updates_possible", unsynchronized.violating > 0)
    # The bad finals are exactly "one deposit vanished" amounts.
    bad_finals = set(unsynchronized.outcomes) - {correct}
    result.require(
        "losses_are_single_deposits",
        bad_finals <= {opening_balance + d1, opening_balance + d2},
    )
    result.require("detector_flags_slip", bool(mem.races))
    result.require("racy_schedule_loses_money", racy_final < correct)
    result.require("locking_makes_all_schedules_correct", locked.violating == 0)
    return result
