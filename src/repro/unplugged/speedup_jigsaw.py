"""SpeedupJigsaw: the Chitra-Ghafoor active-learning race, executable.

Teams assemble identical jigsaw puzzles with 1, 2 and 4 assemblers and
log completion times on the board.  A puzzle is secretly a task graph: a
piece can be placed only next to an already-placed piece, so the frame
chain is sequential-ish while the interior fans out.  The simulation
builds that DAG, list-schedules it for each team size, and produces the
speedup/efficiency table the class computes -- including the declining
efficiency (edge contention + dependency structure) the activity is
designed to surface.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.unplugged.sim.classroom import ActivityResult, Classroom
from repro.unplugged.sim.dag import TaskGraph

__all__ = ["run_speedup_jigsaw", "build_puzzle_graph"]


def build_puzzle_graph(rows: int, cols: int, piece_time: float = 1.0) -> TaskGraph:
    """The placement DAG of a rows x cols puzzle.

    The top-left corner anchors the picture; every other piece depends on
    its upper or left neighbor (whichever exists), matching how
    assemblers actually grow a puzzle from a placed region.
    """
    if rows < 2 or cols < 2:
        raise SimulationError("a puzzle needs at least 2x2 pieces")
    g = TaskGraph()
    for r in range(rows):
        for c in range(cols):
            deps = []
            if r > 0:
                deps.append(f"p{r - 1}.{c}")
            if c > 0:
                deps.append(f"p{r}.{c - 1}")
            # Frame pieces are quicker to recognize than interior ones.
            on_frame = r in (0, rows - 1) or c in (0, cols - 1)
            duration = piece_time * (0.7 if on_frame else 1.0)
            g.add_task(f"p{r}.{c}", duration, deps=deps)
    return g


def run_speedup_jigsaw(
    classroom: Classroom,
    rows: int = 8,
    cols: int = 8,
) -> ActivityResult:
    """Race the same puzzle with 1, 2 and 4 assemblers."""
    if classroom.size < 4:
        raise SimulationError("the race needs at least 4 students")
    graph = build_puzzle_graph(rows, cols)
    result = ActivityResult(activity="SpeedupJigsaw",
                            classroom_size=classroom.size)

    times: dict[int, float] = {}
    for team in (1, 2, 4):
        schedule = graph.list_schedule(team)
        graph.verify_schedule(schedule)
        times[team] = schedule.makespan
        for entry in schedule.timeline(0)[:3]:
            result.trace.record(entry.start,
                                classroom.student(entry.worker % classroom.size),
                                "place", f"team={team}: {entry.task}")

    speedups = {t: times[1] / times[t] for t in times}
    efficiencies = {t: speedups[t] / t for t in times}

    result.metrics = {
        "pieces": len(graph),
        "work": graph.work,
        "span": graph.span,
        "times": times,
        "speedups": speedups,
        "efficiencies": efficiencies,
        "max_parallelism": graph.max_parallelism(),
    }
    result.require("single_assembler_time_is_work",
                   abs(times[1] - graph.work) < 1e-9)
    result.require("teams_always_faster",
                   times[4] < times[2] < times[1])
    result.require("efficiency_declines",
                   efficiencies[4] < efficiencies[2] <= efficiencies[1] + 1e-9)
    result.require("span_is_the_wall",
                   all(t >= graph.span - 1e-9 for t in times.values()))
    # The dependency structure (not the assemblers) caps the speedup.
    result.require("speedup_below_average_parallelism",
                   speedups[4] <= graph.max_parallelism() + 1e-9)
    return result
