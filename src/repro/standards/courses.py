"""Course catalog: where unplugged activities get recommended.

PDCunplugged's ``courses`` taxonomy uses separate terms for college-level
courses (``CS0``, ``CS1``, ``CS2``, ``DSA``, ``Systems``) and a single
``K_12`` term for pre-college activities (paper §II-B.c).  The TCPP report
emphasizes parallelism in the four *core courses* -- CS1, CS2, DSA (here
following the paper's usage: Data Structures and Algorithms) and Systems --
so the coverage analysis in Table II restricts itself to topics TCPP
recommends for those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StandardsError

__all__ = [
    "Course",
    "COURSES",
    "CORE_COURSES",
    "COURSE_ORDER",
    "course",
    "is_known_course",
]


@dataclass(frozen=True)
class Course:
    """One course context an activity can be recommended for."""

    term: str
    name: str
    core: bool = False
    college: bool = True


#: All course terms PDCunplugged uses, in the order the paper reports them
#: ("15 activities ... for K-12, 8 for CS0, 17 for CS1, 25 for CS2, 27 for
#: DSA, and 22 for Systems", §III-A).
COURSES: tuple[Course, ...] = (
    Course("K_12", "K-12 outreach", core=False, college=False),
    Course("CS0", "CS0 (non-majors introduction)", core=False),
    Course("CS1", "CS1 (introduction to programming)", core=True),
    Course("CS2", "CS2 (second programming course)", core=True),
    Course("DSA", "Data Structures and Algorithms", core=True),
    Course("Systems", "Systems (architecture / organization)", core=True),
)

COURSE_ORDER: tuple[str, ...] = tuple(c.term for c in COURSES)

#: The TCPP "core courses" (2012 report): CS1, CS2, DSA, Systems.
CORE_COURSES: tuple[Course, ...] = tuple(c for c in COURSES if c.core)

_BY_TERM = {c.term: c for c in COURSES}


def course(term: str) -> Course:
    """Look up a course by taxonomy term."""
    try:
        return _BY_TERM[term]
    except KeyError:
        raise StandardsError(
            f"unknown course {term!r}; known courses: {', '.join(COURSE_ORDER)}"
        ) from None


def is_known_course(term: str) -> bool:
    return term in _BY_TERM
