"""The 2012 NSF/IEEE-TCPP curriculum: topic areas, core topics, Bloom levels.

The TCPP curriculum initiative organizes PDC topics into four *topic areas*
-- Architecture, Programming, Algorithms, and Crosscutting/Advanced -- each
subdivided into categories, with every topic carrying a Bloom classification
and the core courses it is recommended for.  PDCunplugged tags activities
with

* a ``tcpp`` taxonomy term per topic area, formed as ``TCPP_<Area>``
  (e.g. ``TCPP_Algorithms``), and
* a hidden ``tcppdetails`` term per topic, formed as
  ``<bloom-letter>_<topic-slug>`` (e.g. ``C_Speedup`` for "Comprehend
  Speedup", paper §II-B.e).

Following the paper's Table II, this model contains only the topics TCPP
suggests for *core courses* (CS1, CS2, DSA, Systems), excluding topics
solely associated with advanced courses; the per-area counts are pinned to
the table: Architecture 22, Programming 37, Algorithms 26, Crosscutting 12.
Category subtotals are pinned to §III-C (e.g. PD Models/Complexity has 11
topics so that 4 covered = 36.36 %; Paradigms and Notations has 14 so that
5 covered = 35.71 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StandardsError
from repro.standards.bloom import Bloom

__all__ = [
    "Topic",
    "Category",
    "TopicArea",
    "TCPP_CURRICULUM",
    "topic_area",
    "topic_for_detail_term",
    "all_topics",
    "all_detail_terms",
]


@dataclass(frozen=True)
class Topic:
    """One TCPP core-course topic."""

    slug: str                   # unique CamelCase slug, e.g. "Speedup"
    name: str                   # human-readable topic name
    bloom: Bloom                # expected mastery level
    courses: tuple[str, ...]    # recommended core courses

    @property
    def detail_term(self) -> str:
        """The ``tcppdetails`` taxonomy term for this topic."""
        return f"{self.bloom.value}_{self.slug}"


@dataclass(frozen=True)
class Category:
    """A named subdivision of a topic area (e.g. 'Memory Hierarchy')."""

    name: str
    topics: tuple[Topic, ...]

    @property
    def num_topics(self) -> int:
        return len(self.topics)


@dataclass(frozen=True)
class TopicArea:
    """One of the four TCPP topic areas."""

    term: str                   # tcpp taxonomy term, e.g. "TCPP_Algorithms"
    name: str
    categories: tuple[Category, ...]

    @property
    def topics(self) -> tuple[Topic, ...]:
        return tuple(t for c in self.categories for t in c.topics)

    @property
    def num_topics(self) -> int:
        return len(self.topics)

    def category(self, name: str) -> Category:
        for c in self.categories:
            if c.name == name:
                return c
        raise StandardsError(f"{self.name}: no category {name!r}")

    def detail_terms(self) -> list[str]:
        return [t.detail_term for t in self.topics]


def _t(slug: str, name: str, bloom: str, courses: str) -> Topic:
    return Topic(slug, name, Bloom.from_letter(bloom), tuple(courses.split()))


TCPP_CURRICULUM: tuple[TopicArea, ...] = (
    TopicArea(
        term="TCPP_Architecture",
        name="Architecture",
        categories=(
            Category("Classes", (
                _t("FlynnTaxonomy", "Flynn's taxonomy of parallel machines", "C", "CS2 Systems"),
                _t("Superscalar", "Superscalar (ILP) execution", "K", "Systems"),
                _t("SIMDVector", "SIMD and vector processing", "C", "CS2 Systems"),
                _t("InstructionPipelines", "Pipelined instruction execution", "C", "CS1 Systems"),
                _t("MIMD", "MIMD multiprocessors", "K", "Systems"),
                _t("Multicore", "Multicore processors", "C", "CS1 CS2 Systems"),
                _t("SharedVsDistributedMemory", "Shared versus distributed memory organizations", "C", "CS2 Systems"),
                _t("InterconnectTopologies", "Interconnection network topologies", "K", "Systems"),
            )),
            Category("Memory Hierarchy", (
                _t("CacheHierarchy", "Cache organization and the memory hierarchy", "K", "CS2 Systems"),
                _t("Atomicity", "Atomicity of memory operations", "K", "Systems"),
                _t("CacheCoherence", "Cache coherence protocols", "K", "Systems"),
                _t("FalseSharing", "False sharing", "K", "Systems"),
                _t("MemoryConsistency", "Memory consistency models", "K", "Systems"),
                _t("LatencyBandwidth", "Latency and bandwidth of communication", "C", "CS2 Systems"),
            )),
            Category("Floating-Point Representation", (
                _t("FloatRange", "Range of representable floating-point values", "K", "CS1 CS2"),
                _t("FloatPrecision", "Precision of floating-point values", "K", "CS1 CS2"),
                _t("RoundingError", "Rounding and error propagation", "K", "CS2 DSA"),
                _t("IEEE754", "The IEEE 754 standard", "K", "CS1 Systems"),
            )),
            Category("Performance Metrics", (
                _t("CyclesPerInstruction", "Cycles per instruction as a metric", "C", "Systems"),
                _t("Benchmarks", "Benchmark suites (e.g. LINPACK, SPEC)", "K", "Systems"),
                _t("PeakPerformance", "Peak performance and its limits", "C", "Systems"),
                _t("SustainedPerformance", "Sustained versus peak performance", "C", "Systems"),
            )),
        ),
    ),
    TopicArea(
        term="TCPP_Programming",
        name="Programming",
        categories=(
            Category("Paradigms and Notations", (
                _t("SharedMemoryModel", "Programming for shared memory", "C", "CS1 CS2 Systems"),
                _t("DistributedMemoryModel", "Programming for distributed memory", "C", "CS2 Systems"),
                _t("ClientServer", "Client-server and hybrid paradigms", "C", "CS2 Systems"),
                _t("TaskSpawning", "Task and thread spawning constructs", "A", "CS1 CS2"),
                _t("ParallelLoops", "Parallel loop constructs", "A", "CS1 CS2 DSA"),
                _t("VectorExtensions", "Processor vector extensions", "K", "Systems"),
                _t("HybridModel", "Hybrid shared/distributed programming", "K", "Systems"),
                _t("DataParallelNotation", "Data-parallel notations", "C", "CS2 DSA"),
                _t("FunctionalParallelism", "Functional and logic-based parallelism", "K", "DSA"),
                _t("OpenMP", "OpenMP directives", "A", "CS2 Systems"),
                _t("TBB", "Threading Building Blocks", "K", "Systems"),
                _t("CUDA", "GPU programming with CUDA/OpenCL", "K", "Systems"),
                _t("MPI", "Message Passing Interface", "C", "CS2 Systems"),
                _t("Actors", "Actors and reactive processes", "K", "DSA"),
            )),
            Category("Correctness", (
                _t("TasksAndThreads", "Tasks and threads as units of concurrency", "C", "CS1 CS2 Systems"),
                _t("Synchronization", "Synchronization constructs (locks, semaphores)", "A", "CS1 CS2 Systems"),
                _t("CriticalSections", "Critical sections and mutual exclusion", "A", "CS1 CS2 Systems"),
                _t("ProducerConsumer", "Producer-consumer coordination", "A", "CS2 DSA"),
                _t("Monitors", "Monitors and condition synchronization", "K", "Systems"),
                _t("Deadlock", "Deadlock: conditions, avoidance, detection", "C", "CS2 Systems"),
                _t("DataRaces", "Data races and their consequences", "C", "CS1 CS2 Systems"),
                _t("RaceAvoidance", "Techniques for avoiding races", "A", "CS2 Systems"),
                _t("MemoryModels", "Language memory models", "K", "Systems"),
                _t("SequentialConsistency", "Sequential consistency as a contract", "K", "Systems"),
                _t("DefectTools", "Tools for detecting concurrency defects", "K", "Systems"),
            )),
            Category("Performance", (
                _t("LoadBalancing", "Load balancing across computational units", "C", "CS2 DSA Systems"),
                _t("SchedulingMapping", "Scheduling and mapping work to resources", "C", "CS2 DSA Systems"),
                _t("DataDistribution", "Data distribution strategies", "C", "CS2 DSA"),
                _t("DataLocality", "Exploiting data locality", "C", "CS2 Systems"),
                _t("TaskGranularity", "Choosing task granularity", "C", "DSA Systems"),
                _t("PerformanceMonitoring", "Performance monitoring tools", "K", "Systems"),
                _t("Speedup", "Speedup", "C", "CS1 CS2 DSA"),
                _t("Efficiency", "Parallel efficiency", "C", "CS2 DSA"),
                _t("ParallelOverhead", "Sources of parallel overhead", "C", "CS2 DSA Systems"),
                _t("AmdahlsLaw", "Amdahl's law", "C", "CS2 DSA Systems"),
                _t("WeakScaling", "Strong versus weak scaling", "K", "DSA Systems"),
                _t("CommunicationCosts", "Communication costs and their mitigation", "C", "CS2 Systems"),
            )),
        ),
    ),
    TopicArea(
        term="TCPP_Algorithms",
        name="Algorithms",
        categories=(
            Category("PD Models and Complexity", (
                _t("Asymptotics", "Asymptotic analysis of parallel cost", "K", "DSA"),
                _t("TimeComplexity", "Time as a computational resource", "C", "DSA"),
                _t("CostReduction", "Cost reduction via parallelism (speedup, compression)", "C", "CS2 DSA"),
                _t("Scalability", "Scalability in algorithms and architectures", "C", "CS2 DSA"),
                _t("PRAM", "The PRAM model", "K", "DSA"),
                _t("BSP", "BSP and related bridging models", "K", "DSA"),
                _t("DependencyGraphs", "Dependencies and dependency graphs", "C", "CS1 CS2 DSA"),
                _t("TaskGraphs", "Task graphs as schedules", "C", "DSA"),
                _t("Work", "Work as a cost measure", "K", "DSA"),
                _t("MakeSpan", "Make/span (critical path) as a cost measure", "K", "DSA"),
                _t("PowerCost", "Power and energy as computational resources", "K", "DSA Systems"),
            )),
            Category("Algorithmic Paradigms", (
                _t("DivideAndConquer", "Parallel divide and conquer", "A", "CS2 DSA"),
                _t("Recursion", "Parallel aspects of recursion", "C", "CS2 DSA"),
                _t("Reduction", "Reduction as a parallel paradigm", "A", "CS2 DSA"),
                _t("Scan", "Scan (parallel prefix)", "A", "DSA"),
                _t("SeriesParallelComposition", "Series-parallel composition", "K", "DSA"),
                _t("MasterWorker", "Master-worker decomposition", "C", "CS2 DSA"),
                _t("PipelineParadigm", "Pipelining as an algorithmic paradigm", "C", "CS2 DSA Systems"),
            )),
            Category("Algorithmic Problems", (
                _t("Broadcast", "Broadcast and multicast communication", "C", "DSA Systems"),
                _t("ScatterGather", "Scatter and gather collectives", "C", "DSA Systems"),
                _t("Sorting", "Parallel sorting", "A", "CS1 CS2 DSA"),
                _t("Selection", "Parallel selection (e.g. minimum finding)", "A", "CS1 CS2 DSA"),
                _t("Search", "Parallel search", "A", "CS2 DSA"),
                _t("LeaderElection", "Leader election and symmetry breaking", "K", "DSA Systems"),
                _t("MutualExclusionProblem", "Mutual exclusion as an algorithmic problem", "C", "CS2 Systems"),
                _t("Consensus", "Agreement and consensus under faults", "K", "DSA Systems"),
            )),
        ),
    ),
    TopicArea(
        term="TCPP_Crosscutting",
        name="Crosscutting and Advanced Topics",
        categories=(
            Category("Crosscutting", (
                _t("WhyAndWhatPDC", "Why and what is parallel/distributed computing", "K", "CS1 CS2"),
                _t("Locality", "The concept of locality", "K", "CS2 DSA Systems"),
                _t("Concurrency", "Concurrency as a crosscutting theme", "K", "CS1 CS2 Systems"),
                _t("NonDeterminism", "Non-determinism in parallel execution", "K", "CS2 DSA Systems"),
            )),
            Category("Current and Advanced", (
                _t("ClusterComputing", "Cluster computing", "K", "CS2 Systems"),
                _t("CloudGridComputing", "Cloud and grid computing", "K", "CS2 Systems"),
                _t("PeerToPeer", "Peer-to-peer computing", "K", "CS2 DSA"),
                _t("WebSearch", "How web search works", "K", "CS2 DSA"),
                _t("FaultTolerance", "Fault tolerance", "K", "DSA Systems"),
                _t("DistributedSecurity", "Security in distributed systems", "K", "Systems"),
                _t("PerformanceModeling", "Performance modeling", "K", "DSA Systems"),
                _t("CollectiveIntelligence", "Social networking and collective intelligence", "K", "CS2 DSA"),
            )),
        ),
    ),
)

_BY_TERM = {area.term: area for area in TCPP_CURRICULUM}
_BY_DETAIL: dict[str, tuple[TopicArea, Topic]] = {}
for _area in TCPP_CURRICULUM:
    for _topic in _area.topics:
        if _topic.detail_term in _BY_DETAIL:
            raise StandardsError(f"duplicate TCPP detail term {_topic.detail_term!r}")
        _BY_DETAIL[_topic.detail_term] = (_area, _topic)


def topic_area(term: str) -> TopicArea:
    """Look up a topic area by its ``tcpp`` taxonomy term."""
    try:
        return _BY_TERM[term]
    except KeyError:
        raise StandardsError(f"unknown TCPP topic area term {term!r}") from None


def topic_for_detail_term(term: str) -> tuple[TopicArea, Topic]:
    """Resolve a ``tcppdetails`` term like ``C_Speedup`` to (area, topic)."""
    try:
        return _BY_DETAIL[term]
    except KeyError:
        raise StandardsError(f"unknown tcppdetails term {term!r}") from None


def all_topics() -> list[tuple[TopicArea, Topic]]:
    return [(area, topic) for area in TCPP_CURRICULUM for topic in area.topics]


def all_detail_terms() -> list[str]:
    return list(_BY_DETAIL)
