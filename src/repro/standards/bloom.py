"""Bloom-taxonomy classification levels used by the TCPP curriculum.

The 2012 NSF/IEEE-TCPP curriculum annotates every topic with the expected
level of student mastery using a three-letter Bloom scale (paper §II-B.e):
``K`` ("Know the term"), ``C`` ("Comprehend so as to paraphrase or
illustrate"), and ``A`` ("Apply it in some way").  The hidden
``tcppdetails`` taxonomy terms are formed as ``<bloom-letter>_<topic-slug>``
(e.g. ``C_Speedup``).
"""

from __future__ import annotations

import enum

from repro.errors import StandardsError

__all__ = ["Bloom"]


class Bloom(enum.Enum):
    """TCPP Bloom classification for a curriculum topic."""

    KNOW = "K"
    COMPREHEND = "C"
    APPLY = "A"

    @classmethod
    def from_letter(cls, letter: str) -> "Bloom":
        for member in cls:
            if member.value == letter:
                return member
        raise StandardsError(f"unknown Bloom letter {letter!r} (expected K, C, or A)")

    @property
    def description(self) -> str:
        return {
            Bloom.KNOW: "Know the term",
            Bloom.COMPREHEND: "Comprehend so as to paraphrase or illustrate",
            Bloom.APPLY: "Apply it in some way",
        }[self]

    def __str__(self) -> str:
        return self.value
