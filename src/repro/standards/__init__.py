"""``repro.standards``: machine-readable curriculum standards.

* :mod:`repro.standards.cs2013` -- the CS2013 PD knowledge area (9 units,
  67 learning outcomes, tiers), counts pinned to the paper's Table I.
* :mod:`repro.standards.tcpp` -- the TCPP 2012 core-course topics (4 areas,
  97 topics with Bloom levels and courses), counts pinned to Table II.
* :mod:`repro.standards.bloom` -- the K/C/A Bloom scale.
* :mod:`repro.standards.courses` -- the course catalog and core-course set.
"""

from repro.standards.bloom import Bloom
from repro.standards.courses import CORE_COURSES, COURSE_ORDER, COURSES, Course, course
from repro.standards.cs2013 import (
    PD_KNOWLEDGE_AREA,
    KnowledgeUnit,
    LearningOutcome,
    Tier,
    knowledge_unit,
    knowledge_unit_by_abbrev,
    outcome_for_detail_term,
)
from repro.standards.tcpp import (
    TCPP_CURRICULUM,
    Category,
    Topic,
    TopicArea,
    topic_area,
    topic_for_detail_term,
)

__all__ = [
    "Bloom",
    "CORE_COURSES",
    "COURSES",
    "COURSE_ORDER",
    "Category",
    "Course",
    "KnowledgeUnit",
    "LearningOutcome",
    "PD_KNOWLEDGE_AREA",
    "TCPP_CURRICULUM",
    "Tier",
    "Topic",
    "TopicArea",
    "course",
    "knowledge_unit",
    "knowledge_unit_by_abbrev",
    "outcome_for_detail_term",
    "topic_area",
    "topic_for_detail_term",
]
