"""Canonical taxonomy-tag normalization shared by analytics and lint.

Activity authors type taxonomy terms by hand, so near-misses are
inevitable: stray whitespace, wrong case (``cs1`` for ``CS1``), or a
well-known alias (``K-12`` for ``K_12``).  Exactly one module may decide
what a typed tag *means* — otherwise the coverage tables
(:mod:`repro.analytics`) and the static analyzer (:mod:`repro.lint`)
could disagree about which tags are valid.  Both import this module.

:func:`canonical_term` maps a typed term to its canonical vocabulary form
(or ``None`` when it matches nothing even loosely); :func:`canonicalize_counts`
folds a term histogram onto canonical keys so aggregate tables are
insensitive to spelling variants.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from repro.standards import courses as courses_mod
from repro.standards import cs2013, tcpp

__all__ = [
    "ALIASES",
    "TAXONOMIES",
    "canonical_term",
    "canonicalize_counts",
    "normalize_whitespace",
    "vocabulary",
]

#: Spelling variants accepted (case-insensitively) per taxonomy, beyond the
#: canonical vocabulary itself.  Keys are normalized lowercase forms.
ALIASES: dict[str, dict[str, str]] = {
    "courses": {
        "k-12": "K_12",
        "k12": "K_12",
        "ds&a": "DSA",
        "data structures": "DSA",
        "systems": "Systems",
    },
    "senses": {
        "tactile": "touch",
        "auditory": "sound",
        "kinesthetic": "movement",
    },
    "medium": {
        "role-play": "roleplay",
        "role play": "roleplay",
        "card": "cards",
        "boardgame": "board",
    },
}

#: The taxonomy axes this module can canonicalize.
TAXONOMIES: tuple[str, ...] = (
    "cs2013", "tcpp", "courses", "senses",
    "cs2013details", "tcppdetails", "medium",
)


def normalize_whitespace(term: str) -> str:
    """Collapse internal runs of whitespace and strip the ends."""
    return " ".join(str(term).split())


def vocabulary(taxonomy: str) -> frozenset[str]:
    """The canonical term vocabulary for one taxonomy axis."""
    if taxonomy == "cs2013":
        return frozenset(ku.term for ku in cs2013.PD_KNOWLEDGE_AREA)
    if taxonomy == "cs2013details":
        return frozenset(cs2013.all_detail_terms())
    if taxonomy == "tcpp":
        return frozenset(area.term for area in tcpp.TCPP_CURRICULUM)
    if taxonomy == "tcppdetails":
        return frozenset(tcpp.all_detail_terms())
    if taxonomy == "courses":
        return frozenset(courses_mod.COURSE_ORDER)
    if taxonomy in ("senses", "medium"):
        # Lazy import: activities.schema imports repro.standards at module
        # load, so the reverse edge must not exist at import time.
        from repro.activities import schema

        return frozenset(schema.SENSES if taxonomy == "senses" else schema.MEDIUMS)
    raise ValueError(f"unknown taxonomy {taxonomy!r}")


def canonical_term(taxonomy: str, term: str) -> str | None:
    """Resolve a typed term to its canonical form.

    Returns the term itself when it is already canonical, the canonical
    spelling when only case/whitespace/alias differs, or ``None`` when the
    term matches nothing in the vocabulary even loosely.
    """
    vocab = vocabulary(taxonomy)
    if term in vocab:
        return term
    cleaned = normalize_whitespace(term)
    if cleaned in vocab:
        return cleaned
    lowered = cleaned.lower()
    by_lower = {v.lower(): v for v in vocab}
    if lowered in by_lower:
        return by_lower[lowered]
    alias = ALIASES.get(taxonomy, {}).get(lowered)
    if alias is not None:
        return alias
    return None


def canonicalize_counts(taxonomy: str, counts: Mapping[str, int]) -> Counter:
    """Fold a term histogram onto canonical keys.

    Unrecognized terms keep their (whitespace-normalized) spelling so
    callers still see them rather than silently losing counts.
    """
    folded: Counter = Counter()
    for term, count in counts.items():
        folded[canonical_term(taxonomy, term) or normalize_whitespace(term)] += count
    return folded


def canonical_terms(taxonomy: str, terms: Iterable[str]) -> list[str]:
    """Canonicalize a term list, dropping duplicates, keeping order.

    Unrecognized terms pass through whitespace-normalized.
    """
    seen: set[str] = set()
    out: list[str] = []
    for term in terms:
        resolved = canonical_term(taxonomy, term) or normalize_whitespace(term)
        if resolved not in seen:
            seen.add(resolved)
            out.append(resolved)
    return out
