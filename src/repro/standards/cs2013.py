"""The CS2013 Parallel and Distributed Computing (PD) knowledge area.

CS2013 organizes the PD knowledge area into nine *knowledge units* (KUs),
each with numbered *learning outcomes* (LOs) at three tiers (Core Tier 1,
Core Tier 2, Elective).  PDCunplugged tags an activity with

* a ``cs2013`` taxonomy term per knowledge unit it touches, formed as
  ``PD_<CamelCaseUnitName>`` (e.g. ``PD_ParallelDecomposition``), and
* a hidden ``cs2013details`` term per learning outcome, formed as
  ``<unit-abbreviation>_<outcome-number>`` (e.g. ``PD_1``, ``PD_3``) --
  paper §II-B.e.

The learning-outcome counts per unit are pinned to the paper's Table I
(3, 6, 12, 11, 8, 7, 9, 5, 6); the outcome texts paraphrase the CS2013
report.  CS2013 recommends covering all Tier-1 outcomes, at least 80 % of
Tier 2, and "significant" elective depth -- thresholds exposed as module
constants because the gap analysis uses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StandardsError

__all__ = [
    "Tier",
    "LearningOutcome",
    "KnowledgeUnit",
    "PD_KNOWLEDGE_AREA",
    "knowledge_unit",
    "knowledge_unit_by_abbrev",
    "outcome_for_detail_term",
    "all_detail_terms",
    "TIER1_TARGET",
    "TIER2_TARGET",
]

#: CS2013 coverage recommendations (§III-B of the paper).
TIER1_TARGET = 1.0
TIER2_TARGET = 0.8


class Tier:
    CORE1 = "core-tier1"
    CORE2 = "core-tier2"
    ELECTIVE = "elective"


@dataclass(frozen=True)
class LearningOutcome:
    """One numbered learning outcome within a knowledge unit."""

    number: int
    text: str
    tier: str = Tier.CORE2

    def detail_term(self, unit_abbrev: str) -> str:
        return f"{unit_abbrev}_{self.number}"


@dataclass(frozen=True)
class KnowledgeUnit:
    """One CS2013 PD knowledge unit."""

    term: str            # cs2013 taxonomy term, e.g. "PD_ParallelDecomposition"
    name: str            # display name, e.g. "Parallel Decomposition"
    abbrev: str          # cs2013details prefix, e.g. "PD"
    elective: bool       # marked (E) in Table I
    outcomes: tuple[LearningOutcome, ...] = field(default_factory=tuple)

    @property
    def num_outcomes(self) -> int:
        return len(self.outcomes)

    def outcome(self, number: int) -> LearningOutcome:
        for lo in self.outcomes:
            if lo.number == number:
                return lo
        raise StandardsError(f"{self.name}: no learning outcome #{number}")

    def detail_terms(self) -> list[str]:
        return [lo.detail_term(self.abbrev) for lo in self.outcomes]


def _lo(number: int, text: str, tier: str = Tier.CORE2) -> LearningOutcome:
    return LearningOutcome(number, text, tier)


#: The nine PD knowledge units, in Table I order.
PD_KNOWLEDGE_AREA: tuple[KnowledgeUnit, ...] = (
    KnowledgeUnit(
        term="PD_ParallelismFundamentals",
        name="Parallelism Fundamentals",
        abbrev="PF",
        elective=False,
        outcomes=(
            _lo(1, "Distinguish using computational resources for a faster answer "
                   "from managing efficient access to a shared resource.", Tier.CORE1),
            _lo(2, "Distinguish multiple sufficient programming constructs for "
                   "synchronization that may be inter-implementable but have "
                   "complementary advantages.", Tier.CORE1),
            _lo(3, "Distinguish data races from higher-level races.", Tier.CORE1),
        ),
    ),
    KnowledgeUnit(
        term="PD_ParallelDecomposition",
        name="Parallel Decomposition",
        abbrev="PD",
        elective=False,
        outcomes=(
            _lo(1, "Explain why synchronization is necessary in a specific parallel "
                   "program.", Tier.CORE1),
            _lo(2, "Identify opportunities to partition a serial program into "
                   "independent parallel modules.", Tier.CORE1),
            _lo(3, "Write a correct and scalable parallel algorithm.", Tier.CORE2),
            _lo(4, "Parallelize an algorithm by applying task-based decomposition.",
                Tier.CORE2),
            _lo(5, "Parallelize an algorithm by applying data-parallel decomposition.",
                Tier.CORE2),
            _lo(6, "Write a program using actors and/or reactive processes.",
                Tier.ELECTIVE),
        ),
    ),
    KnowledgeUnit(
        term="PD_CommunicationAndCoordination",
        name="Parallel Communication and Coordination",
        abbrev="PCC",
        elective=False,
        outcomes=(
            _lo(1, "Use mutual exclusion to avoid a given race condition.", Tier.CORE1),
            _lo(2, "Give an example of an ordering of accesses among concurrent "
                   "activities that is not sequentially consistent.", Tier.CORE2),
            _lo(3, "Give an example of a scenario in which blocking message sends "
                   "can deadlock.", Tier.CORE2),
            _lo(4, "Explain when and why multicast or event-based messaging can be "
                   "preferable to alternatives.", Tier.CORE2),
            _lo(5, "Write a program that correctly terminates when all of a set of "
                   "concurrent tasks have completed.", Tier.CORE2),
            _lo(6, "Use a properly synchronized queue to buffer data between "
                   "activities.", Tier.CORE2),
            _lo(7, "Explain why checks for preconditions, and actions based on them, "
                   "must share the same unit of atomicity.", Tier.CORE2),
            _lo(8, "Write a test program that can reveal a concurrent programming "
                   "error; for example, missing an update when two activities both "
                   "try to increment a variable.", Tier.CORE2),
            _lo(9, "Describe at least one design technique for avoiding liveness "
                   "failures in programs using multiple locks.", Tier.CORE2),
            _lo(10, "Describe the relative merits of optimistic versus conservative "
                    "concurrency control under different rates of contention.",
                Tier.CORE2),
            _lo(11, "Give an example of a scenario in which an attempted optimistic "
                    "update may never complete.", Tier.CORE2),
            _lo(12, "Use semaphores or condition variables to block threads until a "
                    "necessary precondition holds.", Tier.ELECTIVE),
        ),
    ),
    KnowledgeUnit(
        term="PD_ParallelAlgorithms",
        name="Parallel Algorithms, Analysis, and Programming",
        abbrev="PAAP",
        elective=False,
        outcomes=(
            _lo(1, "Define 'critical path', 'work', and 'span'.", Tier.CORE2),
            _lo(2, "Compute the work and span, and determine the critical path, "
                   "with respect to a parallel execution diagram.", Tier.CORE2),
            _lo(3, "Define 'speed-up' and explain the notion of an algorithm's "
                   "scalability in this regard.", Tier.CORE2),
            _lo(4, "Identify independent tasks in a program that may be parallelized.",
                Tier.CORE2),
            _lo(5, "Characterize features of a workload that allow or prevent it "
                   "from being naturally parallelized.", Tier.CORE2),
            _lo(6, "Implement a parallel divide-and-conquer (and/or graph) algorithm "
                   "and empirically measure its performance relative to its "
                   "sequential analog.", Tier.CORE2),
            _lo(7, "Decompose a problem (e.g., counting the number of occurrences of "
                   "some word in a document) via map and reduce operations.",
                Tier.CORE2),
            _lo(8, "Provide an example of a problem that fits the producer-consumer "
                   "paradigm.", Tier.ELECTIVE),
            _lo(9, "Give examples of problems where pipelining would be an effective "
                   "means of parallelization.", Tier.ELECTIVE),
            _lo(10, "Implement a parallel matrix algorithm.", Tier.ELECTIVE),
            _lo(11, "Identify issues that arise in producer-consumer algorithms and "
                    "mechanisms that may be used for addressing them.", Tier.ELECTIVE),
        ),
    ),
    KnowledgeUnit(
        term="PD_ParallelArchitecture",
        name="Parallel Architecture",
        abbrev="PA",
        elective=False,
        outcomes=(
            _lo(1, "Explain the differences between shared and distributed memory.",
                Tier.CORE1),
            _lo(2, "Describe the SMP architecture and note its key features.",
                Tier.CORE2),
            _lo(3, "Characterize the kinds of tasks that are a natural match for "
                   "SIMD machines.", Tier.CORE2),
            _lo(4, "Describe the advantages and limitations of GPUs versus CPUs.",
                Tier.ELECTIVE),
            _lo(5, "Explain the features of each classification in Flynn's taxonomy.",
                Tier.ELECTIVE),
            _lo(6, "Describe assembly-line (pipelined) processing and its impact on "
                   "throughput.", Tier.ELECTIVE),
            _lo(7, "Describe how memory hierarchy (caches) affects the performance "
                   "of parallel programs.", Tier.ELECTIVE),
            _lo(8, "Explain the performance impact of interconnection-network "
                   "topology on communicating processors.", Tier.ELECTIVE),
        ),
    ),
    KnowledgeUnit(
        term="PD_ParallelPerformance",
        name="Parallel Performance",
        abbrev="PP",
        elective=True,
        outcomes=(
            _lo(1, "Calculate the implications of Amdahl's law for a particular "
                   "parallel algorithm.", Tier.ELECTIVE),
            _lo(2, "Describe how data distribution and load balancing affect "
                   "performance.", Tier.ELECTIVE),
            _lo(3, "Detect and correct a load imbalance.", Tier.ELECTIVE),
            _lo(4, "Explain the impact of scheduling on parallel performance.",
                Tier.ELECTIVE),
            _lo(5, "Explain performance impacts of communication overhead and "
                   "contention for shared resources.", Tier.ELECTIVE),
            _lo(6, "Explain the impact of data locality on performance.",
                Tier.ELECTIVE),
            _lo(7, "Define the notions of scalability, strong and weak scaling, and "
                   "isoefficiency.", Tier.ELECTIVE),
        ),
    ),
    KnowledgeUnit(
        term="PD_DistributedSystems",
        name="Distributed Systems",
        abbrev="DS",
        elective=True,
        outcomes=(
            _lo(1, "Give examples of distributed-system designs that tolerate faults "
                   "and describe why consensus is hard in their presence.",
                Tier.ELECTIVE),
            _lo(2, "Contrast network faults with other kinds of failures.",
                Tier.ELECTIVE),
            _lo(3, "Explain why synchronization constructs such as simple locks are "
                   "not useful in the presence of distributed failures.",
                Tier.ELECTIVE),
            _lo(4, "Describe the general structure of a distributed hash table.",
                Tier.ELECTIVE),
            _lo(5, "Explain the CAP trade-off between consistency and availability.",
                Tier.ELECTIVE),
            _lo(6, "Describe the difference between remote procedure calls and "
                   "local calls.", Tier.ELECTIVE),
            _lo(7, "Implement a simple server and a client that interacts with it.",
                Tier.ELECTIVE),
            _lo(8, "Explain tradeoffs among overhead, scalability, and reliability "
                   "in choosing a stateful or stateless design.", Tier.ELECTIVE),
            _lo(9, "Describe the scalability challenges associated with a "
                   "name-resolution service.", Tier.ELECTIVE),
        ),
    ),
    KnowledgeUnit(
        term="PD_CloudComputing",
        name="Cloud Computing",
        abbrev="CLD",
        elective=True,
        outcomes=(
            _lo(1, "Discuss the importance of elasticity and resource management in "
                   "cloud computing.", Tier.ELECTIVE),
            _lo(2, "Explain strategies to synchronize a common view of shared data "
                   "across a collection of devices.", Tier.ELECTIVE),
            _lo(3, "Explain the advantages and disadvantages of using virtualized "
                   "infrastructure.", Tier.ELECTIVE),
            _lo(4, "Deploy an application that uses a cloud infrastructure for "
                   "computing or data resources.", Tier.ELECTIVE),
            _lo(5, "Discuss how cloud services make large distributed computing "
                   "resources available to small projects.", Tier.ELECTIVE),
        ),
    ),
    KnowledgeUnit(
        term="PD_FormalModels",
        name="Formal Models and Semantics",
        abbrev="FMS",
        elective=True,
        outcomes=(
            _lo(1, "Use invariants and assertional reasoning to analyze what is true "
                   "across all executions of a concurrent algorithm.", Tier.ELECTIVE),
            _lo(2, "Model a concurrent process using a formal model such as a "
                   "process algebra.", Tier.ELECTIVE),
            _lo(3, "Explain the difference between safety and liveness properties.",
                Tier.ELECTIVE),
            _lo(4, "Use a model-checking tool to verify a simple concurrent "
                   "protocol.", Tier.ELECTIVE),
            _lo(5, "Describe the behavior of a simple concurrent program in terms of "
                   "an interleaving of atomic steps.", Tier.ELECTIVE),
            _lo(6, "Give an example showing why operational reasoning over all "
                   "interleavings does not scale.", Tier.ELECTIVE),
        ),
    ),
)

_BY_TERM = {ku.term: ku for ku in PD_KNOWLEDGE_AREA}
_BY_ABBREV = {ku.abbrev: ku for ku in PD_KNOWLEDGE_AREA}


def knowledge_unit(term: str) -> KnowledgeUnit:
    """Look up a knowledge unit by its ``cs2013`` taxonomy term."""
    try:
        return _BY_TERM[term]
    except KeyError:
        raise StandardsError(
            f"unknown CS2013 knowledge unit term {term!r}"
        ) from None


def knowledge_unit_by_abbrev(abbrev: str) -> KnowledgeUnit:
    """Look up a knowledge unit by its detail-term prefix (e.g. ``PD``)."""
    try:
        return _BY_ABBREV[abbrev]
    except KeyError:
        raise StandardsError(f"unknown CS2013 unit abbreviation {abbrev!r}") from None


def outcome_for_detail_term(term: str) -> tuple[KnowledgeUnit, LearningOutcome]:
    """Resolve a ``cs2013details`` term like ``PD_3`` to (unit, outcome)."""
    abbrev, _, number = term.rpartition("_")
    if not abbrev or not number.isdigit():
        raise StandardsError(f"malformed cs2013details term {term!r}")
    ku = knowledge_unit_by_abbrev(abbrev)
    return ku, ku.outcome(int(number))


def all_detail_terms() -> list[str]:
    """Every valid ``cs2013details`` term across the PD knowledge area."""
    terms: list[str] = []
    for ku in PD_KNOWLEDGE_AREA:
        terms.extend(ku.detail_terms())
    return terms
