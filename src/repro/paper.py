"""Every number the paper reports, as machine-readable expectations.

This module is the single source of truth for the published results that
the benchmarks and EXPERIMENTS.md compare against.  Values are transcribed
from Matthews, *PDCunplugged*, IPDPSW 2020:

* :data:`TABLE1` -- CS2013 coverage (Table I),
* :data:`TABLE2` -- TCPP coverage (Table II),
* :data:`COURSE_COUNTS` -- §III-A course distribution,
* :data:`MEDIUM_COUNTS` / :data:`SENSE_STATS` -- §III-D accessibility,
* :data:`CATEGORY_CLAIMS` -- §III-C category-level percentages,
* assorted scalar claims (§III-A resource availability, corpus size, span).

Two printed values are arithmetically inconsistent with the rest of the
paper and are recorded here verbatim alongside the reconciled value we
reproduce (see DESIGN.md "Notes on the paper's arithmetic"):

* movement is printed as 38.84 % but no k/38 equals that; 14/38 = 36.84 %
  (a transposition typo) is what the corpus reproduces;
* "41 %" with external resources is not k/38 either; we curate 16/38 =
  42.1 %, preserving the qualitative claim "less than half".
"""

from __future__ import annotations

__all__ = [
    "CORPUS_SIZE",
    "TABLE1",
    "TABLE2",
    "COURSE_COUNTS",
    "MEDIUM_COUNTS",
    "SENSE_COUNTS",
    "SENSE_PERCENTS_PRINTED",
    "CATEGORY_CLAIMS",
    "RESOURCE_PERCENT_PRINTED",
    "RESOURCE_COUNT_REPRODUCED",
    "EARLIEST_PAPER_YEAR",
    "LITERATURE_SPAN_YEARS",
    "UNCOVERED_CROSSCUTTING_TOPICS",
    "EMPTY_ARCHITECTURE_CATEGORIES",
    "ASSESSED_ACTIVITY_MINIMUM",
]

#: "nearly forty unique activities"; N = 38 makes the printed percentages exact.
CORPUS_SIZE = 38

#: Table I rows: knowledge-unit term -> (num outcomes, covered, activities).
TABLE1: dict[str, tuple[int, int, int]] = {
    "PD_ParallelismFundamentals": (3, 2, 2),
    "PD_ParallelDecomposition": (6, 5, 21),
    "PD_CommunicationAndCoordination": (12, 6, 9),
    "PD_ParallelAlgorithms": (11, 6, 12),
    "PD_ParallelArchitecture": (8, 7, 9),
    "PD_ParallelPerformance": (7, 6, 10),
    "PD_DistributedSystems": (9, 1, 2),
    "PD_CloudComputing": (5, 1, 3),
    "PD_FormalModels": (6, 1, 1),
}

#: Table II rows: topic-area term -> (num topics, covered, activities).
TABLE2: dict[str, tuple[int, int, int]] = {
    "TCPP_Architecture": (22, 10, 9),
    "TCPP_Programming": (37, 19, 24),
    "TCPP_Algorithms": (26, 13, 22),
    "TCPP_Crosscutting": (12, 7, 8),
}

#: §III-A: "15 activities listed on PDCunplugged recommended for K-12, 8 for
#: CS0, 17 for CS1, 25 for CS2, 27 for DSA, and 22 for Systems courses."
COURSE_COUNTS: dict[str, int] = {
    "K_12": 15,
    "CS0": 8,
    "CS1": 17,
    "CS2": 25,
    "DSA": 27,
    "Systems": 22,
}

#: §III-D medium counts.
MEDIUM_COUNTS: dict[str, int] = {
    "analogy": 11,
    "roleplay": 11,
    "game": 4,
    "paper": 8,
    "board": 6,
    "cards": 6,
    "pens": 4,
    "coins": 2,
    "food": 4,
    "music": 1,
}

#: §III-D sense counts reconciled at N=38 (visual 27/38 = 71.05 %,
#: touch 10/38 = 26.32 %, movement 14/38 = 36.84 %, sound "only two",
#: "9 of the curated activities appear generally accessible").
SENSE_COUNTS: dict[str, int] = {
    "visual": 27,
    "movement": 14,
    "touch": 10,
    "sound": 2,
    "accessible": 9,
}

#: The percentages exactly as printed in §III-D (movement is the typo).
SENSE_PERCENTS_PRINTED: dict[str, float] = {
    "visual": 71.05,
    "movement": 38.84,   # printed; 36.84 is the arithmetically consistent value
    "touch": 26.32,
}

#: §III-C category-level claims: (area, category) -> printed percent, or
#: None for the categories reported as having no activities at all.
CATEGORY_CLAIMS: dict[tuple[str, str], float | None] = {
    ("Architecture", "Floating-Point Representation"): None,
    ("Architecture", "Performance Metrics"): None,
    ("Algorithms", "PD Models and Complexity"): 36.36,
    ("Programming", "Paradigms and Notations"): 35.71,
}

#: §III-A: "Less than half (41%) of the materials have some sort of
#: external resource"; reproduced as 16/38 = 42.1 %.
RESOURCE_PERCENT_PRINTED = 41.0
RESOURCE_COUNT_REPRODUCED = 16

#: §III-A history: "The earliest paper ... is a tutorial written by
#: Bachelis, James, Maxim and Stout in 1990"; "gathered from the literature
#: over the last thirty years."
EARLIEST_PAPER_YEAR = 1990
LITERATURE_SPAN_YEARS = 29   # 1990..2019 inclusive span

#: §III-C: crosscutting topics explicitly reported uncovered.
UNCOVERED_CROSSCUTTING_TOPICS: tuple[str, ...] = (
    "K_WhyAndWhatPDC",
    "K_Locality",
    "K_CloudGridComputing",
    "K_PeerToPeer",
    "K_WebSearch",
)

#: §III-B/III-C: Architecture categories with no unplugged activities.
EMPTY_ARCHITECTURE_CATEGORIES: tuple[str, ...] = (
    "Floating-Point Representation",
    "Performance Metrics",
)

#: "recent research efforts attempt to ... assess their efficacy" -- the
#: corpus carries assessment summaries on at least this many activities.
ASSESSED_ACTIVITY_MINIMUM = 8
