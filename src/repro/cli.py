"""The ``pdcunplugged`` command-line interface.

Subcommands::

    pdcunplugged report [table1|table2|courses|accessibility|resources|categories|gaps|all]
    pdcunplugged build <output-dir> [--jobs N]   # render the static site
    pdcunplugged new <name> <content-dir>    # scaffold an activity (Fig. 1)
    pdcunplugged validate                    # validate the shipped corpus
    pdcunplugged simulate <activity> [-n N] [--seed S]
    pdcunplugged sweep <slug> [...] [--sizes 4,8,16] [--seeds 0,1]
                      [--param name=v1,v2] [--sweep-workers N]
                      [--cache-dir D] [--format table|json]
                                             # batch parameter sweep + compare
    pdcunplugged list                        # list corpus activities + sims
    pdcunplugged serve [--port P] [--workers N] [--cache-dir D]
                       [--worker-model thread|process]
                       [--request-timeout-ms B] [--fault-spec SPEC]
                       [--sweep-workers N] [--sweep-max-jobs J]
                                             # live site + JSON API server
    pdcunplugged lint [--format text|json|sarif] [--jobs N] [--fix]
                      [--cache-dir D] [--baseline F]
                                             # static analysis (repro.lint)
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdcunplugged",
        description="PDCunplugged reproduction: corpus, coverage analytics, "
                    "site builder, and classroom simulations.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="print a reproduced table or statistic")
    report.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=["table1", "table2", "courses", "accessibility",
                 "resources", "categories", "gaps", "all"],
    )

    build = sub.add_parser("build", help="render the static site")
    build.add_argument("output", help="output directory")
    build.add_argument("--strategy", choices=["indexed", "scan"], default="indexed")
    build.add_argument("--jobs", type=int, default=1,
                       help="render independent pages on N threads")

    new = sub.add_parser("new", help="scaffold a new activity from the template")
    new.add_argument("name")
    new.add_argument("content_dir")
    new.add_argument("--title", default=None)

    sub.add_parser("validate", help="validate the shipped corpus")
    sub.add_parser("verify", help="verify the corpus reproduces the paper's numbers")
    sub.add_parser("list", help="list corpus activities and their simulations")

    search = sub.add_parser("search", help="full-text search over the curation")
    search.add_argument("query", nargs="+")
    search.add_argument("--limit", type=int, default=10)

    sub.add_parser("trends", help="historical trends over the curation")

    simulate = sub.add_parser("simulate", help="run an activity simulation")
    simulate.add_argument("activity", help="activity slug (see `list`)")
    simulate.add_argument("-n", "--students", type=int, default=16)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--gantt", action="store_true",
                          help="render the trace as a text Gantt chart")

    sweep = sub.add_parser(
        "sweep", help="run a batch parameter sweep and compare the results")
    sweep.add_argument("slugs", nargs="+", metavar="slug",
                       help="simulation slug(s) to sweep (see `list`)")
    sweep.add_argument("--sizes", default=None, metavar="N,N,...",
                       help="comma-separated classroom sizes (default: 16)")
    sweep.add_argument("--seeds", default=None, metavar="S,S,...",
                       help="comma-separated RNG seeds (default: 0)")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="NAME=V1,V2,...",
                       help="sweep a classroom parameter over these values "
                            "(repeatable; e.g. step_time_jitter=0.0,0.2)")
    sweep.add_argument("--sweep-workers", type=int, default=1,
                       help="execute points on N worker processes")
    sweep.add_argument("--cache-dir", default=None,
                       help="persist point results here (identical points "
                            "are never re-executed across runs)")
    sweep.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="stop the sweep after this budget; remaining "
                            "points are skipped and reported")
    sweep.add_argument("--format", choices=["table", "json"], default="table",
                       help="output format")

    serve = sub.add_parser(
        "serve", help="serve the live site and JSON API (repro.serve)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--content-dir", default=None,
                       help="content directory (default: the packaged corpus)")
    serve.add_argument("--workers", type=int, default=1,
                       help="service connections on a pool of N threads "
                            "(thread model) or N forked worker processes "
                            "(process model)")
    serve.add_argument("--worker-model", choices=["thread", "process"],
                       default="thread",
                       help="'thread' (default) shares one process; "
                            "'process' pre-forks --workers processes that "
                            "accept on a shared socket — multi-core "
                            "rendering, crash isolation, per-process caches")
    serve.add_argument("--threads-per-worker", type=int, default=2,
                       help="threads inside each forked worker "
                            "(process model only)")
    serve.add_argument("--cache-size", type=int, default=512,
                       help="page-cache capacity in entries")
    serve.add_argument("--cache-shards", type=int, default=8,
                       help="lock-striping shard count for the page cache")
    serve.add_argument("--cache-dir", default=None,
                       help="persist the page cache here for warm restarts")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the page cache (for benchmarking)")
    serve.add_argument("--watch-interval", type=float, default=1.0,
                       help="seconds between content-change checks (incremental rebuild)")
    serve.add_argument("--no-watch", action="store_true",
                       help="never rescan the content directory")
    serve.add_argument("--rebuild-mode", choices=["inline", "background"],
                       default="background",
                       help="rebuild on the request path (inline) or in a "
                            "dedicated thread behind a circuit breaker "
                            "(background, the default)")
    serve.add_argument("--debounce", type=float, default=0.05,
                       metavar="SECONDS",
                       help="coalesce background rebuild pokes within this window")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive rebuild failures before the circuit "
                            "breaker opens and the server pins the last good "
                            "generation")
    serve.add_argument("--breaker-reset-s", type=float, default=1.0,
                       help="initial open-state timeout before a half-open "
                            "rebuild probe (doubles per repeated failure)")
    serve.add_argument("--request-timeout-ms", type=int, default=None,
                       help="per-request render budget; over-budget requests "
                            "get 503 + Retry-After instead of piling up")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="shed requests with 503 once this many are being "
                            "serviced at once")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="bound the worker-pool accept queue; excess "
                            "connections get a raw 503 + Retry-After")
    serve.add_argument("--fault-spec", default=None, metavar="SPEC",
                       help="inject faults for chaos testing, e.g. "
                            "'rebuild:error@0.3,cache-read:latency@0.05:ms=50'")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault plan's RNG (deterministic runs)")
    serve.add_argument("--sweep-workers", type=int, default=1,
                       help="worker processes for /api/sweeps batch jobs")
    serve.add_argument("--sweep-max-jobs", type=int, default=4,
                       help="concurrent sweep jobs before submissions are "
                            "shed with 429 + Retry-After")
    serve.add_argument("--tenants", default=None, metavar="FILE",
                       help="enable the multi-tenant admission edge: path to "
                            "a tenants JSON file (tiers, window, API keys), "
                            "or the literal 'default' for the built-in "
                            "free/standard/unlimited tiers; over-quota keys "
                            "get 429 + Retry-After before any render")
    serve.add_argument("--sanitize", action="store_true",
                       help="serve under the runtime concurrency sanitizer: "
                            "every registered lock is instrumented and "
                            "/api/metrics grows a 'sanitizer' section "
                            "(races, stalls, per-site hold/wait histograms)")
    serve.add_argument("--sanitize-budget-ms", type=float, default=250.0,
                       help="lock-stall watchdog budget with --sanitize "
                            "(default 250)")

    lint = sub.add_parser(
        "lint", help="static analysis over corpus, site, and serve code")
    lint.add_argument("--content-dir", default=None,
                      help="content directory (default: the packaged corpus)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", help="report format")
    lint.add_argument("--jobs", type=int, default=1,
                      help="analyze files on N threads")
    lint.add_argument("--fail-on", choices=["info", "warning", "error"],
                      default="error",
                      help="exit 1 when a finding at or above this severity "
                           "exists (default: error)")
    lint.add_argument("--severity", action="append", default=[],
                      metavar="RULE=LEVEL",
                      help="override one rule's severity (repeatable)")
    lint.add_argument("--disable", action="append", default=[],
                      metavar="RULE", help="disable one rule (repeatable)")
    lint.add_argument("--select", action="append", default=[],
                      metavar="RULES",
                      help="report only these rule ids (repeatable, "
                           "comma-separable); report-time filtering that "
                           "composes with the cache")
    lint.add_argument("--ignore", action="append", default=[],
                      metavar="RULES",
                      help="drop these rule ids from the report "
                           "(repeatable, comma-separable alias of --disable)")
    lint.add_argument("--no-site", action="store_true",
                      help="skip the site pass (templates, archetype, terms)")
    lint.add_argument("--no-code", action="store_true",
                      help="skip the code pass over repro.serve")
    lint.add_argument("--stats", action="store_true",
                      help="append analyzed/cached file counts to the report")
    lint.add_argument("--output", default=None,
                      help="write the report here instead of stdout")
    lint.add_argument("--fix", action="store_true",
                      help="apply machine-applicable fixes to the corpus, "
                           "then report what remains")
    lint.add_argument("--check", action="store_true",
                      help="with --fix: dry run — print the diff of pending "
                           "fixes and exit 1 if any (corpus is not touched)")
    lint.add_argument("--cache-dir", default=None,
                      help="persist the lint cache here so warm runs "
                           "re-analyze only changed files across processes")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline file (.lintbaseline.json): matching "
                           "findings are filtered from the report")
    lint.add_argument("--write-baseline", action="store_true",
                      help="regenerate --baseline from the current findings "
                           "and exit 0")
    lint.add_argument("--changed", default=None, metavar="GIT_REF",
                      help="analyze only files changed vs GIT_REF (plus "
                           "their cross-class dependents); unchanged files "
                           "come from cache or are skipped")

    san = sub.add_parser(
        "sanitize",
        help="run a target under the runtime concurrency sanitizer "
             "(lockset race detection + lock-stall watchdog)")
    san.add_argument("target",
                     help="what to run instrumented: 'module:callable' "
                          "(imported and called with no arguments), a "
                          "test file/directory path (run under pytest), "
                          "or a bare module (imported; its main() is "
                          "called when present)")
    san.add_argument("--budget-ms", type=float, default=250.0,
                     help="lock-stall watchdog budget (default 250)")
    san.add_argument("--format", choices=["text", "json", "sarif"],
                     default="text", help="report format")
    san.add_argument("--output", default=None,
                     help="write the report here instead of stdout")
    san.add_argument("--fail-on", choices=["info", "warning", "error"],
                     default="warning",
                     help="exit 1 when a finding at or above this severity "
                          "exists (default: warning — races and stalls)")
    san.add_argument("--severity", action="append", default=[],
                     metavar="RULE=LEVEL",
                     help="override one rule's severity (repeatable)")
    san.add_argument("--disable", action="append", default=[],
                     metavar="RULE", help="disable one rule (repeatable)")
    san.add_argument("--select", action="append", default=[],
                     metavar="RULES",
                     help="report only these rule ids (repeatable, "
                          "comma-separable)")
    san.add_argument("--baseline", default=None, metavar="FILE",
                     help="baseline file: matching findings are filtered")
    san.add_argument("--write-baseline", action="store_true",
                     help="regenerate --baseline from the current findings "
                          "and exit 0")
    san.add_argument("--no-crossref", action="store_true",
                     help="skip cross-referencing static serve-lock-order/"
                          "serve-blocking-io-under-lock findings as "
                          "confirmed/unobserved")
    san.add_argument("--counters", action="store_true",
                     help="append the sanitizer counter snapshot (JSON) "
                          "to the report")
    return parser


def _split_rule_args(values: list[str]) -> frozenset[str]:
    """``--select a,b --select c`` -> {'a', 'b', 'c'}."""
    return frozenset(
        rule_id.strip()
        for chunk in values
        for rule_id in chunk.split(",") if rule_id.strip())


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.activities import load_default_catalog

    if args.command == "report":
        from repro import analytics

        catalog = load_default_catalog()
        sections = {
            "table1": ("TABLE I: CS2013 coverage", analytics.render_table1),
            "table2": ("TABLE II: TCPP coverage", analytics.render_table2),
            "courses": ("Course distribution (Sec. III-A)", analytics.render_course_counts),
            "accessibility": ("Accessibility (Sec. III-D)", analytics.render_accessibility),
            "resources": ("External resources (Sec. III-A)", analytics.render_resources),
            "categories": ("TCPP category drill-down (Sec. III-C)",
                           analytics.render_category_table),
        }
        if args.which == "gaps":
            _print_gaps(catalog)
            return 0
        chosen = sections if args.which == "all" else {args.which: sections[args.which]}
        first = True
        for _key, (title, renderer) in chosen.items():
            if not first:
                print()
            first = False
            print(title)
            print("=" * len(title))
            print(renderer(catalog))
        if args.which == "all":
            print()
            _print_gaps(catalog)
        return 0

    if args.command == "build":
        from repro.sitegen.site import SiteConfig

        catalog = load_default_catalog()
        site = catalog.site(SiteConfig(strategy=args.strategy))
        stats = site.build(args.output, jobs=args.jobs)
        print(f"rendered {stats.total_files} files to {stats.output_dir} "
              f"in {stats.duration_s * 1000:.1f} ms "
              f"({stats.jobs} job{'s' if stats.jobs != 1 else ''})")
        return 0

    if args.command == "new":
        from repro.sitegen.archetypes import new_activity

        path = new_activity(args.name, args.content_dir, title=args.title)
        print(f"created {path}")
        return 0

    if args.command == "validate":
        catalog = load_default_catalog(validate_corpus=False)
        catalog.validate_all()
        index = catalog.taxonomy_index()
        index.check_invariants()
        print(f"{len(catalog)} activities valid; taxonomy index consistent.")
        return 0

    if args.command == "verify":
        from repro.analytics import compare_to_paper

        diffs = compare_to_paper(load_default_catalog())
        if diffs:
            print(f"{len(diffs)} difference(s) from the paper's numbers:")
            for diff in diffs:
                print("  -", diff)
            return 1
        print("all paper targets reproduced exactly.")
        return 0

    if args.command == "list":
        from repro.unplugged import SIMULATIONS

        catalog = load_default_catalog()
        for activity in catalog:
            sim = "simulation: yes" if activity.name in SIMULATIONS else "simulation: -"
            print(f"{activity.name:32} {activity.title:36} {sim}")
        return 0

    if args.command == "trends":
        from repro.analytics.trends import (
            assessment_trend,
            publication_histogram,
            resource_trend,
        )

        catalog = load_default_catalog()
        print("Activities by first-publication decade:")
        for decade, count in publication_histogram(catalog).items():
            print(f"  {decade}: {'#' * count} ({count})")
        for label, trend in (("Assessment", assessment_trend(catalog)),
                             ("External resources", resource_trend(catalog))):
            print(f"{label}: {trend.describe()}")
            p = trend.mannwhitney_p()
            if p is not None:
                print(f"  Mann-Whitney (more recent): p = {p:.4f}")
        return 0

    if args.command == "search":
        from repro.sitegen.search import SearchIndex

        index = SearchIndex.from_catalog(load_default_catalog())
        hits = index.search(" ".join(args.query), limit=args.limit)
        if not hits:
            print("no matches")
            return 1
        for hit in hits:
            print(f"{hit.score:7.4f}  {hit.name:32} {hit.title}  "
                  f"[{', '.join(hit.matched_terms)}]")
        return 0

    if args.command == "simulate":
        from repro.unplugged import SIMULATIONS, Classroom
        from repro.unplugged.sim.trace import render_gantt

        if args.activity not in SIMULATIONS:
            print(f"no simulation for {args.activity!r}; available:",
                  ", ".join(sorted(SIMULATIONS)), file=sys.stderr)
            return 2
        classroom = Classroom(size=args.students, seed=args.seed,
                              step_time_jitter=0.2)
        result = SIMULATIONS[args.activity](classroom)
        print(result.summary())
        if args.gantt and len(result.trace):
            print()
            print(render_gantt(result.trace))
        return 0 if result.all_checks_pass else 1

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "sanitize":
        return _run_sanitize(args)

    if args.command == "serve":
        from repro import serve as serve_mod

        return serve_mod.run(
            host=args.host,
            port=args.port,
            workers=args.workers,
            worker_model=args.worker_model,
            threads_per_worker=args.threads_per_worker,
            content_dir=args.content_dir,
            cache_size=args.cache_size,
            cache_shards=args.cache_shards,
            cache_dir=args.cache_dir,
            cache_enabled=not args.no_cache,
            watch_interval_s=args.watch_interval,
            watch=not args.no_watch,
            rebuild_mode=args.rebuild_mode,
            debounce_s=args.debounce,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset_s,
            request_timeout_ms=args.request_timeout_ms,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            fault_spec=args.fault_spec,
            fault_seed=args.fault_seed,
            sweep_workers=args.sweep_workers,
            sweep_max_jobs=args.sweep_max_jobs,
            tenants=args.tenants,
            sanitize_locks=args.sanitize,
            sanitize_budget_ms=args.sanitize_budget_ms,
        )

    raise AssertionError("unreachable")


def _run_sweep(args) -> int:
    """``pdcunplugged sweep``: exit 0 done, 1 failed/partial, 2 bad spec."""
    import json
    from pathlib import Path

    from repro.sweep import (ResultStore, SweepManager, SweepSpec,
                             SweepSpecError, compare)

    payload: dict = {"slugs": args.slugs}
    try:
        if args.sizes:
            payload["sizes"] = [int(v) for v in args.sizes.split(",") if v]
        if args.seeds:
            payload["seeds"] = [int(v) for v in args.seeds.split(",") if v]
    except ValueError:
        print("--sizes and --seeds expect comma-separated integers",
              file=sys.stderr)
        return 2
    params: dict = {}
    for spec_text in args.param:
        name, sep, values = spec_text.partition("=")
        if not sep or not name or not values:
            print(f"--param expects NAME=V1,V2,..., got {spec_text!r}",
                  file=sys.stderr)
            return 2
        try:
            params[name] = [float(v) for v in values.split(",") if v]
        except ValueError:
            print(f"--param {name}: values must be numbers", file=sys.stderr)
            return 2
    if params:
        payload["params"] = params
    if args.deadline is not None:
        payload["deadline_s"] = args.deadline

    try:
        spec = SweepSpec.parse(payload)
    except SweepSpecError as exc:
        print(f"invalid sweep spec: {exc}", file=sys.stderr)
        return 2

    store = (ResultStore(Path(args.cache_dir) / "sweeps")
             if args.cache_dir else None)
    manager = SweepManager(store=store, workers=args.sweep_workers)
    try:
        job = manager.submit(spec)
        job.wait()
        progress = job.progress()
        results = job.results()
    finally:
        manager.close()
    comparison = compare(results)

    if args.format == "json":
        json.dump({"job": progress, "results": results,
                   "compare": comparison},
                  sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(f"sweep {job.id}: {progress['status']} — "
              f"{progress['total']} point(s): {progress['executed']} "
              f"executed, {progress['cached']} cached, "
              f"{progress['failed']} failed, {progress['skipped']} skipped "
              f"in {progress['elapsed_s']:.2f}s")
        for group in comparison["groups"]:
            params_text = ", ".join(f"{k}={v}"
                                    for k, v in sorted(group["params"].items()))
            print(f"\n{group['slug']} ({params_text}) — "
                  f"{group['points']} point(s), "
                  f"{group['checks_passed']} checks passed")
            if not group["curve"]:
                print("  (no speedup metric for this simulation)")
                continue
            print(f"  {'n':>4} {'seeds':>5} {'speedup':>8} {'min':>8} "
                  f"{'max':>8} {'stddev':>8} {'efficiency':>10}")
            for row in group["curve"]:
                print(f"  {row['n']:>4} {row['seeds']:>5} "
                      f"{row['mean']:>8.3f} {row['min']:>8.3f} "
                      f"{row['max']:>8.3f} {row['stddev']:>8.3f} "
                      f"{row['efficiency']:>10.3f}")
    return 0 if (progress["status"] == "done"
                 and progress["failed"] == 0) else 1


def _git_changed_files(ref: str) -> frozenset | None:
    """Resolved paths changed vs ``ref`` (tracked diff + untracked files).

    Returns ``None`` — the caller exits 2 — when git is unavailable, the
    working directory is not a repository, or the ref does not resolve:
    a silently-empty changed set would report "clean" without looking.
    """
    import subprocess
    from pathlib import Path

    def run(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True,
        ).stdout

    try:
        top = Path(run("rev-parse", "--show-toplevel").strip())
        diff = run("diff", "--name-only", ref, "--")
        untracked = run("ls-files", "--others", "--exclude-standard")
    except (OSError, subprocess.CalledProcessError) as exc:
        stderr = getattr(exc, "stderr", "") or ""
        print(f"--changed {ref}: git failed: "
              f"{stderr.strip() or exc}", file=sys.stderr)
        return None
    names = [line for line in (diff + untracked).splitlines() if line]
    return frozenset(str((top / name).resolve()) for name in names)


def _run_lint(args) -> int:
    """``pdcunplugged lint``: exit 0 clean, 1 findings, 2 usage error."""
    from pathlib import Path

    from repro.activities.catalog import corpus_dir
    from repro.lint import (
        LintConfig,
        LintEngine,
        REPORTERS,
        Severity,
        check_fixes,
        fix_engine,
        render_check_report,
        write_baseline,
    )
    from repro.lint.baseline import BaselineError

    if args.check and not args.fix:
        print("--check requires --fix", file=sys.stderr)
        return 2
    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    overrides = _parse_severity_overrides(args.severity, Severity)
    if overrides is None:
        return 2
    changed_only: frozenset | None = None
    if args.changed is not None:
        changed_only = _git_changed_files(args.changed)
        if changed_only is None:
            return 2
    config = LintConfig(
        content_dir=Path(args.content_dir) if args.content_dir
        else corpus_dir(),
        jobs=args.jobs,
        site=not args.no_site,
        code=not args.no_code,
        severity_overrides=overrides,
        disabled=frozenset(args.disable) | _split_rule_args(args.ignore),
        selected=_split_rule_args(args.select) or None,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        baseline=(Path(args.baseline)
                  if args.baseline and not args.write_baseline else None),
        changed_only=changed_only,
    )
    try:
        engine = LintEngine(config)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    try:
        if args.fix and args.check:
            check = check_fixes(config)
            sys.stdout.write(render_check_report(check))
            return 0 if check.clean else 1
        if args.fix:
            fix_report = fix_engine(engine)
            renames = "".join(f"renamed {old} -> {new}\n"
                              for old, new in fix_report.renamed)
            sys.stdout.write(
                renames
                + f"applied {fix_report.applied} fix(es) in "
                  f"{len(fix_report.changed_files)} file(s)\n")
            result = fix_report.remaining
        else:
            result = engine.lint()
    except BaselineError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.write_baseline:
        target = write_baseline(args.baseline, result.diagnostics)
        print(f"baseline written: {target} "
              f"({len(result.diagnostics)} finding(s))")
        return 0
    report = REPORTERS[args.format](result, stats=args.stats)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)
    return result.exit_code(Severity.parse(args.fail_on))


def _parse_severity_overrides(specs, severity_cls):
    """Parse repeated ``RULE=LEVEL`` args; ``None`` on a usage error."""
    overrides = {}
    for spec in specs:
        rule_id, sep, level = spec.partition("=")
        if not sep or not rule_id or not level:
            print(f"--severity expects RULE=LEVEL, got {spec!r}",
                  file=sys.stderr)
            return None
        try:
            overrides[rule_id] = severity_cls.parse(level)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return None
    return overrides


def _run_sanitize(args) -> int:
    """``pdcunplugged sanitize``: exit 0 clean, 1 findings, 2 usage error."""
    import importlib
    import json
    from pathlib import Path

    from repro import sanitize as sanitize_mod
    from repro.lint import REPORTERS, Severity, write_baseline
    from repro.lint.baseline import BaselineError
    from repro.sanitize.crossref import crossref
    from repro.sanitize.report import finalize

    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    overrides = _parse_severity_overrides(args.severity, Severity)
    if overrides is None:
        return 2

    try:
        san = sanitize_mod.activate(hold_budget_ms=args.budget_ms)
    except RuntimeError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        module_name, sep, attr = args.target.partition(":")
        if not sep and (args.target.endswith(".py")
                        or Path(args.target).is_dir()):
            import pytest

            pytest.main(["-q", "-p", "no:cacheprovider", args.target])
        else:
            module = importlib.import_module(module_name)
            if sep:
                fn = module
                for part in attr.split("."):
                    fn = getattr(fn, part)
                fn()
            elif hasattr(module, "main"):
                module.main()
    except SystemExit:
        pass                              # target managed its own exit
    except Exception as exc:
        sanitize_mod.deactivate()
        print(f"sanitize target {args.target!r} failed: {exc}",
              file=sys.stderr)
        return 2
    finally:
        if sanitize_mod.current() is san:
            sanitize_mod.deactivate()

    diagnostics = san.diagnostics()
    if not args.no_crossref:
        diagnostics.extend(crossref(san))
    try:
        result = finalize(
            diagnostics,
            severity_overrides=overrides,
            disabled=frozenset(args.disable),
            selected=_split_rule_args(args.select) or None,
            baseline=(Path(args.baseline)
                      if args.baseline and not args.write_baseline
                      else None))
    except (ValueError, BaselineError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.write_baseline:
        target = write_baseline(args.baseline, result.diagnostics)
        print(f"baseline written: {target} "
              f"({len(result.diagnostics)} finding(s))")
        return 0
    report = REPORTERS[args.format](result)
    if args.counters:
        report += json.dumps({"sanitizer": san.counters()}, indent=2,
                             sort_keys=True) + "\n"
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)
    return result.exit_code(Severity.parse(args.fail_on))


def _print_gaps(catalog) -> None:
    from repro.analytics import gap_report
    from repro.standards import cs2013, tcpp

    report = gap_report(catalog)
    title = "Gap analysis (Sec. III-B/C/E)"
    print(title)
    print("=" * len(title))
    print(f"uncovered CS2013 outcomes: {report.total_uncovered_outcomes}")
    for term, missing in report.cs2013_gaps.items():
        print(f"  {cs2013.knowledge_unit(term).name}: {', '.join(missing)}")
    print(f"uncovered TCPP topics: {report.total_uncovered_topics}")
    for term, missing in report.tcpp_gaps.items():
        print(f"  {tcpp.topic_area(term).name}: {', '.join(missing)}")
    print("empty categories:", "; ".join(report.empty_categories) or "none")
    print("units below CS2013 tier targets:",
          ", ".join(report.units_below_tier_targets) or "none")
    print("sparse senses:", report.sparse_senses)
    print(f"activities without assessment: "
          f"{len(report.activities_without_assessment)}/{len(catalog)}")


if __name__ == "__main__":
    raise SystemExit(main())
