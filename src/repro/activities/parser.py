"""Parse activity Markdown files into :class:`~repro.activities.schema.Activity`.

The on-disk format is the paper's Fig. 1 template filled in: a front-matter
header with taxonomy tags (Fig. 2), then ``##``-headed sections separated
by horizontal rules.  Parsing walks the Markdown AST rather than the raw
text, so formatting inside sections (links, emphasis, lists) is preserved
verbatim while section boundaries are recognized structurally.
"""

from __future__ import annotations

from pathlib import Path

from repro.activities.schema import Activity
from repro.errors import ActivityError
from repro.sitegen import frontmatter

__all__ = ["parse_activity", "parse_activity_file", "split_sections",
           "split_sections_with_spans"]

_LIST_KEYS = ("cs2013", "tcpp", "courses", "senses",
              "cs2013details", "tcppdetails", "medium")


def split_sections(body: str) -> dict[str, str]:
    """Split an activity body into its named sections.

    Sections are introduced by ``## Heading`` lines; the horizontal rules
    between them are separators, not content.  Text inside a section is
    returned with surrounding blank lines trimmed but internal formatting
    untouched.
    """
    return split_sections_with_spans(body)[0]


def split_sections_with_spans(
    body: str, line_offset: int = 0
) -> tuple[dict[str, str], dict[str, int]]:
    """:func:`split_sections` plus the source line of each ``##`` heading.

    ``line_offset`` is added to every reported line (heading spans and
    :class:`~repro.errors.ActivityError` positions) so a body extracted
    from below a front-matter header yields document-absolute lines.
    """
    sections: dict[str, str] = {}
    spans: dict[str, int] = {}
    current: str | None = None
    buffer: list[str] = []

    def flush() -> None:
        nonlocal buffer
        if current is not None:
            text = "\n".join(buffer).strip("\n")
            # Drop trailing separator rules that belong between sections.
            lines = [ln for ln in text.split("\n")]
            while lines and lines[-1].strip() in ("---", "***", "___"):
                lines.pop()
            sections[current] = "\n".join(lines).strip("\n")
        buffer = []

    for lineno, line in enumerate(body.split("\n"), start=1 + line_offset):
        stripped = line.strip()
        if stripped.startswith("## ") and not stripped.startswith("###"):
            flush()
            heading = stripped[3:].strip()
            if heading in sections:
                raise ActivityError(
                    f"line {lineno}: duplicate section {heading!r}"
                )
            current = heading
            spans[heading] = lineno
            continue
        if current is None:
            if stripped and stripped not in ("---", "***", "___"):
                raise ActivityError(
                    f"line {lineno}: content before first section heading: "
                    f"{stripped!r}"
                )
            continue
        buffer.append(line)
    flush()
    return sections, spans


def _as_list(value: object) -> list[str]:
    if value is None:
        return []
    if isinstance(value, str):
        return [value] if value else []
    if isinstance(value, (list, tuple)):
        return [str(v) for v in value]
    raise ActivityError(f"expected a list of terms, got {type(value).__name__}")


def parse_activity(name: str, text: str) -> Activity:
    """Parse one activity document (front matter + body) by slug name.

    The returned activity carries document-absolute source spans (see
    :attr:`~repro.activities.schema.Activity.spans`): one
    :class:`~repro.sitegen.frontmatter.KeySpan` per front-matter key, plus
    a ``"section:<name>"`` entry holding the line of each ``##`` heading.
    """
    block, body, block_offset, body_offset = (
        frontmatter.split_document_with_lines(text)
    )
    if block is None:
        raise ActivityError(f"{name}: activity file has no front matter")
    params, key_spans = frontmatter.parse_with_spans(
        block, line_offset=block_offset
    )
    title = str(params.get("title", "")).strip()
    if not title:
        raise ActivityError(f"{name}: activity has no title")
    sections, heading_lines = split_sections_with_spans(
        body, line_offset=body_offset
    )
    spans: dict[str, object] = dict(key_spans)
    for heading, lineno in heading_lines.items():
        spans[f"section:{heading}"] = lineno
    activity = Activity(
        name=name,
        title=title,
        date=str(params.get("date", "")),
        sections=sections,
        spans=spans,
        **{key: _as_list(params.get(key)) for key in _LIST_KEYS},
    )
    return activity


def parse_activity_file(path: str | Path) -> Activity:
    """Parse an activity from a ``.md`` file; the slug is the file stem."""
    path = Path(path)
    return parse_activity(path.stem, path.read_text(encoding="utf-8"))
