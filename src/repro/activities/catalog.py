"""The activity catalog: loading, querying, and indexing the curated corpus.

:class:`Catalog` wraps a list of activities with the query operations the
website's views and the paper's analysis need: filter by taxonomy term,
intersect terms, group by term, and adapt into the sitegen
:class:`~repro.sitegen.taxonomy.TaxonomyIndex` / :class:`~repro.sitegen.site.Site`.

:func:`load_default_catalog` loads the 38-activity curated corpus shipped
as package data under ``repro/activities/content/``.  The load is memoized
on a cheap corpus fingerprint (per-file mtime/size), so the CLI, the
site views, the analytics, and the serving layer all share one parsed
corpus instead of re-parsing 38 Markdown files per construction; edits to
the content directory invalidate the cache automatically.
"""

from __future__ import annotations

import threading
from importlib import resources
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.activities.parser import parse_activity, parse_activity_file
from repro.activities.schema import Activity, validate
from repro.errors import ActivityError, ValidationError
from repro.sitegen.site import Page, Site, SiteConfig
from repro.sitegen.taxonomy import TaxonomyIndex

__all__ = ["Catalog", "load_default_catalog", "corpus_dir", "clear_corpus_cache"]


class Catalog:
    """An ordered, queryable collection of activities."""

    def __init__(self, activities: Iterable[Activity] = ()):
        self._activities: list[Activity] = []
        self._by_name: dict[str, Activity] = {}
        for activity in activities:
            self.add(activity)

    # -- construction --------------------------------------------------------

    def add(self, activity: Activity) -> None:
        if activity.name in self._by_name:
            raise ActivityError(f"duplicate activity {activity.name!r}")
        self._activities.append(activity)
        self._by_name[activity.name] = activity

    @classmethod
    def from_directory(cls, directory: str | Path) -> "Catalog":
        directory = Path(directory)
        if not directory.is_dir():
            raise ActivityError(f"no such content directory: {directory}")
        catalog = cls()
        for path in sorted(directory.glob("*.md")):
            catalog.add(parse_activity_file(path))
        return catalog

    @classmethod
    def from_texts(cls, texts: dict[str, str]) -> "Catalog":
        catalog = cls()
        for name in sorted(texts):
            catalog.add(parse_activity(name, texts[name]))
        return catalog

    # -- basic access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._activities)

    def __iter__(self) -> Iterator[Activity]:
        return iter(self._activities)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def activities(self) -> list[Activity]:
        return list(self._activities)

    @property
    def names(self) -> list[str]:
        return [a.name for a in self._activities]

    def get(self, name: str) -> Activity:
        try:
            return self._by_name[name]
        except KeyError:
            raise ActivityError(f"no activity named {name!r}") from None

    # -- queries -----------------------------------------------------------------

    def with_term(self, taxonomy: str, term: str) -> list[Activity]:
        """Activities declaring ``term`` under ``taxonomy``."""
        return [a for a in self._activities if term in a.terms(taxonomy)]

    def with_all_terms(self, taxonomy: str, terms: Iterable[str]) -> list[Activity]:
        wanted = list(terms)
        return [
            a for a in self._activities
            if all(t in a.terms(taxonomy) for t in wanted)
        ]

    def where(self, predicate: Callable[[Activity], bool]) -> list[Activity]:
        return [a for a in self._activities if predicate(a)]

    def group_by_term(self, taxonomy: str) -> dict[str, list[Activity]]:
        groups: dict[str, list[Activity]] = {}
        for activity in self._activities:
            for term in activity.terms(taxonomy):
                groups.setdefault(term, []).append(activity)
        return groups

    def term_count(self, taxonomy: str, term: str) -> int:
        return len(self.with_term(taxonomy, term))

    # -- validation and adapters -------------------------------------------------

    def validate_all(self) -> None:
        """Validate every activity; aggregates all problems into one error."""
        problems: list[str] = []
        for activity in self._activities:
            try:
                validate(activity)
            except ValidationError as exc:
                problems.extend(exc.problems)
        if problems:
            raise ValidationError(problems)

    def taxonomy_index(self, strategy: str = "indexed") -> TaxonomyIndex:
        """Build the sitegen taxonomy index over all activities."""
        from repro.sitegen.taxonomy import DEFAULT_TAXONOMIES

        index = TaxonomyIndex(DEFAULT_TAXONOMIES, strategy=strategy)
        for activity in self._activities:
            index.add_page(_ActivityPage(activity))
        return index

    def site(self, config: SiteConfig | None = None) -> Site:
        """Build a renderable :class:`Site` whose pages are the activities."""
        from repro.activities.writer import write_activity

        site = Site(config)
        for activity in self._activities:
            text = write_activity(activity)
            site.add_page(Page.from_text(activity.name, text))
        return site


class _ActivityPage:
    """Adapter presenting an Activity through the PageLike protocol."""

    __slots__ = ("activity",)

    def __init__(self, activity: Activity):
        self.activity = activity

    @property
    def name(self) -> str:
        return self.activity.name

    @property
    def title(self) -> str:
        return self.activity.title

    @property
    def url(self) -> str:
        return f"/activities/{self.activity.name}/"

    @property
    def params(self) -> dict[str, object]:
        return self.activity.params


def corpus_dir() -> Path:
    """Path of the packaged curated corpus directory."""
    return Path(resources.files("repro.activities") / "content")


# -- memoized default-corpus loading ----------------------------------------

_cache_lock = threading.Lock()
_cached_catalog: Catalog | None = None
_cached_fingerprint: tuple | None = None
_cached_validated: bool = False


def _corpus_fingerprint(directory: Path) -> tuple:
    """Cheap change detector: (name, mtime_ns, size) per corpus file."""
    return tuple(
        (path.name, path.stat().st_mtime_ns, path.stat().st_size)
        for path in sorted(directory.glob("*.md"))
    )


def clear_corpus_cache() -> None:
    """Drop the memoized default catalog (tests and tooling)."""
    global _cached_catalog, _cached_fingerprint, _cached_validated
    with _cache_lock:
        _cached_catalog = None
        _cached_fingerprint = None
        _cached_validated = False


def load_default_catalog(validate_corpus: bool = True,
                         use_cache: bool = True) -> Catalog:
    """Load (and by default validate) the shipped 38-activity corpus.

    Memoized: repeat calls return the *same* :class:`Catalog` instance as
    long as the packaged content directory is unchanged (per-file
    mtime/size fingerprint).  Callers must treat the shared catalog as
    read-only; pass ``use_cache=False`` for a private mutable copy.
    Validation runs at most once per cached parse.
    """
    global _cached_catalog, _cached_fingerprint, _cached_validated
    if not use_cache:
        catalog = Catalog.from_directory(corpus_dir())
        if validate_corpus:
            catalog.validate_all()
        return catalog

    directory = corpus_dir()
    fingerprint = _corpus_fingerprint(directory)
    with _cache_lock:
        if _cached_catalog is None or _cached_fingerprint != fingerprint:
            _cached_catalog = Catalog.from_directory(directory)
            _cached_fingerprint = fingerprint
            _cached_validated = False
        if validate_corpus and not _cached_validated:
            _cached_catalog.validate_all()
            _cached_validated = True
        return _cached_catalog
