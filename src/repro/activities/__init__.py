"""``repro.activities``: the curated unplugged-activity corpus.

* :mod:`repro.activities.schema` -- the :class:`Activity` model, section
  structure, vocabularies, and validation.
* :mod:`repro.activities.parser` / :mod:`repro.activities.writer` --
  Markdown round-trip.
* :mod:`repro.activities.catalog` -- loading and querying the corpus.

The corpus itself lives in ``repro/activities/content/*.md``: 38 activities
re-curated from the literature the paper cites, calibrated so every
aggregate statistic the paper reports is reproduced (see DESIGN.md).
"""

from repro.activities.catalog import (
    Catalog,
    clear_corpus_cache,
    corpus_dir,
    load_default_catalog,
)
from repro.activities.parser import parse_activity, parse_activity_file, split_sections
from repro.activities.schema import (
    MEDIUMS,
    NO_RESOURCE_NOTE,
    SECTION_ORDER,
    SENSES,
    Activity,
    validate,
)
from repro.activities.writer import write_activity, write_activity_file

__all__ = [
    "Activity",
    "Catalog",
    "MEDIUMS",
    "NO_RESOURCE_NOTE",
    "SECTION_ORDER",
    "SENSES",
    "clear_corpus_cache",
    "corpus_dir",
    "load_default_catalog",
    "parse_activity",
    "parse_activity_file",
    "split_sections",
    "validate",
    "write_activity",
    "write_activity_file",
]
