"""The PDCunplugged activity model and its validation rules.

An *activity* (paper §II-A) is "a variety of interventions, including
kinesthetic learning activities, role-playing, and even analogies",
stored as one Markdown file: a front-matter header carrying the title,
date, and taxonomy tags, then seven body sections separated by horizontal
rules -- with an optional "Details" section inserted after the author
section when no public-facing external resource exists.

:class:`Activity` is the parsed, in-memory form.  :func:`validate`
enforces the structural rules the site curator applies to contributions:

* section order and presence per Fig. 1 (Details optional),
* every ``cs2013`` term names a real knowledge unit, every
  ``cs2013details`` term a real learning outcome *of a tagged unit*,
* every ``tcpp`` term names a real topic area, every ``tcppdetails`` term
  a real topic *of a tagged area*,
* courses, senses, and mediums come from the known vocabularies,
* an activity without an external resource must carry a Details section
  (paper: "No external resources found. See details below").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StandardsError, ValidationError
from repro.standards import courses as courses_mod
from repro.standards import cs2013, tcpp

__all__ = [
    "Activity",
    "SECTION_ORDER",
    "SENSES",
    "MEDIUMS",
    "NO_RESOURCE_NOTE",
    "validate",
]

#: Canonical section order (paper Fig. 1); "Details" slots in at index 1.
SECTION_ORDER: tuple[str, ...] = (
    "Original Author/link",
    "Details",
    "CS2013 Knowledge Unit Coverage",
    "TCPP Topics Coverage",
    "Recommended Courses",
    "Accessibility",
    "Assessment",
    "Citations",
)

#: The senses vocabulary (§II-B.d): sensory channels plus the judgment
#: term ``accessible`` for activities presentable to diverse audiences
#: with minimal modification.
SENSES: frozenset[str] = frozenset(
    {"visual", "touch", "movement", "sound", "accessible"}
)

#: The medium vocabulary (§II-B.e and §III-D): communication form
#: (analogy / role-play / game) and physical materials.
MEDIUMS: frozenset[str] = frozenset(
    {
        "analogy",
        "roleplay",
        "game",
        "paper",
        "board",
        "cards",
        "pens",
        "coins",
        "food",
        "music",
        "string",
        "props",
    }
)

#: The exact note the paper prescribes for activities without a
#: public-facing resource.
NO_RESOURCE_NOTE = "No external resources found. See details below."


@dataclass
class Activity:
    """One curated unplugged activity."""

    name: str                               # file slug, e.g. "findsmallestcard"
    title: str
    date: str = ""
    cs2013: list[str] = field(default_factory=list)
    tcpp: list[str] = field(default_factory=list)
    courses: list[str] = field(default_factory=list)
    senses: list[str] = field(default_factory=list)
    cs2013details: list[str] = field(default_factory=list)
    tcppdetails: list[str] = field(default_factory=list)
    medium: list[str] = field(default_factory=list)
    sections: dict[str, str] = field(default_factory=dict)
    #: Source spans: front-matter ``KeySpan`` per key plus the line of each
    #: ``##`` section heading (``"section:<name>"`` keys).  Excluded from
    #: equality so parse/write round-trips compare on content alone.
    spans: dict[str, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    # -- derived properties --------------------------------------------------

    @property
    def params(self) -> dict[str, object]:
        """Front-matter view of this activity (taxonomy engine interface)."""
        out: dict[str, object] = {"title": self.title}
        if self.date:
            out["date"] = self.date
        for key in ("cs2013", "tcpp", "courses", "senses",
                    "cs2013details", "tcppdetails", "medium"):
            values = getattr(self, key)
            if values:
                out[key] = list(values)
        return out

    @property
    def author_section(self) -> str:
        return self.sections.get("Original Author/link", "")

    @property
    def has_external_resource(self) -> bool:
        """True when the author section links to an external resource.

        Mirrors the curation convention: activities lacking a live external
        resource carry the :data:`NO_RESOURCE_NOTE` and an inline Details
        section instead of a link.
        """
        section = self.author_section
        return "http://" in section or "https://" in section

    @property
    def has_details(self) -> bool:
        return bool(self.sections.get("Details", "").strip())

    @property
    def has_assessment(self) -> bool:
        """True when the Assessment section reports any known assessment."""
        text = self.sections.get("Assessment", "").strip()
        if not text:
            return False
        lowered = text.lower()
        return not (lowered.startswith("no known assessment") or lowered.startswith("none"))

    @property
    def citations(self) -> list[str]:
        """Individual citation entries from the Citations section."""
        text = self.sections.get("Citations", "")
        entries: list[str] = []
        for line in text.split("\n"):
            stripped = line.strip()
            if stripped.startswith(("- ", "* ")):
                entries.append(stripped[2:].strip())
            elif stripped and stripped[0].isdigit() and ". " in stripped[:5]:
                entries.append(stripped.split(". ", 1)[1].strip())
        return entries

    def terms(self, taxonomy: str) -> list[str]:
        """All terms this activity declares for one taxonomy."""
        if taxonomy not in (
            "cs2013", "tcpp", "courses", "senses",
            "cs2013details", "tcppdetails", "medium",
        ):
            raise StandardsError(f"unknown taxonomy {taxonomy!r}")
        return list(getattr(self, taxonomy))


def validate(activity: Activity) -> None:
    """Validate one activity; raises :class:`ValidationError` listing all problems."""
    problems: list[str] = []

    if not activity.name:
        problems.append("missing name")
    if not activity.title:
        problems.append("missing title")

    # Section structure -----------------------------------------------------
    known = set(SECTION_ORDER)
    order = [s for s in activity.sections if s in known]
    expected = [s for s in SECTION_ORDER if s in activity.sections]
    if order != expected:
        problems.append(
            f"sections out of order: {order} (expected {expected})"
        )
    for section in activity.sections:
        if section not in known:
            problems.append(f"unknown section {section!r}")
    for required in ("Original Author/link", "CS2013 Knowledge Unit Coverage",
                     "TCPP Topics Coverage", "Recommended Courses",
                     "Accessibility", "Assessment", "Citations"):
        if required not in activity.sections:
            problems.append(f"missing section {required!r}")

    if not activity.has_external_resource and not activity.has_details:
        problems.append(
            "activity has no external resource link and no Details section"
        )

    # CS2013 tags ------------------------------------------------------------
    tagged_units = []
    for term in activity.cs2013:
        try:
            tagged_units.append(cs2013.knowledge_unit(term))
        except StandardsError:
            problems.append(f"unknown cs2013 term {term!r}")
    tagged_abbrevs = {ku.abbrev for ku in tagged_units}
    for term in activity.cs2013details:
        try:
            ku, _ = cs2013.outcome_for_detail_term(term)
        except StandardsError:
            problems.append(f"unknown cs2013details term {term!r}")
            continue
        if ku.abbrev not in tagged_abbrevs:
            problems.append(
                f"cs2013details term {term!r} belongs to {ku.term}, "
                f"which is not in the activity's cs2013 tags"
            )

    # TCPP tags ---------------------------------------------------------------
    tagged_areas = []
    for term in activity.tcpp:
        try:
            tagged_areas.append(tcpp.topic_area(term))
        except StandardsError:
            problems.append(f"unknown tcpp term {term!r}")
    area_terms = {a.term for a in tagged_areas}
    for term in activity.tcppdetails:
        try:
            area, _ = tcpp.topic_for_detail_term(term)
        except StandardsError:
            problems.append(f"unknown tcppdetails term {term!r}")
            continue
        if area.term not in area_terms:
            problems.append(
                f"tcppdetails term {term!r} belongs to {area.term}, "
                f"which is not in the activity's tcpp tags"
            )

    # Courses / senses / mediums ----------------------------------------------
    for term in activity.courses:
        if not courses_mod.is_known_course(term):
            problems.append(f"unknown course {term!r}")
    for term in activity.senses:
        if term not in SENSES:
            problems.append(f"unknown sense {term!r}")
    for term in activity.medium:
        if term not in MEDIUMS:
            problems.append(f"unknown medium {term!r}")

    for attr in ("cs2013", "tcpp", "courses", "senses",
                 "cs2013details", "tcppdetails", "medium"):
        values = getattr(activity, attr)
        if len(set(values)) != len(values):
            problems.append(f"duplicate terms in {attr}")

    if problems:
        raise ValidationError([f"{activity.name or '<unnamed>'}: {p}" for p in problems])
