"""Serialize an :class:`~repro.activities.schema.Activity` back to Markdown.

The writer emits the canonical PDCunplugged layout (Fig. 1 ordering, one
horizontal rule between sections) so ``parse(write(a)) == a`` -- the
round-trip property the test suite checks with hypothesis.

``repro.lint``'s fixit pipeline also rewrites activity files through this
writer: structural fixes (section reordering) are expressed as "serialize
the parsed activity canonically", so every applied fix round-trips through
the parser by construction.  ``extra_params`` lets that pipeline preserve
front-matter keys the schema does not know about (they are a *diagnostic*,
not something a rewrite may silently destroy).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.activities.schema import SECTION_ORDER, Activity
from repro.sitegen import frontmatter

__all__ = ["write_activity", "write_activity_file"]


def write_activity(activity: Activity,
                   extra_params: Mapping[str, object] | None = None) -> str:
    """Render one activity to its canonical Markdown document.

    ``extra_params`` are additional front-matter entries appended after the
    schema keys, in their given order; keys that collide with schema keys
    are ignored (the activity's own values win).
    """
    header: dict[str, object] = {"title": activity.title}
    if activity.date:
        header["date"] = activity.date
    for key in ("cs2013", "tcpp", "courses", "senses",
                "cs2013details", "tcppdetails", "medium"):
        values = getattr(activity, key)
        if values:
            header[key] = list(values)
    for key, value in (extra_params or {}).items():
        if key not in header and key not in ("title", "date"):
            header[key] = value

    parts: list[str] = []
    ordered = [s for s in SECTION_ORDER if s in activity.sections]
    extras = [s for s in activity.sections if s not in SECTION_ORDER]
    for idx, section in enumerate(ordered + extras):
        if idx:
            parts.append("---")
            parts.append("")
        parts.append(f"## {section}")
        text = activity.sections[section]
        parts.append("")
        if text:
            parts.append(text)
            parts.append("")
    body = "\n".join(parts)
    return frontmatter.serialize(header, body)


def write_activity_file(activity: Activity, content_dir: str | Path) -> Path:
    """Write an activity into ``<content_dir>/<name>.md``; returns the path."""
    directory = Path(content_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{activity.name}.md"
    path.write_text(write_activity(activity), encoding="utf-8")
    return path
