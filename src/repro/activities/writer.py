"""Serialize an :class:`~repro.activities.schema.Activity` back to Markdown.

The writer emits the canonical PDCunplugged layout (Fig. 1 ordering, one
horizontal rule between sections) so ``parse(write(a)) == a`` -- the
round-trip property the test suite checks with hypothesis.
"""

from __future__ import annotations

from pathlib import Path

from repro.activities.schema import SECTION_ORDER, Activity
from repro.sitegen import frontmatter

__all__ = ["write_activity", "write_activity_file"]


def write_activity(activity: Activity) -> str:
    """Render one activity to its canonical Markdown document."""
    header: dict[str, object] = {"title": activity.title}
    if activity.date:
        header["date"] = activity.date
    for key in ("cs2013", "tcpp", "courses", "senses",
                "cs2013details", "tcppdetails", "medium"):
        values = getattr(activity, key)
        if values:
            header[key] = list(values)

    parts: list[str] = []
    ordered = [s for s in SECTION_ORDER if s in activity.sections]
    extras = [s for s in activity.sections if s not in SECTION_ORDER]
    for idx, section in enumerate(ordered + extras):
        if idx:
            parts.append("---")
            parts.append("")
        parts.append(f"## {section}")
        text = activity.sections[section]
        parts.append("")
        if text:
            parts.append(text)
            parts.append("")
    body = "\n".join(parts)
    return frontmatter.serialize(header, body)


def write_activity_file(activity: Activity, content_dir: str | Path) -> Path:
    """Write an activity into ``<content_dir>/<name>.md``; returns the path."""
    directory = Path(content_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{activity.name}.md"
    path.write_text(write_activity(activity), encoding="utf-8")
    return path
