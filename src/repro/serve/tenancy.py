"""Multi-tenant admission edge: API keys, sliding windows, per-tier quotas.

The outermost rung of the serving ladder.  Every request is attributed
to a *tenant* (via ``X-Api-Key`` header or ``?key=`` query parameter;
anonymous traffic maps to a shared default tenant) and admitted against
that tenant's *tier* — a per-window request budget with a burst
allowance, plus a separate sweep-submission quota for the batch plane.
Past the budget the request is refused with ``429 + Retry-After``
*before* it touches the page cache, a render, or the sweep pool:
refusing an abusive tenant costs microseconds, so one hot client can no
longer monopolize the worker pool that every other tenant shares.

**Window algorithm.**  The classic two-bucket sliding-window estimate:
hits are counted per fixed window epoch (``epoch = now // window_s``)
and the rolling usage is ``current + previous * (1 - elapsed_fraction)``
— smooth like a true sliding log, O(1) memory per tenant.  Counts are
kept for the current and previous epoch only.

**Fleet reconciliation.**  Under ``--worker-model process`` each worker
holds its own :class:`TenantGate`, which alone would enforce N× the
quota.  Per-epoch counts are monotone within one worker incarnation, so
a gate's windows form a grow-only max-merge CRDT: :meth:`TenantGate.view`
exports ``{worker_index: {tenant: {scope: {epoch: count}}}}`` and
:meth:`TenantGate.absorb` folds a peer's view in by taking the per-epoch
**max** for each (worker, tenant, scope) — never summing the same
worker's counts twice.  The effective usage at admission is the sum
across worker indices of those max-merged counts.  A
:class:`TenancySync` thread gossips views over the existing prefork
control-socket plane (same pattern as the metrics merge), so N workers
converge on ~one fleet-wide limit; because every worker re-gossips what
it heard, a SIGKILLed worker's counts survive in its peers and a
respawned worker *inherits* its predecessor's window instead of handing
the tenant a fresh quota (and never resets anyone else's).

**Degraded-open.**  The limiter is an optimization for everyone else's
latency, not a correctness gate: any failure inside the admission
decision (exercised by the ``rate-limit`` fault op) counts a
``limiter_errors`` and admits the request, falling back to the global
:class:`~repro.serve.resilience.LoadShedder` — a broken limiter must
never 500, wedge, or lock users out.

Pure stdlib; all clocks injectable so tests replay deterministically.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import parse_qs

from repro import sanitize
from repro.serve.resilience import bounded_retry_after

__all__ = ["TierPolicy", "TenancyConfig", "TenancyConfigError",
           "TenantGate", "TenancySync", "Decision",
           "ANONYMOUS_TENANT", "DEFAULT_WINDOW_S"]

#: The shared tenant every keyless request maps to.
ANONYMOUS_TENANT = "anonymous"

#: Default sliding-window length, seconds.
DEFAULT_WINDOW_S = 10.0

#: Ops probes are never rate limited: an orchestrator health-checking a
#: saturated server must still learn whether the process is alive.
EXEMPT_PATHS = ("/healthz", "/readyz")

_REQ = "req"           # window scope: every admitted request
_SWEEP = "sweep"       # window scope: POST /api/sweeps submissions


class TenancyConfigError(ValueError):
    """A tenants config file or dict failed validation."""


@dataclass(frozen=True)
class TierPolicy:
    """One tier's budgets.  ``None`` limits mean unlimited."""

    name: str
    requests_per_window: int | None
    burst: int = 0
    sweep_submissions_per_window: int | None = None

    def __post_init__(self):
        if self.requests_per_window is not None and self.requests_per_window < 1:
            raise TenancyConfigError(
                f"tier {self.name!r}: requests_per_window must be >= 1")
        if self.burst < 0:
            raise TenancyConfigError(f"tier {self.name!r}: burst must be >= 0")
        if (self.sweep_submissions_per_window is not None
                and self.sweep_submissions_per_window < 0):
            raise TenancyConfigError(
                f"tier {self.name!r}: sweep_submissions_per_window must be >= 0")

    def to_dict(self) -> dict:
        return {
            "requests_per_window": self.requests_per_window,
            "burst": self.burst,
            "sweep_submissions_per_window": self.sweep_submissions_per_window,
        }


def _default_tiers() -> dict[str, TierPolicy]:
    return {
        "free": TierPolicy("free", requests_per_window=60, burst=20,
                           sweep_submissions_per_window=2),
        "standard": TierPolicy("standard", requests_per_window=600, burst=120,
                               sweep_submissions_per_window=20),
        "unlimited": TierPolicy("unlimited", requests_per_window=None, burst=0,
                                sweep_submissions_per_window=None),
    }


class TenancyConfig:
    """Key → (tenant, tier) mapping plus the tier table and window length.

    The JSON file format (every section optional — omitted sections fall
    back to the sane defaults, so ``{"keys": {...}}`` is a valid file)::

        {
          "window_s": 10,
          "tiers": {
            "free": {"requests_per_window": 60, "burst": 20,
                     "sweep_submissions_per_window": 2},
            "standard": {"requests_per_window": 600, "burst": 120,
                         "sweep_submissions_per_window": 20},
            "unlimited": {"requests_per_window": null}
          },
          "default_tier": "free",
          "anonymous_tier": "free",
          "keys": {
            "sk-alice": {"tenant": "alice", "tier": "standard"},
            "sk-ci":    {"tenant": "ci", "tier": "unlimited"}
          }
        }

    Resolution: a known key maps to its configured tenant; an *unknown*
    key becomes its own tenant (the key string) on ``default_tier`` —
    abuse through made-up keys stays contained per key instead of
    pooling into one shared bucket; no key at all maps every client to
    the shared :data:`ANONYMOUS_TENANT` on ``anonymous_tier``.
    """

    def __init__(self, tiers: dict[str, TierPolicy] | None = None,
                 keys: dict[str, tuple[str, str]] | None = None,
                 window_s: float = DEFAULT_WINDOW_S,
                 default_tier: str = "free",
                 anonymous_tier: str | None = None):
        if window_s <= 0:
            raise TenancyConfigError("window_s must be > 0")
        self.tiers = dict(tiers) if tiers else _default_tiers()
        self.keys = dict(keys or {})
        self.window_s = float(window_s)
        self.default_tier = default_tier
        self.anonymous_tier = anonymous_tier or default_tier
        for name in (self.default_tier, self.anonymous_tier):
            if name not in self.tiers:
                raise TenancyConfigError(f"unknown tier {name!r} "
                                         f"(defined: {sorted(self.tiers)})")
        for key, (tenant, tier) in self.keys.items():
            if tier not in self.tiers:
                raise TenancyConfigError(
                    f"key {key!r} (tenant {tenant!r}) names unknown tier "
                    f"{tier!r} (defined: {sorted(self.tiers)})")

    @classmethod
    def default(cls) -> "TenancyConfig":
        return cls()

    @classmethod
    def from_dict(cls, payload: dict) -> "TenancyConfig":
        if not isinstance(payload, dict):
            raise TenancyConfigError("tenants config must be a JSON object")
        tiers = _default_tiers()
        for name, spec in (payload.get("tiers") or {}).items():
            if not isinstance(spec, dict):
                raise TenancyConfigError(f"tier {name!r} must be an object")
            tiers[name] = TierPolicy(
                name,
                requests_per_window=spec.get("requests_per_window"),
                burst=int(spec.get("burst", 0)),
                sweep_submissions_per_window=spec.get(
                    "sweep_submissions_per_window"),
            )
        keys: dict[str, tuple[str, str]] = {}
        for key, spec in (payload.get("keys") or {}).items():
            if not isinstance(spec, dict):
                raise TenancyConfigError(f"key {key!r} must map to an object")
            keys[key] = (str(spec.get("tenant", key)),
                         str(spec.get("tier", payload.get("default_tier",
                                                          "free"))))
        return cls(
            tiers=tiers, keys=keys,
            window_s=float(payload.get("window_s", DEFAULT_WINDOW_S)),
            default_tier=str(payload.get("default_tier", "free")),
            anonymous_tier=payload.get("anonymous_tier"),
        )

    @classmethod
    def load(cls, source) -> "TenancyConfig":
        """Coerce ``source`` into a config.

        Accepts a :class:`TenancyConfig` (returned as-is), a dict, the
        literal string ``"default"``, or a path to a JSON file.
        """
        if isinstance(source, TenancyConfig):
            return source
        if isinstance(source, dict):
            return cls.from_dict(source)
        if str(source) == "default":
            return cls.default()
        path = Path(source)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise TenancyConfigError(
                f"cannot read tenants config {path}: {exc}") from exc
        except ValueError as exc:
            raise TenancyConfigError(
                f"tenants config {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def resolve(self, key: str | None) -> tuple[str, TierPolicy]:
        """Map an API key (or ``None``) to ``(tenant, tier)``."""
        if key is None or key == "":
            return ANONYMOUS_TENANT, self.tiers[self.anonymous_tier]
        known = self.keys.get(key)
        if known is not None:
            tenant, tier = known
            return tenant, self.tiers[tier]
        return key, self.tiers[self.default_tier]

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "default_tier": self.default_tier,
            "anonymous_tier": self.anonymous_tier,
            "tiers": {name: tier.to_dict()
                      for name, tier in sorted(self.tiers.items())},
            "keys": len(self.keys),
        }


@dataclass(frozen=True)
class Decision:
    """The edge's verdict on one request."""

    allowed: bool
    tenant: str
    tier: str
    exempt: bool = False             # ops probe: not limited, not counted
    degraded: bool = False           # limiter failed; admitted degraded-open
    reason: str | None = None        # "rate" | "sweep-quota" when denied
    retry_after: int = 1             # bounded integer seconds (denials)


#: The decision handed out for exempt ops probes (no counting, no locks).
_EXEMPT_DECISION = Decision(allowed=True, tenant="<ops>", tier="", exempt=True)


def _merge_windows(dst: dict, src: dict, min_epoch: int) -> None:
    """Max-merge ``src`` windows into ``dst`` (both keyed by tenant/scope).

    Per-epoch **max**, never sum: every view of one worker's counter is a
    snapshot of the same monotone value, so max is exact and re-absorbing
    the same view twice is idempotent.
    """
    for tenant, scopes in src.items():
        dst_scopes = dst.setdefault(tenant, {})
        for scope, epochs in scopes.items():
            dst_epochs = dst_scopes.setdefault(scope, {})
            for epoch, count in epochs.items():
                e = int(epoch)
                if e < min_epoch:
                    continue
                if int(count) > dst_epochs.get(e, 0):
                    dst_epochs[e] = int(count)


def _prune_windows(table: dict, min_epoch: int) -> None:
    for tenant in list(table):
        scopes = table[tenant]
        for scope in list(scopes):
            epochs = scopes[scope]
            for epoch in [e for e in epochs if e < min_epoch]:
                del epochs[epoch]
            if not epochs:
                del scopes[scope]
        if not scopes:
            del table[tenant]


def _jsonify_windows(table: dict) -> dict:
    """Windows with string epoch keys (JSON-safe for the control plane)."""
    return {tenant: {scope: {str(e): n for e, n in epochs.items()}
                     for scope, epochs in scopes.items()}
            for tenant, scopes in table.items()}


class TenantGate:
    """The admission edge: resolve the tenant, enforce its tier's windows.

    One gate per process.  ``worker_index`` identifies this process in
    the fleet CRDT; in thread mode it stays 0 and the peer tables stay
    empty, so the gate degenerates to a plain local limiter.
    """

    def __init__(self, config: TenancyConfig, clock=time.monotonic,
                 faults=None, worker_index: int = 0):
        self.config = config
        self.faults = faults
        self.worker_index = worker_index
        self._clock = clock
        self._lock = threading.Lock()
        sanitize.register_lock(self, "_lock", "TenantGate._lock")
        # Window tables, all {tenant: {scope: {epoch: count}}}:
        self._local: dict = {}       # this incarnation's own hits
        self._inherited: dict = {}   # gossip about this worker index
        #                              (including a killed predecessor)
        self._peers: dict[int, dict] = {}   # other indices' max-merged views
        self._pruned_epoch = -1
        self._counters = {
            "allowed": 0, "limited": 0, "sweep_limited": 0,
            "limiter_errors": 0, "views_absorbed": 0,
        }

    # -- resolution --------------------------------------------------------

    @staticmethod
    def request_key(environ: dict) -> str | None:
        """Extract the API key: ``X-Api-Key`` header, else ``?key=``."""
        key = environ.get("HTTP_X_API_KEY")
        if key:
            return key
        query = environ.get("QUERY_STRING")
        if query and "key=" in query:
            values = parse_qs(query).get("key")
            if values:
                return values[0]
        return None

    def set_worker(self, index: int) -> None:
        """Adopt this process's fleet slot (prefork worker bootstrap)."""
        with self._lock:
            self.worker_index = index

    # -- admission ---------------------------------------------------------

    def admit(self, environ: dict) -> Decision:
        """Decide one request.  Never raises: failure admits degraded-open."""
        path = environ.get("PATH_INFO") or "/"
        if path in EXEMPT_PATHS:
            return _EXEMPT_DECISION
        tenant, tier = self.config.resolve(self.request_key(environ))
        try:
            if self.faults is not None:
                self.faults.maybe_fail("rate-limit")
            now = self._clock()
            sweep_submit = (path == "/api/sweeps"
                            and environ.get("REQUEST_METHOD",
                                            "GET").upper() == "POST")
            with self._lock:
                return self._admit_locked(tenant, tier, now, sweep_submit)
        except Exception:               # noqa: BLE001 - degraded-open
            # A sick limiter must never refuse, 500, or wedge: count it
            # and admit; the global shedder still guards capacity.
            with self._lock:
                self._counters["limiter_errors"] += 1
            return Decision(allowed=True, tenant=tenant, tier=tier.name,
                            degraded=True)

    def _admit_locked(self, tenant: str, tier: TierPolicy, now: float,
                      sweep_submit: bool) -> Decision:
        window_s = self.config.window_s
        epoch = int(now // window_s)
        frac = (now % window_s) / window_s
        if epoch != self._pruned_epoch:
            min_epoch = epoch - 1
            for table in (self._local, self._inherited, *self._peers.values()):
                _prune_windows(table, min_epoch)
            self._pruned_epoch = epoch

        if tier.requests_per_window is not None:
            usage = self._estimate(tenant, _REQ, epoch, frac)
            if usage >= tier.requests_per_window + tier.burst:
                self._counters["limited"] += 1
                return Decision(
                    allowed=False, tenant=tenant, tier=tier.name,
                    reason="rate",
                    retry_after=bounded_retry_after((1.0 - frac) * window_s))
        if sweep_submit and tier.sweep_submissions_per_window is not None:
            usage = self._estimate(tenant, _SWEEP, epoch, frac)
            if usage >= tier.sweep_submissions_per_window:
                self._counters["sweep_limited"] += 1
                return Decision(
                    allowed=False, tenant=tenant, tier=tier.name,
                    reason="sweep-quota",
                    retry_after=bounded_retry_after((1.0 - frac) * window_s))

        self._bump(tenant, _REQ, epoch)
        if sweep_submit:
            self._bump(tenant, _SWEEP, epoch)
        self._counters["allowed"] += 1
        return Decision(allowed=True, tenant=tenant, tier=tier.name)

    def _bump(self, tenant: str, scope: str, epoch: int) -> None:
        epochs = self._local.setdefault(tenant, {}).setdefault(scope, {})
        epochs[epoch] = epochs.get(epoch, 0) + 1

    def _estimate(self, tenant: str, scope: str, epoch: int,
                  frac: float) -> float:
        """Fleet-wide sliding-window usage estimate for one tenant/scope."""
        def count_at(e: int) -> int:
            local = self._local.get(tenant, {}).get(scope, {}).get(e, 0)
            inherited = self._inherited.get(tenant, {}).get(scope, {}).get(e, 0)
            total = max(local, inherited)
            for windows in self._peers.values():
                total += windows.get(tenant, {}).get(scope, {}).get(e, 0)
            return total

        return count_at(epoch) + count_at(epoch - 1) * (1.0 - frac)

    # -- fleet reconciliation (the window CRDT) ----------------------------

    def view(self) -> dict:
        """This gate's full fleet view, JSON-safe, for the control plane.

        ``{worker_index: windows}`` — own effective windows (local
        max-merged with anything inherited about this index) under our
        own index, plus the latest max-merged view of every peer, so
        gossip is transitive: a worker that can only reach one peer
        still learns about the whole fleet through it.
        """
        with self._lock:
            min_epoch = int(self._clock() // self.config.window_s) - 1
            own: dict = {}
            _merge_windows(own, self._local, min_epoch)
            _merge_windows(own, self._inherited, min_epoch)
            view = {str(self.worker_index): _jsonify_windows(own)}
            for index, windows in self._peers.items():
                if index != self.worker_index:
                    view[str(index)] = _jsonify_windows(windows)
            return view

    def absorb(self, view: dict) -> None:
        """Max-merge a peer's :meth:`view` into this gate's tables."""
        if not isinstance(view, dict):
            return
        with self._lock:
            min_epoch = int(self._clock() // self.config.window_s) - 1
            for index_text, windows in view.items():
                try:
                    index = int(index_text)
                except (TypeError, ValueError):
                    continue
                if not isinstance(windows, dict):
                    continue
                if index == self.worker_index:
                    # Gossip about *us*: our own past exports or a killed
                    # predecessor's counts.  max(local, inherited) at
                    # estimate time keeps this double-count-free.
                    _merge_windows(self._inherited, windows, min_epoch)
                else:
                    _merge_windows(self._peers.setdefault(index, {}),
                                   windows, min_epoch)
            self._counters["views_absorbed"] += 1

    # -- observability -----------------------------------------------------

    def tenant_usage(self, tenant: str) -> dict:
        """Current fleet-wide window estimate for one tenant (ops/tests)."""
        now = self._clock()
        window_s = self.config.window_s
        epoch = int(now // window_s)
        frac = (now % window_s) / window_s
        with self._lock:
            return {
                "requests": round(self._estimate(tenant, _REQ, epoch, frac), 2),
                "sweeps": round(self._estimate(tenant, _SWEEP, epoch, frac), 2),
            }

    def stats(self) -> dict:
        with self._lock:
            return {
                "worker_index": self.worker_index,
                "window_s": self.config.window_s,
                "tiers": sorted(self.config.tiers),
                "tenants_tracked": len(
                    set(self._local) | set(self._inherited)
                    | {t for w in self._peers.values() for t in w}),
                "peers_known": len(self._peers),
                **self._counters,
            }


class TenancySync:
    """Background gossip: periodically absorb every peer's window view.

    ``fetch_views`` is injected (the prefork layer supplies one that
    walks the control sockets) so this class stays transport-free.  Any
    fetch failure is counted and skipped — reconciliation is an
    eventual-consistency optimization, never a request-path dependency.
    """

    def __init__(self, gate: TenantGate, fetch_views,
                 interval_s: float = 0.25):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.gate = gate
        self.fetch_views = fetch_views
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.syncs = 0
        self.sync_errors = 0

    def start(self) -> "TenancySync":
        self._thread = threading.Thread(target=self._loop,
                                        name="tenancy-sync", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)

    def sync_once(self) -> int:
        """One gossip round; returns the number of views absorbed."""
        absorbed = 0
        try:
            views = self.fetch_views()
        except Exception:               # noqa: BLE001 - gossip is advisory
            self.sync_errors += 1
            return 0
        for view in views or ():
            if view:
                self.gate.absorb(view)
                absorbed += 1
        self.syncs += 1
        return absorbed

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sync_once()

    def stats(self) -> dict:
        return {"interval_s": self.interval_s, "syncs": self.syncs,
                "sync_errors": self.sync_errors}
