"""Deterministic synthetic load generation for the serving layer.

Models the traffic pattern of a public teaching repository: page
popularity follows a Zipf distribution (a few famous activities get most
of the hits), with an optional slice of API traffic mixed in.  Everything
is seeded — the same profile and seed produce the same request stream,
so benchmark runs and the ``/api/metrics`` acceptance test are
reproducible.

Includes :func:`call_app`, a minimal in-process WSGI client (no sockets),
used by the load runner, the test suite, and ``benchmarks/bench_serve.py``.
The runner emulates well-behaved browser caches: it remembers each URL's
ETag and revalidates with ``If-None-Match``, so a warm run exercises the
304 path exactly like repeat real-world traffic would.
"""

from __future__ import annotations

import io
import random
import time
from dataclasses import dataclass, field

__all__ = ["WSGIResponse", "call_app", "zipf_weights", "LoadGenerator",
           "LoadReport", "run_load"]


@dataclass(frozen=True)
class WSGIResponse:
    """Materialized response from an in-process WSGI call."""

    status: int
    headers: dict[str, str]
    body: bytes

    @property
    def etag(self) -> str | None:
        return self.headers.get("ETag")


def call_app(app, path: str, method: str = "GET",
             headers: dict[str, str] | None = None) -> WSGIResponse:
    """Invoke a WSGI app in-process for ``path`` (query string allowed)."""
    path, _, query = path.partition("?")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "SERVER_NAME": "localhost",
        "SERVER_PORT": "80",
        "SERVER_PROTOCOL": "HTTP/1.1",
        "wsgi.version": (1, 0),
        "wsgi.url_scheme": "http",
        "wsgi.input": io.BytesIO(),
        "wsgi.errors": io.StringIO(),
        "wsgi.multithread": False,
        "wsgi.multiprocess": False,
        "wsgi.run_once": False,
    }
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value

    captured: dict[str, object] = {}

    def start_response(status_line, response_headers):
        captured["status"] = int(status_line.split(" ", 1)[0])
        captured["headers"] = dict(response_headers)

    chunks = app(environ, start_response)
    try:
        body = b"".join(chunks)
    finally:
        close = getattr(chunks, "close", None)
        if close is not None:
            close()
    return WSGIResponse(status=captured["status"],
                        headers=captured["headers"], body=body)


def zipf_weights(n: int, exponent: float = 1.1) -> list[float]:
    """Zipf popularity weights for ranks 1..n (rank 1 most popular)."""
    if n < 1:
        return []
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


class LoadGenerator:
    """Seeded request-stream generator over a fixed URL population."""

    def __init__(self, urls: list[str], exponent: float = 1.1, seed: int = 0):
        if not urls:
            raise ValueError("need at least one URL to generate load")
        self.urls = list(urls)
        self.weights = zipf_weights(len(self.urls), exponent)
        self.seed = seed

    @classmethod
    def for_app(cls, app, kinds: tuple[str, ...] = ("home", "page", "term", "taxonomy", "view"),
                exponent: float = 1.1, seed: int = 0) -> "LoadGenerator":
        """Build a profile over a :class:`~repro.serve.app.ServeApp`'s site.

        Popularity rank is the plan order (home page first, then the 38
        activity pages, then listing pages) — a reasonable stand-in for
        real traffic where the front page and famous activities dominate.
        """
        urls = [t.url for t in app.state.plan if t.kind in kinds]
        return cls(urls, exponent=exponent, seed=seed)

    def sample(self, n: int) -> list[str]:
        """A deterministic stream of ``n`` request paths."""
        rng = random.Random(self.seed)
        return rng.choices(self.urls, weights=self.weights, k=n)


@dataclass
class LoadReport:
    """Aggregate of one load run against an app."""

    requests: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0                  # responses served from the page cache
    revalidations: int = 0               # 304 Not Modified responses
    bytes_received: int = 0
    duration_s: float = 0.0

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    @property
    def ok(self) -> bool:
        return all(status in (200, 304) for status in self.statuses)


def run_load(app, paths: list[str], revalidate: bool = True,
             clock=time.perf_counter) -> LoadReport:
    """Replay ``paths`` against ``app`` in-process.

    With ``revalidate=True`` the runner behaves like a browser cache:
    it remembers the last ETag seen per URL and sends ``If-None-Match``
    on repeats, earning 304s for unchanged pages.
    """
    etags: dict[str, str] = {}
    report = LoadReport()
    started = clock()
    for path in paths:
        headers = {}
        if revalidate and path in etags:
            headers["If-None-Match"] = etags[path]
        response = call_app(app, path, headers=headers)
        report.requests += 1
        report.statuses[response.status] = report.statuses.get(response.status, 0) + 1
        report.bytes_received += len(response.body)
        if response.status == 304:
            report.revalidations += 1
        if response.etag:
            etags[path] = response.etag
        if response.headers.get("X-Cache") == "hit":
            report.cache_hits += 1
    report.duration_s = clock() - started
    return report
