"""Deterministic synthetic load generation for the serving layer.

Models the traffic pattern of a public teaching repository: page
popularity follows a Zipf distribution (a few famous activities get most
of the hits), with a configurable slice of API traffic (activity listing,
search queries, coverage tables) and a configurable split between
conditional (``If-None-Match``) and unconditional requests.  Everything
is seeded — the same profile and seed produce the same request stream,
so benchmark runs and the ``/api/metrics`` acceptance test are
reproducible.

Includes :func:`call_app`, a minimal in-process WSGI client (no sockets),
used by the load runner, the test suite, and ``benchmarks/bench_serve.py``.
The runner emulates well-behaved browser caches: it remembers each URL's
ETag and revalidates with ``If-None-Match``, so a warm run exercises the
304 path exactly like repeat real-world traffic would.  Per-request
latencies are retained in the report, so tail percentiles (p99, p99.9)
come from exact order statistics, not histogram interpolation.

Three runners share the :class:`LoadReport` shape:

* :func:`run_load` — serial, in-process (one WSGI call at a time),
* :func:`run_load_concurrent` — N client threads against one in-process
  app (hammers the sharded cache and striped metrics),
* :func:`run_load_http` — N client threads over real sockets against a
  live server (the multi-worker benchmark path).
"""

from __future__ import annotations

import http.client
import io
import random
import threading
import time
from dataclasses import dataclass, field

__all__ = ["WSGIResponse", "call_app", "zipf_weights", "LoadRequest",
           "LoadGenerator", "LoadReport", "run_load", "run_load_concurrent",
           "run_load_http", "parse_tenant_mix",
           "DEFAULT_API_PATHS", "DEFAULT_SWEEP_SPECS"]

#: Default API population for mixed traffic: listing, searches with
#: different selectivity, both coverage tables, and the gap report.
DEFAULT_API_PATHS: tuple[str, ...] = (
    "/api/activities",
    "/api/search?q=cards",
    "/api/search?q=parallel+sorting",
    "/api/search?q=deadlock",
    "/api/coverage/cs2013",
    "/api/coverage/tcpp",
    "/api/gaps",
)

#: Default sweep-submission population for batch traffic: small grids
#: over cheap simulations, so a loadgen run with ``sweep_ratio > 0``
#: exercises the batch plane without dominating wall-clock.  Repeats of
#: the same spec are the point — they hit the content-addressed result
#: store instead of re-executing.
DEFAULT_SWEEP_SPECS: tuple[str, ...] = (
    '{"slugs": ["findsmallestcard"], "sizes": [4, 8], "seeds": [0, 1]}',
    '{"slugs": ["parallelradixsort"], "sizes": [8], "seeds": [0, 1, 2]}',
    '{"slugs": ["byzantinegenerals"], "sizes": [6, 9], "seeds": [0]}',
)


@dataclass(frozen=True)
class WSGIResponse:
    """Materialized response from an in-process WSGI call."""

    status: int
    headers: dict[str, str]
    body: bytes

    @property
    def etag(self) -> str | None:
        return self.headers.get("ETag")


def call_app(app, path: str, method: str = "GET",
             headers: dict[str, str] | None = None,
             body: bytes | None = None) -> WSGIResponse:
    """Invoke a WSGI app in-process for ``path`` (query string allowed).

    ``body`` makes the call an entity-bearing request (``POST
    /api/sweeps``): it is exposed through ``wsgi.input`` with
    ``CONTENT_LENGTH`` set, JSON content type by default.
    """
    path, _, query = path.partition("?")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "SERVER_NAME": "localhost",
        "SERVER_PORT": "80",
        "SERVER_PROTOCOL": "HTTP/1.1",
        "wsgi.version": (1, 0),
        "wsgi.url_scheme": "http",
        "wsgi.input": io.BytesIO(body or b""),
        "wsgi.errors": io.StringIO(),
        "wsgi.multithread": False,
        "wsgi.multiprocess": False,
        "wsgi.run_once": False,
    }
    if body is not None:
        environ["CONTENT_LENGTH"] = str(len(body))
        environ["CONTENT_TYPE"] = "application/json"
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value

    captured: dict[str, object] = {}

    def start_response(status_line, response_headers):
        captured["status"] = int(status_line.split(" ", 1)[0])
        captured["headers"] = dict(response_headers)

    chunks = app(environ, start_response)
    try:
        body = b"".join(chunks)
    finally:
        close = getattr(chunks, "close", None)
        if close is not None:
            close()
    return WSGIResponse(status=captured["status"],
                        headers=captured["headers"], body=body)


def zipf_weights(n: int, exponent: float = 1.1) -> list[float]:
    """Zipf popularity weights for ranks 1..n (rank 1 most popular)."""
    if n < 1:
        return []
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


@dataclass(frozen=True)
class LoadRequest:
    """One synthetic request: a path plus whether the client revalidates.

    ``api_key`` (sent as ``X-Api-Key``) attributes the request to a
    tenant when the server runs the multi-tenant admission edge.
    """

    path: str
    conditional: bool = True
    method: str = "GET"
    body: bytes | None = None
    api_key: str | None = None


def parse_tenant_mix(spec: str) -> dict[str, float]:
    """Parse a ``hot:0.8,cold:0.2`` style tenant traffic mix.

    Returns ``{api_key: weight}``; weights need not sum to 1 (they are
    relative).  A bare name (no ``:weight``) gets weight 1.
    """
    mix: dict[str, float] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, weight_text = chunk.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"tenant mix entry {chunk!r} has no key")
        try:
            weight = float(weight_text) if weight_text else 1.0
        except ValueError:
            raise ValueError(
                f"tenant mix entry {chunk!r}: weight is not a number") from None
        if weight <= 0:
            raise ValueError(f"tenant mix entry {chunk!r}: weight must be > 0")
        mix[name] = weight
    if not mix:
        raise ValueError(f"empty tenant mix {spec!r}")
    return mix


class LoadGenerator:
    """Seeded request-stream generator over a fixed URL population.

    ``api_ratio`` routes that fraction of requests to the API population
    (uniformly — API traffic is flatter than page traffic);
    ``conditional_ratio`` marks that fraction of requests as revalidating
    clients (they send ``If-None-Match`` on repeat visits), the rest as
    cold clients that always want full bodies.
    """

    def __init__(self, urls: list[str], exponent: float = 1.1, seed: int = 0,
                 api_paths: list[str] | None = None, api_ratio: float = 0.0,
                 conditional_ratio: float = 1.0,
                 sweep_ratio: float = 0.0,
                 sweep_specs: list[str] | None = None,
                 tenant_mix: dict[str, float] | str | None = None):
        if not urls:
            raise ValueError("need at least one URL to generate load")
        if not 0.0 <= api_ratio <= 1.0:
            raise ValueError("api_ratio must be within [0, 1]")
        if not 0.0 <= conditional_ratio <= 1.0:
            raise ValueError("conditional_ratio must be within [0, 1]")
        if not 0.0 <= sweep_ratio <= 1.0:
            raise ValueError("sweep_ratio must be within [0, 1]")
        if api_ratio > 0.0 and not api_paths:
            raise ValueError("api_ratio > 0 requires api_paths")
        self.urls = list(urls)
        self.weights = zipf_weights(len(self.urls), exponent)
        self.api_paths = list(api_paths or [])
        self.api_ratio = api_ratio
        self.conditional_ratio = conditional_ratio
        self.sweep_ratio = sweep_ratio
        self.sweep_specs = list(sweep_specs if sweep_specs is not None
                                else DEFAULT_SWEEP_SPECS)
        if isinstance(tenant_mix, str):
            tenant_mix = parse_tenant_mix(tenant_mix)
        self.tenant_mix = dict(tenant_mix) if tenant_mix else None
        self.seed = seed

    @classmethod
    def for_app(cls, app, kinds: tuple[str, ...] = ("home", "page", "term", "taxonomy", "view"),
                exponent: float = 1.1, seed: int = 0,
                api_ratio: float = 0.0,
                conditional_ratio: float = 1.0,
                sweep_ratio: float = 0.0,
                tenant_mix: dict[str, float] | str | None = None,
                ) -> "LoadGenerator":
        """Build a profile over a :class:`~repro.serve.app.ServeApp`'s site.

        Popularity rank is the plan order (home page first, then the 38
        activity pages, then listing pages) — a reasonable stand-in for
        real traffic where the front page and famous activities dominate.
        """
        urls = [t.url for t in app.state.plan if t.kind in kinds]
        return cls(urls, exponent=exponent, seed=seed,
                   api_paths=list(DEFAULT_API_PATHS), api_ratio=api_ratio,
                   conditional_ratio=conditional_ratio,
                   sweep_ratio=sweep_ratio, tenant_mix=tenant_mix)

    def sample(self, n: int) -> list[str]:
        """A deterministic stream of ``n`` request paths (pages only)."""
        rng = random.Random(self.seed)
        return rng.choices(self.urls, weights=self.weights, k=n)

    def sample_requests(self, n: int) -> list[LoadRequest]:
        """A deterministic mixed stream of ``n`` :class:`LoadRequest`.

        Pages follow the Zipf weights; the ``sweep_ratio`` slice (drawn
        first) submits ``POST /api/sweeps`` batch jobs from the spec
        population; the ``api_ratio`` slice samples the API population
        uniformly; each request is independently marked conditional with
        probability ``conditional_ratio``.
        """
        rng = random.Random(self.seed)
        keys = weights = None
        if self.tenant_mix:
            keys = list(self.tenant_mix)
            weights = [self.tenant_mix[k] for k in keys]

        def api_key() -> str | None:
            if keys is None:
                return None
            return rng.choices(keys, weights=weights, k=1)[0]

        requests = []
        for _ in range(n):
            if self.sweep_specs and rng.random() < self.sweep_ratio:
                spec = rng.choice(self.sweep_specs)
                requests.append(LoadRequest(
                    "/api/sweeps", conditional=False, method="POST",
                    body=spec.encode("utf-8"), api_key=api_key()))
                continue
            if self.api_paths and rng.random() < self.api_ratio:
                path = rng.choice(self.api_paths)
            else:
                path = rng.choices(self.urls, weights=self.weights, k=1)[0]
            requests.append(LoadRequest(
                path, conditional=rng.random() < self.conditional_ratio,
                api_key=api_key()))
        return requests


@dataclass
class LoadReport:
    """Aggregate of one load run against an app."""

    requests: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0                  # responses served from the page cache
    revalidations: int = 0               # 304 Not Modified responses
    api_requests: int = 0                # requests whose path was /api/*
    sweep_submissions: int = 0           # POST /api/sweeps issued
    sweeps_accepted: int = 0             # 202 Accepted responses
    shed: int = 0                        # 503 (shed / degraded / deadline)
    limited: int = 0                     # 429 (per-tenant rate/quota refusals)
    retries: int = 0                     # re-issues after a 429/503 refusal
    stale_hits: int = 0                  # responses carrying X-Stale
    transport_errors: int = 0            # connection refused/reset (HTTP runner)
    bytes_received: int = 0
    duration_s: float = 0.0
    clients: int = 1
    latencies_s: list[float] = field(default_factory=list, repr=False)

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    @property
    def ok(self) -> bool:
        return all(status in (200, 202, 304) for status in self.statuses)

    @property
    def unhandled_errors(self) -> int:
        """5xx responses that are NOT deliberate 503 degradation.

        The chaos acceptance criterion: under injected faults a run may
        shed (503) and serve stale, but must never surface an unhandled
        server error.
        """
        return sum(count for status, count in self.statuses.items()
                   if status >= 500 and status != 503)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def limited_rate(self) -> float:
        """Fraction of requests refused by the tenancy edge (429)."""
        return self.limited / self.requests if self.requests else 0.0

    @property
    def stale_hit_rate(self) -> float:
        return self.stale_hits / self.requests if self.requests else 0.0

    def latency_percentile_ms(self, p: float) -> float:
        """Exact order-statistic percentile over recorded latencies, in ms."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(0, min(len(ordered) - 1,
                          int(-(-p / 100.0 * len(ordered) // 1)) - 1))
        return ordered[rank] * 1e3

    def merge(self, other: "LoadReport") -> None:
        """Fold another client's report into this one (durations overlap)."""
        self.requests += other.requests
        for status, count in other.statuses.items():
            self.statuses[status] = self.statuses.get(status, 0) + count
        self.cache_hits += other.cache_hits
        self.revalidations += other.revalidations
        self.api_requests += other.api_requests
        self.sweep_submissions += other.sweep_submissions
        self.sweeps_accepted += other.sweeps_accepted
        self.shed += other.shed
        self.limited += other.limited
        self.retries += other.retries
        self.stale_hits += other.stale_hits
        self.transport_errors += other.transport_errors
        self.bytes_received += other.bytes_received
        self.latencies_s.extend(other.latencies_s)


def _as_request(item) -> LoadRequest:
    return item if isinstance(item, LoadRequest) else LoadRequest(str(item))


def _retry_delay_s(retry_after: str | None, honor_retry_after: bool,
                   retry_cap_s: float) -> float:
    """The pause before re-issuing a refused request.

    A well-behaved client honors the server's ``Retry-After`` hint
    (capped so a test or benchmark never sleeps a full production-scale
    back-off); without a hint it retries after a token pause.
    """
    delay = 0.05
    if honor_retry_after and retry_after:
        try:
            delay = float(retry_after)
        except ValueError:
            pass
    return max(0.0, min(delay, retry_cap_s))


def run_load(app, paths, revalidate: bool = True,
             clock=time.perf_counter, max_retries: int = 0,
             honor_retry_after: bool = True, retry_cap_s: float = 2.0,
             sleep=time.sleep) -> LoadReport:
    """Replay ``paths`` (strings or :class:`LoadRequest`) in-process.

    With ``revalidate=True`` the runner behaves like a browser cache:
    it remembers the last ETag seen per URL and sends ``If-None-Match``
    on repeats (for requests marked conditional), earning 304s for
    unchanged pages.

    ``max_retries > 0`` re-issues refused requests (429/503) up to that
    many times per request, pausing per the response's ``Retry-After``
    hint (capped at ``retry_cap_s``).  Every attempt is tallied — the
    report's ``limited``/``shed`` counters reflect refusals seen on the
    wire, and ``retries`` counts the re-issues.
    """
    etags: dict[str, str] = {}
    report = LoadReport()
    started = clock()
    for item in paths:
        request = _as_request(item)
        attempts = 0
        while True:
            headers = {}
            if request.api_key:
                headers["X-Api-Key"] = request.api_key
            if revalidate and request.conditional and request.path in etags:
                headers["If-None-Match"] = etags[request.path]
            issued = clock()
            response = call_app(app, request.path, method=request.method,
                                headers=headers, body=request.body)
            report.latencies_s.append(clock() - issued)
            _tally(report, request, response.status, response.etag,
                   len(response.body), etags,
                   cache_status=response.headers.get("X-Cache"),
                   stale=response.headers.get("X-Stale") is not None)
            if response.status in (429, 503) and attempts < max_retries:
                attempts += 1
                report.retries += 1
                sleep(_retry_delay_s(response.headers.get("Retry-After"),
                                     honor_retry_after, retry_cap_s))
                continue
            break
    report.duration_s = clock() - started
    return report


def _tally(report: LoadReport, request: LoadRequest, status: int,
           etag: str | None, body_len: int, etags: dict[str, str],
           cache_status: str | None = None, stale: bool = False) -> None:
    report.requests += 1
    report.statuses[status] = report.statuses.get(status, 0) + 1
    report.bytes_received += body_len
    if request.path.startswith("/api/"):
        report.api_requests += 1
    if request.method == "POST" and request.path == "/api/sweeps":
        report.sweep_submissions += 1
        if status == 202:
            report.sweeps_accepted += 1
    if status == 304:
        report.revalidations += 1
    if status == 503:
        report.shed += 1
    elif status == 429:
        report.limited += 1
    if stale:
        report.stale_hits += 1
    if cache_status == "hit":
        report.cache_hits += 1
    if etag:
        etags[request.path] = etag


def run_load_concurrent(app, paths, clients: int = 4, revalidate: bool = True,
                        clock=time.perf_counter) -> LoadReport:
    """Replay ``paths`` from ``clients`` concurrent threads, in-process.

    The stream is dealt round-robin; each client keeps its own ETag
    memory (independent browsers).  The merged report's ``duration_s`` is
    wall-clock across all clients, so ``requests_per_s`` measures
    aggregate concurrent throughput.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    requests = [_as_request(p) for p in paths]
    slices = [requests[i::clients] for i in range(clients)]
    reports = [LoadReport() for _ in range(clients)]

    def client(i: int) -> None:
        reports[i] = run_load(app, slices[i], revalidate=revalidate, clock=clock)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    started = clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    merged = LoadReport(clients=clients)
    for report in reports:
        merged.merge(report)
    merged.duration_s = clock() - started
    return merged


def run_load_http(base_url: str, paths, clients: int = 1,
                  revalidate: bool = True, timeout_s: float = 10.0,
                  clock=time.perf_counter, max_retries: int = 0,
                  honor_retry_after: bool = True, retry_cap_s: float = 2.0,
                  sleep=time.sleep) -> LoadReport:
    """Replay ``paths`` over real sockets against ``base_url``.

    ``base_url`` is ``http://host:port``; each client thread opens its own
    connections, so against a multi-worker server the requests are
    genuinely concurrent on the wire.

    Transport failures (connection refused or reset — e.g. a pre-fork
    worker killed mid-request during a chaos drill) are *counted* in
    ``transport_errors`` and the run continues; they never abort a client
    thread or masquerade as server 5xx.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    host_port = base_url.split("//", 1)[-1].rstrip("/")
    host, _, port_text = host_port.partition(":")
    port = int(port_text or 80)
    requests = [_as_request(p) for p in paths]
    slices = [requests[i::clients] for i in range(clients)]
    reports = [LoadReport() for _ in range(clients)]

    def client(i: int) -> None:
        etags: dict[str, str] = {}
        report = reports[i]
        for request in slices[i]:
            attempts = 0
            while True:
                headers = {}
                if request.api_key:
                    headers["X-Api-Key"] = request.api_key
                if revalidate and request.conditional and request.path in etags:
                    headers["If-None-Match"] = etags[request.path]
                issued = clock()
                conn = http.client.HTTPConnection(host, port,
                                                  timeout=timeout_s)
                try:
                    if request.body is not None:
                        headers.setdefault("Content-Type", "application/json")
                    conn.request(request.method, request.path,
                                 body=request.body, headers=headers)
                    response = conn.getresponse()
                    body = response.read()
                    status = response.status
                    etag = response.getheader("ETag")
                    cache_status = response.getheader("X-Cache")
                    stale = response.getheader("X-Stale") is not None
                    retry_after = response.getheader("Retry-After")
                except (OSError, http.client.HTTPException):
                    report.requests += 1
                    report.transport_errors += 1
                    break
                finally:
                    conn.close()
                report.latencies_s.append(clock() - issued)
                _tally(report, request, status, etag, len(body), etags,
                       cache_status=cache_status, stale=stale)
                if status in (429, 503) and attempts < max_retries:
                    attempts += 1
                    report.retries += 1
                    sleep(_retry_delay_s(retry_after, honor_retry_after,
                                         retry_cap_s))
                    continue
                break

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    started = clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    merged = LoadReport(clients=clients)
    for report in reports:
        merged.merge(report)
    merged.duration_s = clock() - started
    return merged
