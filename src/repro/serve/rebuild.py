"""Incremental rebuild support for the serving layer.

:class:`ServerState` is one immutable-ish generation of everything the
server needs: the parsed catalog, the renderable :class:`~repro.sitegen.site.Site`,
the search index, and the render plan keyed by URL.  :class:`RebuildManager`
watches the content directory (cheap mtime/size fingerprint, throttled) and,
when a source file changes, builds the *next* generation and diffs the two
render plans' signatures — the result names exactly the URLs whose rendered
bytes changed, which is what the page cache evicts.  Unchanged pages keep
their signatures, so a subsequent ``site.build(out, incremental=True)``
(the static-export path) re-renders only the dirty files.

Incremental pieces carried across generations:

* build signatures (so a static export after a refresh re-renders only
  dirty files),
* the search index — patched via
  :meth:`~repro.sitegen.search.SearchIndex.patched_from_catalog` for just
  the changed source documents instead of re-tokenizing all 38.

Refreshing is safe under the multi-worker server: a non-blocking mutex
ensures exactly one thread rebuilds while the rest keep serving the old
generation, and the swap itself is a single attribute assignment.

A broken edit (e.g. a half-saved Markdown file) never takes the server
down: the rebuild fails closed, the previous generation keeps serving, and
the error is reported in the rebuild result and ``/api/metrics``.  The
fingerprint is *not* advanced on failure, so the next check retries the
build — which is what lets a circuit breaker's half-open probe heal.

:class:`BackgroundRebuilder` moves the whole refresh off the request
path: a dedicated thread waits on a condition variable, is poked by
request workers (O(1): set a flag, notify), debounces bursts of pokes
into one rebuild, and optionally consults a
:class:`~repro.serve.resilience.CircuitBreaker` so a persistently
failing pipeline backs off instead of burning CPU re-parsing a broken
corpus on every poll.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import sanitize
from repro.activities.catalog import Catalog, corpus_dir
from repro.sitegen.search import SearchIndex
from repro.sitegen.site import RenderTask, Site, SiteConfig

__all__ = ["ServerState", "RebuildManager", "RebuildResult",
           "BackgroundRebuilder", "scan_content"]


def scan_content(content_dir: str | Path) -> dict[str, tuple[int, int]]:
    """Fingerprint a content tree: file name -> (mtime_ns, size)."""
    directory = Path(content_dir)
    return {
        path.name: (path.stat().st_mtime_ns, path.stat().st_size)
        for path in sorted(directory.glob("*.md"))
    }


class ServerState:
    """One generation of the served corpus: catalog + site + plan + search."""

    def __init__(self, catalog: Catalog, config: SiteConfig | None = None,
                 search: SearchIndex | None = None):
        self.catalog = catalog
        self.site: Site = catalog.site(config)
        self.search = search if search is not None else SearchIndex.from_catalog(catalog)
        self.plan: list[RenderTask] = self.site.render_plan()
        self.plan_by_url: dict[str, RenderTask] = {t.url: t for t in self.plan}
        self._corpus_signature: str | None = None

    @classmethod
    def from_content_dir(cls, content_dir: str | Path,
                         config: SiteConfig | None = None,
                         search: SearchIndex | None = None) -> "ServerState":
        return cls(Catalog.from_directory(content_dir), config, search=search)

    @property
    def signatures(self) -> dict[str, str]:
        """URL -> render-plan signature for this generation."""
        return {task.url: task.signature for task in self.plan}

    @property
    def corpus_signature(self) -> str:
        """One signature over the whole generation (changes iff any page does).

        Responses derived from the full corpus (``/api/activities``,
        coverage tables, search results) are persisted under this value:
        any content change invalidates them all, which is exactly the
        bulk-invalidate the serving layer already applies on rebuild.
        """
        if self._corpus_signature is None:
            digest = hashlib.sha256()
            for task in self.plan:
                digest.update(task.url.encode("utf-8"))
                digest.update(task.signature.encode("utf-8"))
            self._corpus_signature = digest.hexdigest()[:20]
        return self._corpus_signature


@dataclass
class RebuildResult:
    """Outcome of one refresh check that found changed content."""

    changed_sources: list[str] = field(default_factory=list)
    dirty_urls: list[str] = field(default_factory=list)
    search_patched: int = 0                # documents re-tokenized (not 38)
    duration_s: float = 0.0
    error: str | None = None
    #: Corpus signature of the generation this rebuild swapped in — what
    #: cross-process coordination publishes, captured at swap time so a
    #: later swap racing the publish cannot misreport it.
    generation: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class RebuildManager:
    """Watches a content directory and swaps in new server generations."""

    def __init__(
        self,
        content_dir: str | Path | None = None,
        config: SiteConfig | None = None,
        min_interval_s: float = 1.0,
        clock=time.monotonic,
        faults=None,
        search_loader: Callable[[Catalog], SearchIndex | None] | None = None,
    ):
        self.content_dir = Path(content_dir) if content_dir else corpus_dir()
        self.config = config
        self.min_interval_s = min_interval_s
        self.faults = faults
        self._clock = clock
        self._fingerprint = scan_content(self.content_dir)
        self._last_check = clock()
        self._refresh_lock = threading.Lock()
        # Held across a full rebuild by design: exempt from the stall
        # watchdog (contenders only ever poll it non-blockingly).
        sanitize.register_lock(self, "_refresh_lock",
                               "RebuildManager._refresh_lock",
                               stall_budget_ms=None)
        # A search_loader (e.g. persisted postings) can skip the cold
        # from_catalog tokenization pass; returning None falls back to it.
        catalog = Catalog.from_directory(self.content_dir)
        search = search_loader(catalog) if search_loader is not None else None
        self.state = ServerState(catalog, config, search=search)
        self.last_error: str | None = None

    def maybe_refresh(self) -> RebuildResult | None:
        """Throttled change check: no-op within ``min_interval_s`` of the last.

        Safe to call from many worker threads: whichever thread wins the
        (non-blocking) refresh mutex does the work, the rest return
        immediately and keep serving the current generation.
        """
        if not self._refresh_lock.acquire(blocking=False):
            return None
        try:
            now = self._clock()
            if now - self._last_check < self.min_interval_s:
                return None
            self._last_check = now
            return self._refresh_locked()
        finally:
            self._refresh_lock.release()

    def refresh(self) -> RebuildResult | None:
        """Rescan the content dir; rebuild and diff if anything changed.

        Returns ``None`` when nothing changed, otherwise a
        :class:`RebuildResult`.  On a failed rebuild (unparseable content)
        the old generation stays live and ``result.error`` is set.
        """
        with self._refresh_lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> RebuildResult | None:
        fingerprint = scan_content(self.content_dir)
        if fingerprint == self._fingerprint:
            return None
        started = self._clock()
        changed = sorted(
            set(fingerprint.items()) ^ set(self._fingerprint.items())
        )
        result = RebuildResult(
            changed_sources=sorted({name for name, _ in changed})
        )
        # Activity document names are source-file stems; patching only these
        # in the search index skips re-tokenizing the unchanged corpus.
        dirty_names = {Path(name).stem for name in result.changed_sources}
        try:
            if self.faults is not None:
                self.faults.maybe_fail("rebuild")
            catalog = Catalog.from_directory(self.content_dir)
            search = self.state.search.patched_from_catalog(catalog, dirty_names)
            new_state = ServerState(catalog, self.config, search=search)
        except Exception as exc:           # keep serving the old generation;
            # the fingerprint is deliberately NOT advanced, so the next
            # check retries the build instead of waiting for another edit
            result.error = f"{type(exc).__name__}: {exc}"
            self.last_error = result.error
            result.duration_s = self._clock() - started
            return result
        self._fingerprint = fingerprint
        result.search_patched = len(dirty_names)

        old_sigs = self.state.signatures
        new_sigs = new_state.signatures
        result.dirty_urls = sorted(
            url
            for url in set(old_sigs) | set(new_sigs)
            if old_sigs.get(url) != new_sigs.get(url)
        )
        # Unchanged pages carry their build signatures forward so a static
        # incremental export after this refresh only re-renders dirty files.
        new_state.site.seed_signatures(self.state.site.built_signatures)
        self.state = new_state
        self.last_error = None
        result.generation = new_state.corpus_signature
        result.duration_s = self._clock() - started
        return result


class BackgroundRebuilder:
    """Runs rebuilds on a dedicated thread so requests never pay for one.

    Request workers call :meth:`poke` — O(1): set a flag, notify — and
    carry on serving the current generation.  The rebuild thread wakes,
    sleeps ``debounce_s`` to coalesce a burst of pokes (a multi-file
    save) into one rebuild, and runs ``manager.refresh()``.  With no
    pokes it polls every ``poll_interval_s`` (pass ``None`` to rebuild
    only when poked).

    When a :class:`~repro.serve.resilience.CircuitBreaker` is attached,
    each rebuild outcome feeds it: consecutive failures trip it open and
    attempts are skipped (the last good generation keeps serving, marked
    stale) until the breaker half-opens and a probe rebuild succeeds.
    """

    def __init__(
        self,
        manager: RebuildManager,
        breaker=None,
        debounce_s: float = 0.05,
        poll_interval_s: float | None = 0.5,
        on_result: Callable[[RebuildResult], None] | None = None,
        sleep=time.sleep,
    ):
        self.manager = manager
        self.breaker = breaker
        self.debounce_s = debounce_s
        self.poll_interval_s = poll_interval_s
        self.on_result = on_result
        self._sleep = sleep
        self._cond = threading.Condition()
        sanitize.register_lock(self, "_cond", "BackgroundRebuilder._cond")
        self._thread: threading.Thread | None = None
        self._pending = False
        self._stopping = False
        self._attempts = 0
        self._skipped_open = 0
        self._last_result: RebuildResult | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._thread is not None:
                return
            self._stopping = False
            thread = threading.Thread(
                target=self._run, name="serve-rebuild", daemon=True)
            self._thread = thread
        thread.start()

    def stop(self, timeout_s: float = 2.0) -> None:
        with self._cond:
            thread = self._thread
            if thread is None:
                return
            self._stopping = True
            self._thread = None
            self._cond.notify_all()
        thread.join(timeout=timeout_s)

    @property
    def running(self) -> bool:
        with self._cond:
            return self._thread is not None

    def poke(self) -> None:
        """Request a rebuild check; returns immediately (never blocks)."""
        with self._cond:
            self._pending = True
            self._cond.notify_all()

    # -- the rebuild thread --------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._pending and not self._stopping:
                    self._cond.wait(timeout=self.poll_interval_s)
                if self._stopping:
                    return
                poked = self._pending
                self._pending = False
            if poked and self.debounce_s > 0:
                self._sleep(self.debounce_s)
                with self._cond:
                    self._pending = False    # coalesce pokes during debounce
            self._attempt()

    def run_once(self) -> RebuildResult | None:
        """One synchronous attempt (deterministic path for tests)."""
        return self._attempt()

    def _attempt(self) -> RebuildResult | None:
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            with self._cond:
                self._skipped_open += 1
            return None
        try:
            result = self.manager.refresh()
        except Exception as exc:  # noqa: BLE001 - a scan failure is a failure
            result = RebuildResult(error=f"{type(exc).__name__}: {exc}")
        with self._cond:
            self._attempts += 1
            if result is not None:
                self._last_result = result
        if result is None:
            # A no-op scan is a healthy pipeline: close a half-open
            # breaker that has nothing left to rebuild — without resetting
            # the failure count while the breaker is closed.
            if breaker is not None and not breaker.closed:
                breaker.record_success()
            return None
        if breaker is not None:
            if result.ok:
                breaker.record_success()
            else:
                breaker.record_failure()
        if result.ok and self.on_result is not None:
            self.on_result(result)
        return result

    # -- observability -------------------------------------------------------

    @property
    def stale(self) -> bool:
        """Whether responses should be marked stale (pipeline unhealthy)."""
        if self.manager.last_error is not None:
            return True
        breaker = self.breaker
        return breaker is not None and not breaker.closed

    def stats(self) -> dict:
        with self._cond:
            last = self._last_result
            out = {
                "running": self._thread is not None,
                "pending": self._pending,
                "attempts": self._attempts,
                "skipped_while_open": self._skipped_open,
                "debounce_s": self.debounce_s,
                "last_error": self.manager.last_error,
            }
        out["stale"] = self.stale
        if last is not None:
            out["last_duration_s"] = round(last.duration_s, 4)
        if self.breaker is not None:
            out["breaker"] = self.breaker.stats()
        return out
