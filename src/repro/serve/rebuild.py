"""Incremental rebuild support for the serving layer.

:class:`ServerState` is one immutable-ish generation of everything the
server needs: the parsed catalog, the renderable :class:`~repro.sitegen.site.Site`,
the search index, and the render plan keyed by URL.  :class:`RebuildManager`
watches the content directory (cheap mtime/size fingerprint, throttled) and,
when a source file changes, builds the *next* generation and diffs the two
render plans' signatures — the result names exactly the URLs whose rendered
bytes changed, which is what the page cache evicts.  Unchanged pages keep
their signatures, so a subsequent ``site.build(out, incremental=True)``
(the static-export path) re-renders only the dirty files.

Incremental pieces carried across generations:

* build signatures (so a static export after a refresh re-renders only
  dirty files),
* the search index — patched via
  :meth:`~repro.sitegen.search.SearchIndex.patched_from_catalog` for just
  the changed source documents instead of re-tokenizing all 38.

Refreshing is safe under the multi-worker server: a non-blocking mutex
ensures exactly one thread rebuilds while the rest keep serving the old
generation, and the swap itself is a single attribute assignment.

A broken edit (e.g. a half-saved Markdown file) never takes the server
down: the rebuild fails closed, the previous generation keeps serving, and
the error is reported in the rebuild result and ``/api/metrics``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.activities.catalog import Catalog, corpus_dir
from repro.sitegen.search import SearchIndex
from repro.sitegen.site import RenderTask, Site, SiteConfig

__all__ = ["ServerState", "RebuildManager", "RebuildResult", "scan_content"]


def scan_content(content_dir: str | Path) -> dict[str, tuple[int, int]]:
    """Fingerprint a content tree: file name -> (mtime_ns, size)."""
    directory = Path(content_dir)
    return {
        path.name: (path.stat().st_mtime_ns, path.stat().st_size)
        for path in sorted(directory.glob("*.md"))
    }


class ServerState:
    """One generation of the served corpus: catalog + site + plan + search."""

    def __init__(self, catalog: Catalog, config: SiteConfig | None = None,
                 search: SearchIndex | None = None):
        self.catalog = catalog
        self.site: Site = catalog.site(config)
        self.search = search if search is not None else SearchIndex.from_catalog(catalog)
        self.plan: list[RenderTask] = self.site.render_plan()
        self.plan_by_url: dict[str, RenderTask] = {t.url: t for t in self.plan}
        self._corpus_signature: str | None = None

    @classmethod
    def from_content_dir(cls, content_dir: str | Path,
                         config: SiteConfig | None = None,
                         search: SearchIndex | None = None) -> "ServerState":
        return cls(Catalog.from_directory(content_dir), config, search=search)

    @property
    def signatures(self) -> dict[str, str]:
        """URL -> render-plan signature for this generation."""
        return {task.url: task.signature for task in self.plan}

    @property
    def corpus_signature(self) -> str:
        """One signature over the whole generation (changes iff any page does).

        Responses derived from the full corpus (``/api/activities``,
        coverage tables, search results) are persisted under this value:
        any content change invalidates them all, which is exactly the
        bulk-invalidate the serving layer already applies on rebuild.
        """
        if self._corpus_signature is None:
            digest = hashlib.sha256()
            for task in self.plan:
                digest.update(task.url.encode("utf-8"))
                digest.update(task.signature.encode("utf-8"))
            self._corpus_signature = digest.hexdigest()[:20]
        return self._corpus_signature


@dataclass
class RebuildResult:
    """Outcome of one refresh check that found changed content."""

    changed_sources: list[str] = field(default_factory=list)
    dirty_urls: list[str] = field(default_factory=list)
    search_patched: int = 0                # documents re-tokenized (not 38)
    duration_s: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class RebuildManager:
    """Watches a content directory and swaps in new server generations."""

    def __init__(
        self,
        content_dir: str | Path | None = None,
        config: SiteConfig | None = None,
        min_interval_s: float = 1.0,
        clock=time.monotonic,
    ):
        self.content_dir = Path(content_dir) if content_dir else corpus_dir()
        self.config = config
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._fingerprint = scan_content(self.content_dir)
        self._last_check = clock()
        self._refresh_lock = threading.Lock()
        self.state = ServerState.from_content_dir(self.content_dir, config)
        self.last_error: str | None = None

    def maybe_refresh(self) -> RebuildResult | None:
        """Throttled change check: no-op within ``min_interval_s`` of the last.

        Safe to call from many worker threads: whichever thread wins the
        (non-blocking) refresh mutex does the work, the rest return
        immediately and keep serving the current generation.
        """
        if not self._refresh_lock.acquire(blocking=False):
            return None
        try:
            now = self._clock()
            if now - self._last_check < self.min_interval_s:
                return None
            self._last_check = now
            return self._refresh_locked()
        finally:
            self._refresh_lock.release()

    def refresh(self) -> RebuildResult | None:
        """Rescan the content dir; rebuild and diff if anything changed.

        Returns ``None`` when nothing changed, otherwise a
        :class:`RebuildResult`.  On a failed rebuild (unparseable content)
        the old generation stays live and ``result.error`` is set.
        """
        with self._refresh_lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> RebuildResult | None:
        fingerprint = scan_content(self.content_dir)
        if fingerprint == self._fingerprint:
            return None
        started = self._clock()
        changed = sorted(
            set(fingerprint.items()) ^ set(self._fingerprint.items())
        )
        result = RebuildResult(
            changed_sources=sorted({name for name, _ in changed})
        )
        self._fingerprint = fingerprint
        # Activity document names are source-file stems; patching only these
        # in the search index skips re-tokenizing the unchanged corpus.
        dirty_names = {Path(name).stem for name in result.changed_sources}
        try:
            catalog = Catalog.from_directory(self.content_dir)
            search = self.state.search.patched_from_catalog(catalog, dirty_names)
            new_state = ServerState(catalog, self.config, search=search)
        except Exception as exc:           # keep serving the old generation
            result.error = f"{type(exc).__name__}: {exc}"
            self.last_error = result.error
            result.duration_s = self._clock() - started
            return result
        result.search_patched = len(dirty_names)

        old_sigs = self.state.signatures
        new_sigs = new_state.signatures
        result.dirty_urls = sorted(
            url
            for url in set(old_sigs) | set(new_sigs)
            if old_sigs.get(url) != new_sigs.get(url)
        )
        # Unchanged pages carry their build signatures forward so a static
        # incremental export after this refresh only re-renders dirty files.
        new_state.site.seed_signatures(self.state.site.built_signatures)
        self.state = new_state
        self.last_error = None
        result.duration_s = self._clock() - started
        return result
