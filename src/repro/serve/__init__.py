"""``repro.serve``: the production serving layer.

Turns the one-shot static build into a live, queryable web service — the
form the paper's artifact (pdcunplugged.org) actually takes:

* :mod:`repro.serve.app` — stdlib WSGI app: rendered site + JSON API,
  request deadlines, stale marking, ``/healthz`` / ``/readyz``.
* :mod:`repro.serve.cache` — content-addressed LRU page cache (single
  mutex or lock-striped shards) with strong ETags and 304 revalidation.
* :mod:`repro.serve.persist` — on-disk cache + search-postings spill
  keyed by render-plan / catalog signature, so restarts warm-start
  instead of re-rendering; every load path tolerates corruption.
* :mod:`repro.serve.workers` — bounded worker pool + pooled WSGI server
  (the ``--workers N`` mode); a bounded queue sheds with a raw 503.
* :mod:`repro.serve.prefork` — the ``--worker-model process`` mode: a
  supervisor binds once and forks N accepting worker processes, with
  cross-process metrics merging, generation coordination over a board +
  control sockets, and crash respawn with backoff.
* :mod:`repro.serve.rebuild` — content watching and incremental
  generation swaps (only dirty URLs are evicted / re-rendered; the
  search index is patched, not rebuilt); the background rebuild thread.
* :mod:`repro.serve.resilience` — circuit breaker, request deadlines,
  load shedding: the degradation ladder.
* :mod:`repro.serve.faults` — deterministic, seedable fault injection
  (``--fault-spec``) so every failure path above is chaos-tested.
* :mod:`repro.serve.retrypolicy` — shared exponential-backoff retry
  schedule (also used by :mod:`repro.sitegen.linkcheck`).
* :mod:`repro.serve.metrics` — per-route counters, latency percentiles
  (to p99.9), cache hit ratios, breaker/shed/stale counters
  (``/api/metrics``); lock-striped per route.
* :mod:`repro.serve.loadgen` — deterministic Zipf + API-mix load
  generation, serial / concurrent in-process / over-HTTP runners, with
  shed-rate / limited-rate / stale-hit-rate accounting, multi-tenant
  key mixes, and ``Retry-After``-honoring retries.
* :mod:`repro.serve.tenancy` — the multi-tenant admission edge
  (``--tenants``): API-key resolution, sliding-window per-tenant rate
  limits with free/standard/unlimited tiers, per-tier sweep quotas,
  and fleet-wide window reconciliation over the control sockets.
"""

from repro.serve.app import Response, ServeApp, create_app, create_server, run
from repro.serve.cache import (
    CacheEntry,
    PageCache,
    ShardedPageCache,
    checksum,
    make_etag,
)
from repro.serve.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    parse_fault_spec,
)
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    LoadRequest,
    call_app,
    parse_tenant_mix,
    run_load,
    run_load_concurrent,
    run_load_http,
)
from repro.serve.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    RouteStats,
    merge_exports,
)
from repro.serve.persist import CacheStore
from repro.serve.prefork import (
    FleetLinks,
    GenerationBoard,
    PreforkServer,
    run_prefork,
)
from repro.serve.rebuild import (
    BackgroundRebuilder,
    RebuildManager,
    RebuildResult,
    ServerState,
)
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    LoadShedder,
)
from repro.serve.retrypolicy import RetryError, RetryPolicy, is_transient
from repro.serve.tenancy import (
    TenancyConfig,
    TenancyConfigError,
    TenancySync,
    TenantGate,
    TierPolicy,
)
from repro.serve.workers import PooledWSGIServer, PoolSaturated, WorkerPool

__all__ = [
    "BackgroundRebuilder",
    "CacheEntry",
    "CacheStore",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultRule",
    "FleetLinks",
    "GenerationBoard",
    "InjectedFault",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadReport",
    "LoadRequest",
    "LoadShedder",
    "MetricsRegistry",
    "PageCache",
    "PoolSaturated",
    "PooledWSGIServer",
    "PreforkServer",
    "RebuildManager",
    "RebuildResult",
    "Response",
    "RetryError",
    "RetryPolicy",
    "RouteStats",
    "ServeApp",
    "ServerState",
    "ShardedPageCache",
    "TenancyConfig",
    "TenancyConfigError",
    "TenancySync",
    "TenantGate",
    "TierPolicy",
    "WorkerPool",
    "call_app",
    "checksum",
    "create_app",
    "create_server",
    "is_transient",
    "make_etag",
    "merge_exports",
    "parse_fault_spec",
    "parse_tenant_mix",
    "run",
    "run_load",
    "run_prefork",
    "run_load_concurrent",
    "run_load_http",
]
