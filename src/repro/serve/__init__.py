"""``repro.serve``: the production serving layer.

Turns the one-shot static build into a live, queryable web service — the
form the paper's artifact (pdcunplugged.org) actually takes:

* :mod:`repro.serve.app` — stdlib WSGI app: rendered site + JSON API.
* :mod:`repro.serve.cache` — content-addressed LRU page cache with
  strong ETags and 304 revalidation.
* :mod:`repro.serve.rebuild` — content watching and incremental
  generation swaps (only dirty URLs are evicted / re-rendered).
* :mod:`repro.serve.metrics` — per-route counters, latency percentiles,
  cache hit ratios (``/api/metrics``).
* :mod:`repro.serve.loadgen` — deterministic Zipf load generation for
  benchmarks and acceptance tests.
"""

from repro.serve.app import Response, ServeApp, create_app, create_server, run
from repro.serve.cache import CacheEntry, PageCache, make_etag
from repro.serve.loadgen import LoadGenerator, LoadReport, call_app, run_load
from repro.serve.metrics import LatencyHistogram, MetricsRegistry, RouteStats
from repro.serve.rebuild import RebuildManager, RebuildResult, ServerState

__all__ = [
    "CacheEntry",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadReport",
    "MetricsRegistry",
    "PageCache",
    "RebuildManager",
    "RebuildResult",
    "Response",
    "RouteStats",
    "ServeApp",
    "ServerState",
    "call_app",
    "create_app",
    "create_server",
    "make_etag",
    "run",
    "run_load",
]
