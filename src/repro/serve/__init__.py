"""``repro.serve``: the production serving layer.

Turns the one-shot static build into a live, queryable web service — the
form the paper's artifact (pdcunplugged.org) actually takes:

* :mod:`repro.serve.app` — stdlib WSGI app: rendered site + JSON API.
* :mod:`repro.serve.cache` — content-addressed LRU page cache (single
  mutex or lock-striped shards) with strong ETags and 304 revalidation.
* :mod:`repro.serve.persist` — on-disk cache spill keyed by render-plan
  signature, so restarts warm-start instead of re-rendering.
* :mod:`repro.serve.workers` — bounded worker pool + pooled WSGI server
  (the ``--workers N`` mode).
* :mod:`repro.serve.rebuild` — content watching and incremental
  generation swaps (only dirty URLs are evicted / re-rendered; the
  search index is patched, not rebuilt).
* :mod:`repro.serve.metrics` — per-route counters, latency percentiles
  (to p99.9), cache hit ratios (``/api/metrics``); lock-striped per route.
* :mod:`repro.serve.loadgen` — deterministic Zipf + API-mix load
  generation, serial / concurrent in-process / over-HTTP runners.
"""

from repro.serve.app import Response, ServeApp, create_app, create_server, run
from repro.serve.cache import (
    CacheEntry,
    PageCache,
    ShardedPageCache,
    make_etag,
)
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    LoadRequest,
    call_app,
    run_load,
    run_load_concurrent,
    run_load_http,
)
from repro.serve.metrics import LatencyHistogram, MetricsRegistry, RouteStats
from repro.serve.persist import CacheStore
from repro.serve.rebuild import RebuildManager, RebuildResult, ServerState
from repro.serve.workers import PooledWSGIServer, WorkerPool

__all__ = [
    "CacheEntry",
    "CacheStore",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadReport",
    "LoadRequest",
    "MetricsRegistry",
    "PageCache",
    "PooledWSGIServer",
    "RebuildManager",
    "RebuildResult",
    "Response",
    "RouteStats",
    "ServeApp",
    "ServerState",
    "ShardedPageCache",
    "WorkerPool",
    "call_app",
    "create_app",
    "create_server",
    "make_etag",
    "run",
    "run_load",
    "run_load_concurrent",
    "run_load_http",
]
