"""Content-addressed in-memory page cache with LRU eviction.

Every cached body is addressed by the strong ETag derived from its bytes
(sha256), so conditional requests (``If-None-Match``) can be answered with
``304 Not Modified`` without touching the renderer, and two caches holding
the same bytes always agree on the validator.  Eviction is plain LRU over
a capacity in entries; invalidation is per-path (the incremental rebuilder
evicts exactly the URLs whose render-plan signature changed).

Two cache shapes share one interface:

* :class:`PageCache` — a single LRU map under one mutex.  Fine for a
  single-threaded server, but every concurrent GET serializes on that
  mutex.
* :class:`ShardedPageCache` — lock striping: N independent
  :class:`PageCache` shards, a request path hashing (crc32) to exactly
  one shard, so concurrent GETs for different pages proceed in parallel.

Both record *lock wait time* — how long callers spent blocked on a cache
mutex that another thread held — which is the direct measure of cache
contention that ``/api/metrics`` exposes per shard.
"""

from __future__ import annotations

import hashlib
import threading
import time
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import sanitize

__all__ = ["CacheEntry", "PageCache", "ShardedPageCache", "checksum",
           "make_etag"]


def make_etag(body: bytes) -> str:
    """Strong ETag for a response body (content-addressed, quoted)."""
    return '"' + hashlib.sha256(body).hexdigest()[:24] + '"'


def checksum(data: bytes) -> str:
    """Unquoted content hash (same digest family as :func:`make_etag`).

    Used by the persistence layer to verify payloads that are not HTTP
    bodies (e.g. serialized search postings) on the way back from disk.
    """
    return hashlib.sha256(data).hexdigest()[:24]


def shard_for(path: str, shards: int) -> int:
    """Stable shard index for a request path (crc32, process-independent)."""
    return zlib.crc32(path.encode("utf-8")) % shards


@dataclass(frozen=True)
class CacheEntry:
    """One cached response: body bytes plus derived metadata."""

    path: str
    body: bytes
    content_type: str
    etag: str

    @property
    def size(self) -> int:
        return len(self.body)


class PageCache:
    """Thread-safe LRU cache mapping request paths to rendered responses."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        sanitize.register_lock(self, "_lock", "PageCache._lock")
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.lock_wait_s = 0.0

    @contextmanager
    def _locked(self):
        """Acquire the mutex, accumulating time spent waiting for it.

        The fast path (uncontended lock) is a single non-blocking acquire;
        only a contended acquire pays for two clock reads.
        """
        if not self._lock.acquire(blocking=False):
            started = time.perf_counter()
            self._lock.acquire()
            self.lock_wait_s += time.perf_counter() - started
        try:
            yield
        finally:
            self._lock.release()

    def __len__(self) -> int:
        with self._locked():
            return len(self._entries)

    def __contains__(self, path: str) -> bool:
        with self._locked():
            return path in self._entries

    def get(self, path: str) -> CacheEntry | None:
        """Look up ``path``, promoting it to most-recently-used on a hit."""
        with self._locked():
            entry = self._entries.get(path)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(path)
            self.hits += 1
            return entry

    def put(self, path: str, body: bytes,
            content_type: str = "text/html; charset=utf-8") -> CacheEntry:
        """Insert (or refresh) ``path``, evicting the LRU entry if full."""
        entry = CacheEntry(path=path, body=body, content_type=content_type,
                           etag=make_etag(body))
        with self._locked():
            if path in self._entries:
                self._entries.move_to_end(path)
            self._entries[path] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def invalidate(self, paths: Iterable[str]) -> int:
        """Drop the given paths (and any query-string variants of them)."""
        dropped = 0
        with self._locked():
            for path in paths:
                victims = [
                    key for key in self._entries
                    if key == path or key.startswith(path + "?")
                ]
                for key in victims:
                    del self._entries[key]
                    dropped += 1
            self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        with self._locked():
            self.invalidations += len(self._entries)
            self._entries.clear()

    def entries(self) -> list[CacheEntry]:
        """Snapshot of the live entries, LRU first (for persistence)."""
        with self._locked():
            return list(self._entries.values())

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._locked():
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "bytes": sum(e.size for e in self._entries.values()),
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hit_ratio, 4),
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "lock_wait_ms": round(self.lock_wait_s * 1e3, 4),
            }


class ShardedPageCache:
    """Lock-striped page cache: N independent LRU shards keyed by path hash.

    Same interface as :class:`PageCache`; a lookup touches exactly one
    shard's mutex, so worker threads serving different pages never
    contend.  Invalidation broadcasts to every shard because a path's
    query-string variants (``/api/search?q=…``) hash to different shards
    than the bare path.
    """

    def __init__(self, capacity: int = 512, shards: int = 8):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        per_shard = max(1, -(-capacity // shards))      # ceil division
        self.capacity = per_shard * shards
        self._shards: tuple[PageCache, ...] = tuple(
            PageCache(per_shard) for _ in range(shards)
        )

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard(self, path: str) -> PageCache:
        return self._shards[shard_for(path, len(self._shards))]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, path: str) -> bool:
        return path in self._shard(path)

    def get(self, path: str) -> CacheEntry | None:
        return self._shard(path).get(path)

    def put(self, path: str, body: bytes,
            content_type: str = "text/html; charset=utf-8") -> CacheEntry:
        return self._shard(path).put(path, body, content_type)

    def invalidate(self, paths: Iterable[str]) -> int:
        paths = list(paths)
        return sum(shard.invalidate(paths) for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def entries(self) -> list[CacheEntry]:
        return [entry for shard in self._shards for entry in shard.entries()]

    def _totals(self) -> Iterator[tuple[int, int, int, int, float]]:
        for shard in self._shards:
            yield (shard.hits, shard.misses, shard.evictions,
                   shard.invalidations, shard.lock_wait_s)

    @property
    def hits(self) -> int:
        return sum(t[0] for t in self._totals())

    @property
    def misses(self) -> int:
        return sum(t[1] for t in self._totals())

    @property
    def evictions(self) -> int:
        return sum(t[2] for t in self._totals())

    @property
    def invalidations(self) -> int:
        return sum(t[3] for t in self._totals())

    @property
    def lock_wait_s(self) -> float:
        return sum(t[4] for t in self._totals())

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        shard_stats = [shard.stats() for shard in self._shards]
        return {
            "entries": sum(s["entries"] for s in shard_stats),
            "capacity": self.capacity,
            "bytes": sum(s["bytes"] for s in shard_stats),
            "hits": sum(s["hits"] for s in shard_stats),
            "misses": sum(s["misses"] for s in shard_stats),
            "hit_ratio": round(self.hit_ratio, 4),
            "evictions": sum(s["evictions"] for s in shard_stats),
            "invalidations": sum(s["invalidations"] for s in shard_stats),
            "lock_wait_ms": round(sum(s["lock_wait_ms"] for s in shard_stats), 4),
            "shard_count": len(self._shards),
            "shards": shard_stats,
        }
