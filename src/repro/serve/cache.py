"""Content-addressed in-memory page cache with LRU eviction.

Every cached body is addressed by the strong ETag derived from its bytes
(sha256), so conditional requests (``If-None-Match``) can be answered with
``304 Not Modified`` without touching the renderer, and two caches holding
the same bytes always agree on the validator.  Eviction is plain LRU over
a capacity in entries; invalidation is per-path (the incremental rebuilder
evicts exactly the URLs whose render-plan signature changed).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

__all__ = ["CacheEntry", "PageCache", "make_etag"]


def make_etag(body: bytes) -> str:
    """Strong ETag for a response body (content-addressed, quoted)."""
    return '"' + hashlib.sha256(body).hexdigest()[:24] + '"'


@dataclass(frozen=True)
class CacheEntry:
    """One cached response: body bytes plus derived metadata."""

    path: str
    body: bytes
    content_type: str
    etag: str

    @property
    def size(self) -> int:
        return len(self.body)


class PageCache:
    """Thread-safe LRU cache mapping request paths to rendered responses."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return path in self._entries

    def get(self, path: str) -> CacheEntry | None:
        """Look up ``path``, promoting it to most-recently-used on a hit."""
        with self._lock:
            entry = self._entries.get(path)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(path)
            self.hits += 1
            return entry

    def put(self, path: str, body: bytes,
            content_type: str = "text/html; charset=utf-8") -> CacheEntry:
        """Insert (or refresh) ``path``, evicting the LRU entry if full."""
        entry = CacheEntry(path=path, body=body, content_type=content_type,
                           etag=make_etag(body))
        with self._lock:
            if path in self._entries:
                self._entries.move_to_end(path)
            self._entries[path] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def invalidate(self, paths: Iterable[str]) -> int:
        """Drop the given paths (and any query-string variants of them)."""
        dropped = 0
        with self._lock:
            for path in paths:
                victims = [
                    key for key in self._entries
                    if key == path or key.startswith(path + "?")
                ]
                for key in victims:
                    del self._entries[key]
                    dropped += 1
            self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "bytes": sum(e.size for e in self._entries.values()),
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hit_ratio, 4),
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
