"""Worker-pool concurrency for the serving layer.

``wsgiref``'s stock server handles one connection at a time: a single slow
client head-of-line blocks every other request.  This module provides the
``--workers N`` mode:

* :class:`WorkerPool` — a fixed pool of N daemon threads draining a task
  queue, with counters (submitted/completed/errors, busy gauge) exposed
  in ``/api/metrics``.  A *pool* (rather than thread-per-request) bounds
  concurrency under load spikes: excess connections queue instead of
  spawning unbounded threads.
* :class:`PooledWSGIServer` — a ``WSGIServer`` whose accept loop hands
  each accepted connection to the pool, so N requests are serviced
  concurrently while the listener keeps accepting.

The task queue can be *bounded* (``max_queue``): past the watermark,
:meth:`WorkerPool.submit` raises :class:`PoolSaturated` instead of
queueing — and :class:`PooledWSGIServer` turns that into a raw
``503 + Retry-After`` written straight to the socket, so an overloaded
server sheds excess connections in microseconds instead of queueing them
into timeout territory (the load-shedding rung of the degradation
ladder).

Pure stdlib; the pool is also reusable for any fire-and-forget work.
"""

from __future__ import annotations

import queue
import threading
from wsgiref.simple_server import WSGIServer

from repro import sanitize
from repro.serve.resilience import bounded_retry_after

__all__ = ["WorkerPool", "PooledWSGIServer", "PoolSaturated"]

_SHUTDOWN = object()

# -- worker-thread excepthook -------------------------------------------------
#
# ``_run`` catches ``Exception`` around every task, so only
# ``BaseException`` escapes a worker thread (``KeyboardInterrupt``, a
# handler calling into C that re-raises, ...).  By default that
# traceback goes to stderr via ``threading.excepthook`` and the thread
# silently dies — the pool keeps accepting work it can no longer drain.
# A process-wide chaining hook routes such deaths back to the owning
# pool: it counts a ``worker_uncaught`` and respawns the worker, and
# every non-pool thread falls through to the previously installed hook.

_excepthook_lock = threading.Lock()
_excepthook_installed = False


def _install_excepthook() -> None:
    global _excepthook_installed
    with _excepthook_lock:
        if _excepthook_installed:
            return
        previous = threading.excepthook

        def pool_excepthook(args):
            pool = getattr(args.thread, "_worker_pool", None)
            if pool is not None:
                pool._note_uncaught(args.thread)
                return
            previous(args)

        threading.excepthook = pool_excepthook
        _excepthook_installed = True


class PoolSaturated(RuntimeError):
    """The bounded task queue is at its watermark; the task was refused.

    ``queued`` carries the queue depth at refusal time, so the shed path
    can derive a meaningful ``Retry-After`` from actual backlog.
    """

    queued: int = 0


class WorkerPool:
    """Fixed pool of daemon worker threads draining a shared task queue."""

    def __init__(self, workers: int, name: str = "serve-worker",
                 max_queue: int | None = None):
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.workers = workers
        self.max_queue = max_queue
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        sanitize.register_lock(self, "_lock", "WorkerPool._lock")
        self._submitted = 0
        self._completed = 0
        self._errors = 0
        self._busy = 0
        self._shed = 0
        self._abandoned = 0
        self._uncaught = 0
        self._closed = False
        self._name = name
        _install_excepthook()
        self._threads = [
            self._spawn(f"{name}-{i}") for i in range(workers)
        ]

    def _spawn(self, name: str) -> threading.Thread:
        thread = threading.Thread(target=self._run, name=name, daemon=True)
        thread._worker_pool = self          # excepthook routing
        thread.start()
        return thread

    def _note_uncaught(self, dead: threading.Thread) -> None:
        """A BaseException escaped ``_run`` and killed ``dead``.

        Count it where ``/api/metrics`` can see it and respawn the
        worker so the pool's capacity survives — the resilience
        contract: uncaught means counted, never silently smaller.
        """
        with self._lock:
            self._uncaught += 1
            if self._closed:
                return
        replacement = self._spawn(dead.name)
        with self._lock:
            self._threads = [replacement if t is dead else t
                             for t in self._threads]

    def submit(self, fn, *args) -> None:
        """Enqueue ``fn(*args)`` for execution on some worker thread.

        Raises :class:`PoolSaturated` (and counts a shed) when a bounded
        queue is at its watermark — the caller decides how to refuse.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            queued = self._submitted - self._completed - self._busy
            if self.max_queue is not None and queued >= self.max_queue:
                self._shed += 1
                exc = PoolSaturated(
                    f"task queue at watermark ({queued} >= {self.max_queue})")
                exc.queued = queued
                raise exc
            self._submitted += 1
        self._queue.put((fn, args))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            fn, args = item
            with self._lock:
                self._busy += 1
            try:
                fn(*args)
            except Exception:
                with self._lock:
                    self._errors += 1
            finally:
                with self._lock:
                    self._busy -= 1
                    self._completed += 1

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Block until every submitted task completed, or the deadline.

        Returns ``True`` when the queue fully drained.  An abandoned
        drain (deadline hit with work still in flight) is counted in
        :meth:`stats` as ``abandoned`` — the graceful-shutdown metric.
        """
        deadline = threading.Event()
        waited = 0.0
        step = 0.005
        while waited < timeout_s:
            with self._lock:
                if self._completed >= self._submitted:
                    return True
            deadline.wait(step)
            waited += step
        with self._lock:
            self._abandoned += max(0, self._submitted - self._completed)
        return False

    def pending(self) -> int:
        """Tasks submitted but not yet completed (queued + in flight)."""
        with self._lock:
            return max(0, self._submitted - self._completed)

    def shutdown(self, wait: bool = True, timeout_s: float = 5.0) -> None:
        """Stop accepting work and (optionally) wait for workers to exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout_s)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "submitted": self._submitted,
                "completed": self._completed,
                "errors": self._errors,
                "busy": self._busy,
                "queued": max(0, self._submitted - self._completed - self._busy),
                "shed": self._shed,
                "abandoned": self._abandoned,
                "worker_uncaught": self._uncaught,
                "max_queue": self.max_queue,
            }


class PooledWSGIServer(WSGIServer):
    """A WSGI server whose connections are serviced by a :class:`WorkerPool`.

    The accept loop never blocks on request handling: each accepted
    connection is enqueued and some worker finishes it, mirroring
    ``socketserver.ThreadingMixIn`` but with bounded, reusable threads.

    Shutdown is graceful: :meth:`server_close` first stops accepting,
    then *drains* in-flight and queued requests up to ``drain_timeout_s``
    before tearing the pool down, so a close under load finishes the
    work it already accepted instead of abandoning it mid-response.

    ``listen_socket`` adopts an externally bound (and already listening)
    socket instead of binding a new one — the pre-fork mode, where the
    parent binds once and every worker process accepts on the shared
    socket.
    """

    #: Deeper accept backlog than the stock 5 — bursts queue in the kernel
    #: instead of being refused while all workers are busy.
    request_queue_size = 64

    #: Pre-rendered shed response template: refusing must cost
    #: microseconds, so no WSGI machinery runs — the bytes go straight
    #: to the socket, with only the Retry-After hint (derived from the
    #: queue depth at refusal time) formatted per shed.
    _SHED_TEMPLATE = (b"HTTP/1.1 503 Service Unavailable\r\n"
                      b"Retry-After: %d\r\n"
                      b"Content-Length: 0\r\n"
                      b"Connection: close\r\n\r\n")

    def __init__(self, server_address, handler_class, pool: WorkerPool,
                 drain_timeout_s: float = 5.0, listen_socket=None):
        self.pool = pool
        self.drain_timeout_s = drain_timeout_s
        self.drained_clean = True
        if listen_socket is None:
            super().__init__(server_address, handler_class)
            return
        # Adopt a shared, pre-bound socket: skip bind/listen entirely and
        # replicate what server_bind would have derived from it.
        super().__init__(server_address, handler_class,
                         bind_and_activate=False)
        self.socket.close()                  # the unused one we created
        self.socket = listen_socket
        host, port = listen_socket.getsockname()[:2]
        self.server_address = (host, port)
        self.server_name = host
        self.server_port = port
        self.setup_environ()

    def process_request(self, request, client_address) -> None:
        try:
            self.pool.submit(self._handle_request, request, client_address)
        except PoolSaturated as exc:
            self._shed_request(request, exc.queued)

    def _shed_request(self, request, queued: int = 0) -> None:
        # Back-off hint from backlog: roughly how many full pool passes
        # it takes to drain what is already queued, bounded like every
        # other refusal path.
        retry_after = bounded_retry_after(queued / max(1, self.pool.workers))
        try:
            request.sendall(self._SHED_TEMPLATE % retry_after)
        except OSError:
            pass                     # client already gone: nothing to refuse
        finally:
            self.shutdown_request(request)

    def _handle_request(self, request, client_address) -> None:
        # Same contract as ThreadingMixIn.process_request_thread.
        try:
            self.finish_request(request, client_address)
        except Exception:
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    def server_close(self) -> None:
        # Order matters: stop accepting first (close the listener), then
        # drain what was already accepted with a bounded deadline, and
        # only then tear the pool down.  The old behaviour shut the pool
        # down immediately, abandoning in-flight requests on close.
        super().server_close()
        self.drained_clean = self.pool.drain(self.drain_timeout_s)
        self.pool.shutdown(wait=True, timeout_s=2.0)
