"""Deterministic fault injection for the serving layer (chaos harness).

Every failure path in ``repro.serve`` — rebuild errors, cache-read
I/O errors and corruption, torn persist writes, slow or failing renders —
is exercised by *injected* faults rather than hoped-for ones.  A
:class:`FaultPlan` is a seeded set of :class:`FaultRule`\\ s; instrumented
call sites ask the plan whether this particular operation fails, and the
plan answers deterministically from its own RNG, so a chaos test or a
``--fault-spec`` run replays identically under the same seed.

Operations (the instrumented sites)::

    rebuild        building the next server generation (RebuildManager)
    cache-read     reading a persisted blob / postings file (CacheStore)
    persist-write  spilling cache state to disk (CacheStore)
    render         rendering a response body (ServeApp)
    sweep-run      dispatching one sweep point to a worker (SweepManager)
    sweep-persist  writing a sweep result record to disk (ResultStore)
    rate-limit     deciding tenant admission at the edge (TenantGate)

Kinds::

    error     raise :class:`InjectedFault` (an ``OSError``)
    latency   sleep ``ms`` before the operation proceeds
    corrupt   flip bytes in data read from disk (checksums must catch it)
    partial   truncate data written to disk (a torn write)

Spec grammar (the ``--fault-spec`` flag), comma-separated clauses::

    <op>:<kind>@<rate>[:key=value ...]
    e.g.  rebuild:error@0.3,cache-read:error@0.05,render:latency@0.1:ms=20
    e.g.  rebuild:error@1.0:limit=4        # first four rebuilds fail, then clear

Thread-safe; the decision (RNG draw + counters) happens under the plan's
mutex, the side effect (sleeping, raising) outside it.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

__all__ = ["FaultRule", "FaultPlan", "InjectedFault",
           "OPS", "KINDS", "parse_fault_spec"]

OPS = ("rebuild", "cache-read", "persist-write", "render",
       "sweep-run", "sweep-persist", "rate-limit")
KINDS = ("error", "latency", "corrupt", "partial")


class InjectedFault(OSError):
    """An artificially injected I/O failure (distinguishable in logs)."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: with probability ``rate``, op suffers ``kind``."""

    op: str
    kind: str
    rate: float
    latency_s: float = 0.0           # for kind == "latency"
    limit: int | None = None         # stop injecting after this many hits

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unknown fault op {self.op!r} (expected one of {OPS})")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {KINDS})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be >= 0")


def parse_fault_spec(spec: str, seed: int = 0,
                     sleep=time.sleep) -> "FaultPlan":
    """Parse a ``--fault-spec`` string into a :class:`FaultPlan`."""
    rules = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        head, _, rate_tail = clause.partition("@")
        if not _ or ":" not in head:
            raise ValueError(
                f"bad fault clause {clause!r} (expected op:kind@rate[...])")
        op, _, kind = head.partition(":")
        parts = rate_tail.split(":")
        try:
            rate = float(parts[0])
        except ValueError:
            raise ValueError(f"bad fault rate in {clause!r}") from None
        latency_s = 0.0
        limit = None
        for extra in parts[1:]:
            key, sep, value = extra.partition("=")
            if not sep:
                raise ValueError(f"bad fault option {extra!r} in {clause!r} "
                                 f"(expected key=value)")
            if key == "ms":
                latency_s = float(value) / 1e3
            elif key == "s":
                latency_s = float(value)
            elif key == "limit":
                limit = int(value)
            else:
                raise ValueError(f"unknown fault option {key!r} in {clause!r}")
        rules.append(FaultRule(op.strip(), kind.strip(), rate,
                               latency_s=latency_s, limit=limit))
    return FaultPlan(rules, seed=seed, sleep=sleep)


class FaultPlan:
    """A seeded, thread-safe collection of fault rules plus counters."""

    def __init__(self, rules=(), seed: int = 0, sleep=time.sleep):
        self.rules = tuple(rules)
        self.seed = seed
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._enabled = True
        self._injected: dict[tuple[str, str], int] = {}
        self._checked: dict[str, int] = {}

    @classmethod
    def parse(cls, spec: str, seed: int = 0, sleep=time.sleep) -> "FaultPlan":
        return parse_fault_spec(spec, seed=seed, sleep=sleep)

    # -- control (test API) --------------------------------------------------

    def disable(self) -> None:
        """Clear all faults: every subsequent check passes."""
        with self._lock:
            self._enabled = False

    def enable(self) -> None:
        with self._lock:
            self._enabled = True

    @property
    def active(self) -> bool:
        with self._lock:
            return self._enabled and bool(self.rules)

    # -- decisions -----------------------------------------------------------

    def _draw(self, op: str, kinds: tuple[str, ...]) -> FaultRule | None:
        """Decide (under the mutex) which rule, if any, fires for ``op``."""
        with self._lock:
            self._checked[op] = self._checked.get(op, 0) + 1
            if not self._enabled:
                return None
            for rule in self.rules:
                if rule.op != op or rule.kind not in kinds:
                    continue
                key = (rule.op, rule.kind)
                if rule.limit is not None \
                        and self._injected.get(key, 0) >= rule.limit:
                    continue
                if self._rng.random() < rule.rate:
                    self._injected[key] = self._injected.get(key, 0) + 1
                    return rule
            return None

    def maybe_fail(self, op: str) -> None:
        """Inject latency and/or raise for ``op`` per the plan.

        Latency rules sleep (outside the mutex); error rules raise
        :class:`InjectedFault`.  Both can fire on one call — a slow
        *and* failing operation is a realistic failure mode.
        """
        latency = self._draw(op, ("latency",))
        if latency is not None and latency.latency_s > 0:
            self._sleep(latency.latency_s)
        error = self._draw(op, ("error",))
        if error is not None:
            raise InjectedFault(f"injected {op} fault")

    def mangle_read(self, op: str, data: bytes) -> bytes:
        """Apply a ``corrupt`` rule to bytes read from disk."""
        rule = self._draw(op, ("corrupt",))
        if rule is None or not data:
            return data
        return bytes([data[0] ^ 0xFF]) + data[1:]

    def mangle_write(self, op: str, data: bytes) -> bytes:
        """Apply a ``partial`` rule to bytes about to be written."""
        rule = self._draw(op, ("partial",))
        if rule is None or len(data) < 2:
            return data
        return data[: len(data) // 2]

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self._enabled,
                "rules": len(self.rules),
                "seed": self.seed,
                "checked": dict(sorted(self._checked.items())),
                "injected": {
                    f"{op}:{kind}": count
                    for (op, kind), count in sorted(self._injected.items())
                },
                "total_injected": sum(self._injected.values()),
            }

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())
