"""Request metrics for the serving layer.

Per-route request counters, status-class tallies, and fixed-bucket latency
histograms with percentile estimation (p50/p95/p99/p99.9), plus cache
hit-ratio counters — everything ``/api/metrics`` reports.  Pure stdlib,
thread-safe, and deterministic given a request sequence.

Locking is striped for the multi-worker server: the registry mutex only
guards the route table and the global counters, while each
:class:`RouteStats` carries its own mutex for its counters and histogram.
Two workers recording requests for *different* routes therefore never
contend on a shared lock — the same striping idea as the sharded page
cache.

The histogram is the classic Prometheus-style cumulative-bucket design:
log-spaced upper bounds, percentiles estimated by linear interpolation
inside the bucket that crosses the requested rank.  Exact values are
intentionally not retained (bounded memory under sustained load).

Cross-process aggregation (the pre-fork serving mode): every piece of
state is *mergeable*.  :meth:`MetricsRegistry.export` emits a raw,
JSON-safe dump — bucket counts, not percentiles — that crosses a process
boundary losslessly, and :func:`merge_exports` folds any number of those
dumps back into one registry, so fleet-wide percentiles are computed from
the merged histograms rather than averaging per-worker percentiles
(which would be wrong).
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from repro import sanitize

__all__ = ["LatencyHistogram", "RouteStats", "TenantStats", "MetricsRegistry",
           "DEFAULT_BUCKETS_S", "merge_exports"]

#: Log-spaced latency bucket upper bounds, in seconds (100 µs .. 10 s).
DEFAULT_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated percentiles.

    Not internally synchronized: the owning :class:`RouteStats` serializes
    writes under its own mutex.
    """

    def __init__(self, buckets_s: tuple[float, ...] = DEFAULT_BUCKETS_S):
        self.bounds = tuple(sorted(buckets_s))
        self.counts = [0] * (len(self.bounds) + 1)   # +1 overflow bucket
        self.count = 0
        self.sum_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        self.count += 1
        self.sum_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0 < p <= 100) in seconds.

        Linear interpolation within the crossing bucket; the overflow
        bucket reports the observed maximum.
        """
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            bucket = self.counts[i]
            if cumulative + bucket >= rank:
                if bucket == 0:
                    return bound
                frac = (rank - cumulative) / bucket
                return min(lower + frac * (bound - lower), self.max_s)
            cumulative += bucket
            lower = bound
        return self.max_s

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_s * 1e3, 4),
            "min_ms": round(self.min_s * 1e3, 4) if self.count else 0.0,
            "max_ms": round(self.max_s * 1e3, 4),
            "p50_ms": round(self.percentile(50) * 1e3, 4),
            "p95_ms": round(self.percentile(95) * 1e3, 4),
            "p99_ms": round(self.percentile(99) * 1e3, 4),
            "p999_ms": round(self.percentile(99.9) * 1e3, 4),
        }

    def export(self) -> dict:
        """Raw, mergeable dump (bucket counts, not percentiles)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum_s": self.sum_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s,
        }

    def merge_export(self, export: dict) -> None:
        """Fold another histogram's raw export into this one.

        Exports with different bucket bounds cannot be merged bucket-wise;
        their observations are folded through :meth:`observe` at each
        bucket's upper bound (a conservative approximation) so a
        mixed-version fleet still aggregates instead of crashing.
        """
        count = int(export.get("count", 0))
        if not count:
            return
        bounds = tuple(export.get("bounds", ()))
        counts = list(export.get("counts", ()))
        if bounds == self.bounds and len(counts) == len(self.counts):
            for i, n in enumerate(counts):
                self.counts[i] += int(n)
        else:
            for bound, n in zip(bounds, counts):
                self.counts[self._bucket_index(float(bound))] += int(n)
            if len(counts) > len(bounds):       # the overflow bucket
                self.counts[-1] += int(counts[len(bounds)])
        self.count += count
        self.sum_s += float(export.get("sum_s", 0.0))
        min_s = export.get("min_s")
        if min_s is not None:
            self.min_s = min(self.min_s, float(min_s))
        self.max_s = max(self.max_s, float(export.get("max_s", 0.0)))

    def _bucket_index(self, seconds: float) -> int:
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                return i
        return len(self.bounds)


@dataclass
class RouteStats:
    """Counters for one route pattern (e.g. ``/activities/<slug>/``).

    Carries its own mutex so concurrent workers recording different
    routes never share a lock.
    """

    requests: int = 0
    errors: int = 0                         # responses with status >= 400
    statuses: Counter = field(default_factory=Counter)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def __post_init__(self) -> None:
        sanitize.register_lock(self, "_lock", "RouteStats._lock")

    def record(self, status: int, elapsed_s: float) -> None:
        with self._lock:
            self.requests += 1
            self.statuses[status] += 1
            if status >= 400:
                self.errors += 1
            self.latency.observe(elapsed_s)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
                "latency": self.latency.snapshot(),
            }

    def export(self) -> dict:
        """Raw, mergeable dump of this route's counters."""
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "statuses": {str(k): v for k, v in self.statuses.items()},
                "latency": self.latency.export(),
            }

    def merge_export(self, export: dict) -> None:
        with self._lock:
            self.requests += int(export.get("requests", 0))
            self.errors += int(export.get("errors", 0))
            for status, n in export.get("statuses", {}).items():
                self.statuses[int(status)] += int(n)
            self.latency.merge_export(export.get("latency", {}))


@dataclass
class TenantStats:
    """Counters for one tenant at the admission edge.

    Striped like :class:`RouteStats` (own mutex), and mergeable the same
    way so the pre-fork fleet reports true per-tenant percentiles.  The
    latency histogram records *served* requests only — folding in
    microsecond-scale rejections would drag a throttled tenant's
    percentiles toward zero exactly when its real latency matters.
    """

    allowed: int = 0                        # admitted past the edge
    limited: int = 0                        # 429: request window exhausted
    sweep_limited: int = 0                  # 429: sweep-submission quota
    shed: int = 0                           # admitted, then shed at capacity
    errors: int = 0                         # served responses with status >= 500
    statuses: Counter = field(default_factory=Counter)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def __post_init__(self) -> None:
        sanitize.register_lock(self, "_lock", "TenantStats._lock")

    def record(self, outcome: str, status: int, elapsed_s: float) -> None:
        with self._lock:
            self.statuses[status] += 1
            if outcome == "limited":
                self.limited += 1
            elif outcome == "sweep_limited":
                self.sweep_limited += 1
            elif outcome == "shed":
                self.shed += 1
            else:
                self.allowed += 1
                if status >= 500:
                    self.errors += 1
                self.latency.observe(elapsed_s)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "allowed": self.allowed,
                "limited": self.limited,
                "sweep_limited": self.sweep_limited,
                "shed": self.shed,
                "errors": self.errors,
                "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
                "latency": self.latency.snapshot(),
            }

    def export(self) -> dict:
        """Raw, mergeable dump of this tenant's counters."""
        with self._lock:
            return {
                "allowed": self.allowed,
                "limited": self.limited,
                "sweep_limited": self.sweep_limited,
                "shed": self.shed,
                "errors": self.errors,
                "statuses": {str(k): v for k, v in self.statuses.items()},
                "latency": self.latency.export(),
            }

    def merge_export(self, export: dict) -> None:
        with self._lock:
            self.allowed += int(export.get("allowed", 0))
            self.limited += int(export.get("limited", 0))
            self.sweep_limited += int(export.get("sweep_limited", 0))
            self.shed += int(export.get("shed", 0))
            self.errors += int(export.get("errors", 0))
            for status, n in export.get("statuses", {}).items():
                self.statuses[int(status)] += int(n)
            self.latency.merge_export(export.get("latency", {}))


class MetricsRegistry:
    """Thread-safe aggregate of everything ``/api/metrics`` exposes."""

    def __init__(self, clock=time.time):
        self._lock = threading.Lock()
        sanitize.register_lock(self, "_lock", "MetricsRegistry._lock")
        self._routes: dict[str, RouteStats] = {}
        self._tenants: dict[str, TenantStats] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.not_modified = 0               # 304 responses served
        self.rebuilds = 0
        self.rebuild_pages = 0              # files re-rendered across rebuilds
        # Resilience counters: the degradation ladder made observable.
        self.shed = 0                       # 503s answered at the watermark
        self.deadline_expired = 0           # requests over their time budget
        self.stale_served = 0               # 200s marked Warning: 110
        self.degraded = 0                   # render gave up after retries
        self.rate_limited = 0               # 429s answered at the tenancy edge
        self.started_at = clock()
        self._clock = clock

    def record_request(self, route: str, status: int, elapsed_s: float,
                       cache_status: str | None = None) -> None:
        with self._lock:
            stats = self._routes.setdefault(route, RouteStats())
            if cache_status == "hit":
                self.cache_hits += 1
            elif cache_status == "miss":
                self.cache_misses += 1
            if status == 304:
                self.not_modified += 1
        stats.record(status, elapsed_s)     # striped: per-route mutex

    def record_rebuild(self, files_rerendered: int) -> None:
        with self._lock:
            self.rebuilds += 1
            self.rebuild_pages += files_rerendered

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_deadline_expired(self) -> None:
        with self._lock:
            self.deadline_expired += 1

    def record_stale_served(self) -> None:
        with self._lock:
            self.stale_served += 1

    def record_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    def record_tenant(self, tenant: str, outcome: str, status: int,
                      elapsed_s: float) -> None:
        """Attribute one edge decision to its tenant.

        ``outcome`` is one of ``allowed`` / ``limited`` /
        ``sweep_limited`` / ``shed`` — the registry lock only guards the
        tenant table; counting happens under the tenant's own stripe.
        """
        with self._lock:
            stats = self._tenants.setdefault(tenant, TenantStats())
            if outcome in ("limited", "sweep_limited"):
                self.rate_limited += 1
        stats.record(outcome, status, elapsed_s)

    def tenant(self, name: str) -> TenantStats:
        with self._lock:
            return self._tenants.setdefault(name, TenantStats())

    @property
    def total_requests(self) -> int:
        with self._lock:
            routes = list(self._routes.values())
        return sum(s.requests for s in routes)

    @property
    def cache_hit_ratio(self) -> float:
        """Hits over cacheable lookups (0.0 before any cacheable traffic)."""
        with self._lock:
            hits, misses = self.cache_hits, self.cache_misses
        looked_up = hits + misses
        return hits / looked_up if looked_up else 0.0

    def route(self, pattern: str) -> RouteStats:
        with self._lock:
            return self._routes.setdefault(pattern, RouteStats())

    #: Scalar counters every export carries (and merging sums).
    _EXPORT_COUNTERS = ("cache_hits", "cache_misses", "not_modified",
                        "rebuilds", "rebuild_pages", "shed",
                        "deadline_expired", "stale_served", "degraded",
                        "rate_limited")

    def export(self) -> dict:
        """Raw, JSON-safe, *mergeable* dump of every counter.

        This is what crosses the process boundary in pre-fork mode: the
        parent (or a peer worker) folds any number of these back into one
        registry with :func:`merge_exports`, and percentiles come out of
        the merged bucket counts — statistically correct, unlike any
        combination of per-worker percentiles.
        """
        with self._lock:
            routes = dict(self._routes)
            tenants = dict(self._tenants)
            counters = {name: getattr(self, name)
                        for name in self._EXPORT_COUNTERS}
            started_at = self.started_at
        return {
            "routes": {pattern: stats.export()
                       for pattern, stats in routes.items()},
            "tenants": {name: stats.export()
                        for name, stats in tenants.items()},
            "counters": counters,
            "started_at": started_at,
        }

    def merge_export(self, export: dict) -> None:
        """Fold one raw :meth:`export` dump into this registry."""
        with self._lock:
            for name, value in export.get("counters", {}).items():
                if name in self._EXPORT_COUNTERS:
                    setattr(self, name, getattr(self, name) + int(value))
            started_at = export.get("started_at")
            if started_at is not None:
                self.started_at = min(self.started_at, float(started_at))
            stats_by_pattern = {
                pattern: self._routes.setdefault(pattern, RouteStats())
                for pattern in export.get("routes", {})
            }
            stats_by_tenant = {
                name: self._tenants.setdefault(name, TenantStats())
                for name in export.get("tenants", {})
            }
        for pattern, route_export in export.get("routes", {}).items():
            stats_by_pattern[pattern].merge_export(route_export)
        for name, tenant_export in export.get("tenants", {}).items():
            stats_by_tenant[name].merge_export(tenant_export)

    def snapshot(self) -> dict:
        """JSON-ready view of every counter (the ``/api/metrics`` body)."""
        with self._lock:
            routes = dict(self._routes)
            tenants = dict(self._tenants)
            rate_limited = self.rate_limited
            cache_hits = self.cache_hits
            cache_misses = self.cache_misses
            not_modified = self.not_modified
            rebuilds = self.rebuilds
            rebuild_pages = self.rebuild_pages
            shed = self.shed
            deadline_expired = self.deadline_expired
            stale_served = self.stale_served
            degraded = self.degraded
            uptime = self._clock() - self.started_at
        route_snapshots = {
            pattern: stats.snapshot() for pattern, stats in sorted(routes.items())
        }
        looked_up = cache_hits + cache_misses
        return {
            "uptime_s": round(uptime, 3),
            "total_requests": sum(s["requests"] for s in route_snapshots.values()),
            "routes": route_snapshots,
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_ratio": round(cache_hits / looked_up, 4) if looked_up else 0.0,
                "not_modified": not_modified,
            },
            "rebuilds": {
                "count": rebuilds,
                "files_rerendered": rebuild_pages,
            },
            "resilience": {
                "shed": shed,
                "deadline_expired": deadline_expired,
                "stale_served": stale_served,
                "degraded": degraded,
                "rate_limited": rate_limited,
            },
            "tenants": {name: stats.snapshot()
                        for name, stats in sorted(tenants.items())},
        }


def merge_exports(exports, clock=time.time) -> "MetricsRegistry":
    """Fold raw :meth:`MetricsRegistry.export` dumps into one registry.

    The fleet-wide ``/api/metrics`` view in pre-fork mode: per-worker
    bucket counts sum, so percentiles of the result are percentiles of
    the union of all observations (to bucket resolution).
    """
    merged = MetricsRegistry(clock=clock)
    for export in exports:
        if export:
            merged.merge_export(export)
    return merged
