"""The PDCunplugged WSGI application.

Serves the rendered site (every URL in the :meth:`Site.render_plan`) plus a
JSON query API over the same engines the paper's evaluation uses:

* ``GET /``, ``/activities/<slug>/``, ``/<taxonomy>/``,
  ``/<taxonomy>/<term>/``, ``/views/<view>/`` — rendered HTML, served
  through the content-addressed LRU cache with strong ETags and
  ``If-None-Match``/304 revalidation,
* ``GET /api/activities`` — the corpus as JSON,
* ``GET /api/search?q=…&limit=…`` — TF-IDF ranked full-text search,
* ``GET /api/coverage/cs2013`` and ``/api/coverage/tcpp`` — Tables I/II,
* ``GET /api/gaps`` — the §III-E gap report,
* ``GET /api/simulate/<slug>?n=…&seed=…`` — run a classroom simulation,
* ``POST /api/sweeps`` + ``GET /api/sweeps/<id>[/results|/compare]`` —
  batch parameter-sweep jobs over the simulations (the
  :mod:`repro.sweep` plane: multiprocessing pool, content-addressed
  result store, speedup/efficiency comparison),
* ``GET /api/metrics`` — request counters, latency percentiles, cache
  hit ratio (with per-shard stats and lock wait), worker-pool gauges,
  rebuild counters, sweep counters,
* ``GET /api/lint`` — the :mod:`repro.lint` static-analysis report for
  the served corpus, recomputed when the corpus generation changes.

Pure stdlib (``wsgiref``), no new runtime dependencies.  Content changes
are picked up between requests by the :class:`~repro.serve.rebuild.RebuildManager`,
which evicts exactly the dirty URLs from the cache.

Concurrency: ``create_server(workers=N)`` services connections on a
:class:`~repro.serve.workers.WorkerPool`, the default page cache is
lock-striped (:class:`~repro.serve.cache.ShardedPageCache`), and passing
``cache_dir=`` enables persistent warm starts — rendered bodies spill to
disk keyed by render-plan signature (and the search index under its
catalog signature) and reload on boot, so a restarted server answers its
first requests from cache instead of re-rendering.

Failure model (the degradation ladder, least to most degraded):

1. **fresh** — the normal path;
2. **stale** — the rebuild pipeline is failing (or its circuit breaker is
   open): the last good generation keeps serving, 200s carry
   ``Warning: 110`` and ``X-Stale`` headers;
3. **degraded** — a render failed even after retries: ``503 +
   Retry-After`` for that request, never a 500;
4. **shed** — past the in-flight watermark (``max_inflight``) or over the
   per-request budget (``request_timeout_ms``): ``503 + Retry-After``
   answered cheaply.

Ahead of all four sits the optional multi-tenant admission edge
(``tenants=``, :mod:`repro.serve.tenancy`): per-API-key sliding-window
rate limits and per-tier quotas answered ``429 + Retry-After`` before a
request touches the shedder, the cache, or a worker thread.

``/healthz`` (liveness) and ``/readyz`` (readiness: catalog loaded,
breaker state, shed rate) expose the ladder to orchestrators, and
``/api/metrics`` carries every counter behind it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import TYPE_CHECKING
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro import sanitize
from repro.serve.cache import PageCache, ShardedPageCache, make_etag
from repro.serve.faults import InjectedFault, parse_fault_spec
from repro.serve.metrics import MetricsRegistry
from repro.serve.persist import CacheStore
from repro.serve.rebuild import BackgroundRebuilder, RebuildManager
from repro.serve.resilience import (OPEN, CircuitBreaker, Deadline,
                                    DeadlineExceeded, LoadShedder,
                                    bounded_retry_after)
from repro.serve.retrypolicy import RetryError, RetryPolicy
from repro.serve.tenancy import TenancyConfig, TenantGate
from repro.serve.workers import PooledWSGIServer, WorkerPool
from repro.sitegen.search import catalog_signature

# NOTE: repro.sweep imports repro.serve primitives (faults, resilience,
# retry), so the sweep plane is imported lazily inside the handlers and
# create_app to keep the package import graph acyclic.
if TYPE_CHECKING:
    from repro.sweep import SweepManager

__all__ = ["ServeApp", "Response", "create_app", "create_server", "run"]

#: Warning header on responses served from a generation the rebuild
#: pipeline could not refresh (RFC 7234 §5.5: 110 = "Response is Stale").
STALE_WARNING = '110 pdcunplugged "Response is stale"'

#: Routes whose responses depend only on the corpus generation — safe to
#: cache and bulk-invalidated on every rebuild.
_CACHEABLE_API = ("/api/activities", "/api/search", "/api/coverage", "/api/gaps")

#: Maximum classroom size accepted by ``/api/simulate`` (keeps a single
#: request's CPU bounded).
MAX_SIM_STUDENTS = 200

#: Maximum ``POST /api/sweeps`` body size (a spec is small; anything
#: bigger is a mistake, refused with 413 before parsing).
MAX_SWEEP_BODY = 1 << 20


@dataclass
class Response:
    """One materialized HTTP response plus its metrics labels."""

    status: int
    body: bytes = b""
    content_type: str = "text/html; charset=utf-8"
    etag: str | None = None
    route: str = "<unmatched>"
    cache_status: str | None = None      # "hit" | "miss" | None (uncacheable)
    headers: list[tuple[str, str]] = field(default_factory=list)

    @classmethod
    def json(cls, payload: object, status: int = 200, route: str = "<unmatched>",
             **kwargs) -> "Response":
        body = json.dumps(payload, indent=2, sort_keys=True,
                          default=str).encode("utf-8")
        return cls(status=status, body=body,
                   content_type="application/json; charset=utf-8",
                   route=route, **kwargs)

    @classmethod
    def error(cls, status: int, message: str, route: str = "<unmatched>",
              **extra) -> "Response":
        return cls.json({"error": message, "status": status, **extra},
                        status=status, route=route)


class ServeApp:
    """WSGI callable: routing, caching, conditional requests, metrics."""

    def __init__(
        self,
        rebuilder: RebuildManager,
        cache: PageCache | ShardedPageCache | None = None,
        metrics: MetricsRegistry | None = None,
        watch: bool = True,
        store: CacheStore | None = None,
        clock=time.perf_counter,
        faults=None,
        request_timeout_ms: float | None = None,
        shedder: LoadShedder | None = None,
        retry: RetryPolicy | None = None,
        background: BackgroundRebuilder | None = None,
        sweeps: SweepManager | None = None,
        tenancy: TenantGate | None = None,
    ):
        self.rebuilder = rebuilder
        self.cache = cache
        self.metrics = metrics or MetricsRegistry()
        self.watch = watch
        self.store = store
        self.faults = faults
        self.request_timeout_ms = request_timeout_ms
        self.shedder = shedder
        self.retry = retry
        self.background = background
        self.sweeps = sweeps
        self.tenancy = tenancy
        self.warm_loaded = 0
        self.worker_pool: WorkerPool | None = None
        # Set by the pre-fork worker bootstrap: this app's view of its
        # process fleet.  Presence switches /api/metrics and /readyz
        # into fleet-wide mode (merged registries, all-workers-warm).
        self.fleet = None
        self._clock = clock
        # /api/lint report cache: (corpus signature, rendered payload).
        # Guarded by _lint_lock; the lint run itself happens outside it.
        self._lint_lock = threading.Lock()
        # Held only to swap the cached payload reference; the lint run
        # itself happens outside — default budget is fine.
        sanitize.register_lock(self, "_lint_lock", "ServeApp._lint_lock")
        self._lint_engine = None
        self._lint_payload: dict | None = None
        self._lint_signature: str | None = None

    @property
    def state(self):
        return self.rebuilder.state

    # -- persistence -------------------------------------------------------

    def cache_signature(self, path: str) -> str | None:
        """The render-plan signature a cached ``path`` was produced under.

        Rendered pages carry their own task signature; corpus-derived API
        responses (including ``/api/search?…`` variants) carry the whole
        generation's signature.  ``None`` marks the path unpersistable.
        """
        task = self.state.plan_by_url.get(path)
        if task is not None:
            return task.signature
        base = path.partition("?")[0]
        if base in _CACHEABLE_API or any(
                base.startswith(prefix + "/") for prefix in _CACHEABLE_API):
            return self.state.corpus_signature
        return None

    def warm_start(self) -> int:
        """Reload persisted cache entries whose signatures still match."""
        if self.store is None or self.cache is None:
            return 0
        # Boot-time only: warm_start runs before create_server exposes the
        # app to any worker thread, so this write cannot race.
        self.warm_loaded = self.store.warm_load(  # lint: disable=serve-unlocked-write
            self.cache, self.cache_signature)
        return self.warm_loaded

    def save_cache(self) -> int:
        """Spill the live cache and search index (no-op without a store)."""
        if self.store is None:
            return 0
        self.store.save_search(self.state.search,
                               catalog_signature(self.state.catalog))
        if self.cache is None:
            return 0
        return self.store.save(self.cache, self.cache_signature)

    def close(self) -> None:
        """Stop background work: the rebuild thread and the sweep plane."""
        if self.background is not None:
            self.background.stop()
        if self.sweeps is not None:
            self.sweeps.close()

    # -- WSGI entry point --------------------------------------------------

    def __call__(self, environ, start_response):
        # Outermost rung: tenant admission.  A quota-exhausted key is
        # refused here, before the shedder, the cache, any render, or a
        # worker thread — rejection costs a dict lookup and a counter.
        if self.tenancy is not None:
            decision = self.tenancy.admit(environ)
            environ["repro.tenant"] = decision
            if not decision.allowed:
                response = Response.error(
                    429,
                    "sweep submission quota exhausted for this window"
                    if decision.reason == "sweep-quota"
                    else "rate limit exceeded for this key, retry later",
                    route="<rate-limited>", tenant=decision.tenant,
                    tier=decision.tier)
                response.headers.append(
                    ("Retry-After", str(decision.retry_after)))
                return self._finish(environ, start_response, response,
                                    started=self._clock())
        shedder = self.shedder
        if shedder is not None and not shedder.try_acquire():
            # Refusing must stay cheap: no rebuild poke, no dispatch.
            self.metrics.record_shed()
            response = Response.error(
                503, "server over capacity, retry shortly", route="<shed>")
            response.headers.append(
                ("Retry-After", str(shedder.retry_after())))
            return self._finish(environ, start_response, response,
                                started=self._clock())
        try:
            return self._handle(environ, start_response)
        finally:
            if shedder is not None:
                shedder.release()

    def _handle(self, environ, start_response):
        started = self._clock()
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO") or "/"
        query = parse_qs(environ.get("QUERY_STRING", ""))

        if self.watch:
            self._check_rebuild()

        deadline = None
        if self.request_timeout_ms is not None:
            deadline = Deadline(self.request_timeout_ms / 1e3, clock=self._clock)

        is_sweep = path == "/api/sweeps" or path.startswith("/api/sweeps/")
        if method not in ("GET", "HEAD") and not (
                is_sweep and method in ("POST", "DELETE")):
            response = Response.error(405, f"method {method} not allowed",
                                      route="<method-not-allowed>")
        else:
            try:
                if is_sweep:
                    response = self._api_sweeps(method, path, environ)
                else:
                    response = self._dispatch(path, query, deadline)
            except DeadlineExceeded as exc:
                self.metrics.record_deadline_expired()
                response = Response.error(503, str(exc), route="<deadline>")
                response.headers.append(("Retry-After", "1"))
            except (RetryError, InjectedFault) as exc:
                # Render failed even after retries: degrade honestly with
                # a retryable 503, never an unhandled 500.
                self.metrics.record_degraded()
                response = Response.error(
                    503, f"temporarily degraded: {exc}", route="<degraded>")
                response.headers.append(("Retry-After", "1"))
            except Exception as exc:            # pragma: no cover - safety net
                response = Response.error(
                    500, f"internal error: {type(exc).__name__}", route="<error>")

        return self._finish(environ, start_response, response, started)

    def _finish(self, environ, start_response, response: Response, started):
        method = environ.get("REQUEST_METHOD", "GET").upper()
        if response.status == 200 and self._currently_stale():
            response.headers.append(("Warning", STALE_WARNING))
            response.headers.append(("X-Stale", "1"))
            self.metrics.record_stale_served()

        inm = environ.get("HTTP_IF_NONE_MATCH")
        if (response.status == 200 and response.etag
                and inm and response.etag in [t.strip() for t in inm.split(",")]):
            response = Response(
                status=304, body=b"", content_type=response.content_type,
                etag=response.etag, route=response.route,
                cache_status=response.cache_status, headers=response.headers)

        elapsed = self._clock() - started
        self.metrics.record_request(
            response.route, response.status, elapsed, response.cache_status)
        decision = environ.get("repro.tenant")
        if decision is not None and not decision.exempt:
            if not decision.allowed:
                outcome = ("sweep_limited" if decision.reason == "sweep-quota"
                           else "limited")
            elif response.route == "<shed>":
                outcome = "shed"
            else:
                outcome = "allowed"
            self.metrics.record_tenant(decision.tenant, outcome,
                                       response.status, elapsed)

        status_line = f"{response.status} {HTTPStatus(response.status).phrase}"
        body = b"" if method == "HEAD" or response.status == 304 else response.body
        headers = [("Content-Type", response.content_type),
                   ("Content-Length", str(len(body)))]
        if response.etag:
            headers.append(("ETag", response.etag))
        if response.cache_status:
            headers.append(("X-Cache", response.cache_status))
        headers.extend(response.headers)
        start_response(status_line, headers)
        return [body]

    def _currently_stale(self) -> bool:
        """Whether responses come from a generation that failed to refresh."""
        if self.background is not None and self.background.stale:
            return True
        return self.rebuilder.last_error is not None

    def _check_rebuild(self) -> None:
        if self.background is not None:
            self.background.poke()          # O(1); the thread does the work
            return
        result = self.rebuilder.maybe_refresh()
        if result is not None and result.ok:
            self.on_rebuild(result)

    def on_rebuild(self, result) -> None:
        """Account a successful rebuild and evict exactly its dirty URLs."""
        self.metrics.record_rebuild(len(result.dirty_urls))
        if self.cache is not None:
            self.cache.invalidate(result.dirty_urls)
            self.cache.invalidate(_CACHEABLE_API)
        if self.fleet is not None:
            # Publish the new generation to the board and poke peers so
            # every process in the fleet swaps without a restart.
            self.fleet.publish_generation(
                result.generation or self.state.corpus_signature)

    # -- routing -----------------------------------------------------------

    def _dispatch(self, path: str, query: dict[str, list[str]],
                  deadline: Deadline | None = None) -> Response:
        if path == "/healthz":
            # Liveness: the process answers, nothing else is implied.
            return Response.json({"status": "ok"}, route="/healthz")
        if path == "/readyz":
            return self._readyz()
        if path.startswith("/api/"):
            return self._dispatch_api(path, query, deadline)

        task = self.state.plan_by_url.get(path)
        if task is not None:
            return self._serve_rendered(path, f"page:{task.kind}",
                                        deadline=deadline)
        if not path.endswith("/") and path + "/" in self.state.plan_by_url:
            return Response(status=301, route="<redirect>",
                            headers=[("Location", path + "/")])
        return Response.error(404, f"no page at {path!r}", route="<unmatched>")

    def local_readiness(self) -> dict:
        """This process's readiness: catalog loaded, breaker not open.

        Also the payload a worker's control socket answers for ``ready``
        queries — it must stay strictly local (no fleet fan-out), or two
        workers asking each other would recurse forever.
        """
        breaker = self.background.breaker if self.background is not None else None
        payload = {
            "catalog_loaded": len(self.state.catalog) > 0,
            "generation": self.state.corpus_signature,
            "stale": self._currently_stale(),
            "breaker": breaker.state if breaker is not None else None,
            "shed_rate": (round(self.shedder.shed_rate(), 4)
                          if self.shedder is not None else 0.0),
        }
        payload["ready"] = payload["catalog_loaded"] and (
            breaker is None or breaker.state != OPEN)
        return payload

    def _readyz(self) -> Response:
        """Readiness; in a process fleet, false until *all* workers warm."""
        route = "/readyz"
        payload = self.local_readiness()
        ready = payload["ready"]
        if self.fleet is not None:
            fleet_ready, fleet_info = self.fleet.fleet_status(ready)
            payload["fleet"] = fleet_info
            ready = ready and fleet_ready
            payload["ready"] = ready
        if ready:
            return Response.json(payload, route=route)
        response = Response.json(payload, status=503, route=route)
        response.headers.append(("Retry-After", "1"))
        return response

    def _render_guarded(self, render):
        """Run a render with fault injection and transient-error retry."""
        def attempt():
            if self.faults is not None:
                self.faults.maybe_fail("render")
            return render()
        if self.retry is None:
            return attempt()
        return self.retry.call(attempt, sleep=None)

    def _serve_rendered(self, path: str, route: str,
                        render=None, content_type: str = "text/html; charset=utf-8",
                        cache_key: str | None = None,
                        deadline: Deadline | None = None) -> Response:
        """Serve a renderable through the cache with a strong ETag.

        The deadline is checked at the stage edges: before starting a
        render (don't start work the budget cannot pay for) and after it
        returns — the finished body still lands in the cache first, so an
        over-budget render is not wasted, but the request that paid for
        it reports 503 honestly.
        """
        if render is None:
            task = self.state.plan_by_url[path]
            render = lambda: task.render().encode("utf-8")  # noqa: E731
        key = cache_key or path

        if self.cache is not None:
            entry = self.cache.get(key)
            if entry is not None:
                return Response(status=200, body=entry.body,
                                content_type=entry.content_type,
                                etag=entry.etag, route=route, cache_status="hit")
            if deadline is not None:
                deadline.check("render-start")
            body = self._render_guarded(render)
            entry = self.cache.put(key, body, content_type)
            if deadline is not None:
                deadline.check("render")
            return Response(status=200, body=body, content_type=content_type,
                            etag=entry.etag, route=route, cache_status="miss")

        if deadline is not None:
            deadline.check("render-start")
        body = self._render_guarded(render)
        if deadline is not None:
            deadline.check("render")
        return Response(status=200, body=body, content_type=content_type,
                        etag=make_etag(body), route=route)

    # -- API ---------------------------------------------------------------

    def _dispatch_api(self, path: str, query: dict[str, list[str]],
                      deadline: Deadline | None = None) -> Response:
        if path == "/api/activities":
            return self._api_cached(path, self._activities_payload,
                                    deadline=deadline)
        if path == "/api/search":
            return self._api_search(query, deadline)
        if path in ("/api/coverage/cs2013", "/api/coverage/tcpp"):
            standard = path.rsplit("/", 1)[1]
            return self._api_cached(
                path, lambda: self._coverage_payload(standard),
                route=f"/api/coverage/{standard}", deadline=deadline)
        if path == "/api/gaps":
            return self._api_cached(path, self._gaps_payload, deadline=deadline)
        if path.startswith("/api/simulate/"):
            return self._api_simulate(path[len("/api/simulate/"):], query)
        if path == "/api/metrics":
            return self._api_metrics()
        if path == "/api/lint":
            return self._api_lint(query)
        return Response.error(404, f"unknown API route {path!r}", route="<unmatched>")

    def _api_cached(self, key: str, payload, route: str | None = None,
                    deadline: Deadline | None = None) -> Response:
        """A JSON endpoint whose body only changes when the corpus does."""
        route = route or key
        render = lambda: json.dumps(  # noqa: E731
            payload(), indent=2, sort_keys=True, default=str).encode("utf-8")
        return self._serve_rendered(
            key, route, render=render,
            content_type="application/json; charset=utf-8", cache_key=key,
            deadline=deadline)

    def _activities_payload(self) -> dict:
        from repro.unplugged import SIMULATIONS

        return {
            "count": len(self.state.catalog),
            "activities": [
                {
                    "name": a.name,
                    "title": a.title,
                    "url": f"/activities/{a.name}/",
                    "date": a.date,
                    "courses": a.courses,
                    "cs2013": a.cs2013,
                    "tcpp": a.tcpp,
                    "senses": a.senses,
                    "medium": a.medium,
                    "has_simulation": a.name in SIMULATIONS,
                }
                for a in self.state.catalog
            ],
        }

    def _api_search(self, query: dict[str, list[str]],
                    deadline: Deadline | None = None) -> Response:
        route = "/api/search"
        q = " ".join(query.get("q", [])).strip()
        if not q:
            return Response.error(400, "missing query parameter 'q'", route=route)
        try:
            limit = int(query.get("limit", ["10"])[0])
        except ValueError:
            return Response.error(400, "limit must be an integer", route=route)
        limit = max(1, min(limit, 50))

        def payload():
            hits = self.state.search.search(q, limit=limit)
            return {
                "query": q,
                "count": len(hits),
                "hits": [
                    {
                        "name": h.name,
                        "title": h.title,
                        "score": round(h.score, 6),
                        "url": f"/activities/{h.name}/",
                        "matched_terms": list(h.matched_terms),
                    }
                    for h in hits
                ],
            }

        return self._api_cached(f"/api/search?q={q}&limit={limit}", payload,
                                route=route, deadline=deadline)

    def _coverage_payload(self, standard: str) -> dict:
        from repro.analytics import cs2013_coverage, tcpp_coverage

        if standard == "cs2013":
            rows = cs2013_coverage(self.state.catalog)
            table = [
                {
                    "term": r.term,
                    "name": r.display_name,
                    "outcomes": r.num_outcomes,
                    "covered": r.num_covered,
                    "percent": round(r.percent_coverage, 2),
                    "activities": r.total_activities,
                }
                for r in rows
            ]
        else:
            rows = tcpp_coverage(self.state.catalog)
            table = [
                {
                    "term": r.term,
                    "name": r.name,
                    "topics": r.num_topics,
                    "covered": r.num_covered,
                    "percent": round(r.percent_coverage, 2),
                    "activities": r.total_activities,
                }
                for r in rows
            ]
        return {"standard": standard, "rows": table}

    def _gaps_payload(self) -> dict:
        from repro.analytics import gap_report

        report = gap_report(self.state.catalog)
        return {
            "cs2013_gaps": report.cs2013_gaps,
            "tcpp_gaps": report.tcpp_gaps,
            "total_uncovered_outcomes": report.total_uncovered_outcomes,
            "total_uncovered_topics": report.total_uncovered_topics,
            "empty_categories": report.empty_categories,
            "units_below_tier_targets": report.units_below_tier_targets,
            "sparse_senses": report.sparse_senses,
            "activities_without_assessment": report.activities_without_assessment,
        }

    def _api_simulate(self, slug: str, query: dict[str, list[str]]) -> Response:
        from repro.unplugged import SIMULATIONS, Classroom

        route = "/api/simulate/<slug>"
        slug = slug.rstrip("/")
        if slug not in SIMULATIONS:
            return Response.error(
                404, f"no simulation for {slug!r}", route=route,
                available=sorted(SIMULATIONS))
        try:
            students = int(query.get("n", ["16"])[0])
            seed = int(query.get("seed", ["0"])[0])
        except ValueError:
            return Response.error(400, "n and seed must be integers", route=route)
        if not 2 <= students <= MAX_SIM_STUDENTS:
            return Response.error(
                400, f"n must be between 2 and {MAX_SIM_STUDENTS}", route=route)

        try:
            classroom = Classroom(size=students, seed=seed,
                                  step_time_jitter=0.2)
            result = SIMULATIONS[slug](classroom)
        except Exception as exc:  # noqa: BLE001 - map sim failures to 422
            # A simulation blowing up mid-run is a property of the
            # requested (slug, n, seed), not a server fault: answer a
            # structured 422, never an opaque 500.
            return Response.error(
                422, f"simulation {slug!r} failed: {exc}", route=route,
                slug=slug, n=students, seed=seed,
                exception=type(exc).__name__)
        return Response.json(
            {
                "activity": result.activity,
                "slug": slug,
                "classroom_size": result.classroom_size,
                "seed": seed,
                "metrics": result.metrics,
                "checks": result.checks,
                "all_checks_pass": result.all_checks_pass,
                "trace_events": len(result.trace),
            },
            route=route,
        )

    # -- sweeps (the batch plane) ------------------------------------------

    def _api_sweeps(self, method: str, path: str, environ) -> Response:
        """Route ``/api/sweeps[/<id>[/results|/compare]]``.

        The batch plane is admission-controlled separately from the
        request plane: the :class:`~repro.sweep.manager.SweepManager`
        sheds submissions past ``max_active_jobs`` with ``429 +
        Retry-After`` (the request-plane shedder still fronts every call
        here, so batch traffic cannot starve interactive requests).
        """
        route = "/api/sweeps"
        if self.sweeps is None:
            return Response.error(
                503, "sweep service not enabled (start with --sweep-workers)",
                route=route)
        parts = [p for p in path[len("/api/sweeps"):].split("/") if p]
        if not parts:
            if method == "POST":
                return self._sweep_submit(environ)
            return Response.json(
                {"jobs": [job.progress() for job in self.sweeps.jobs()]},
                route=route)
        job = self.sweeps.job(parts[0])
        if job is None:
            return Response.error(404, f"no sweep job {parts[0]!r}",
                                  route="/api/sweeps/<id>")
        if len(parts) == 1:
            if method == "DELETE":
                accepted = job.cancel()
                payload = job.progress()
                payload["cancel_accepted"] = accepted
                return Response.json(payload, route="/api/sweeps/<id>")
            return Response.json(job.progress(), route="/api/sweeps/<id>")
        if method == "DELETE":
            return Response.error(405, "DELETE applies to /api/sweeps/<id>",
                                  route="/api/sweeps/<id>")
        if parts[1:] == ["results"]:
            return Response.json(
                {"job": job.progress(), "results": job.results()},
                route="/api/sweeps/<id>/results")
        if parts[1:] == ["compare"]:
            from repro.sweep import compare

            return Response.json(
                {"job": job.progress(), "compare": compare(job.results())},
                route="/api/sweeps/<id>/compare")
        return Response.error(
            404, f"unknown sweep route {path!r}", route="<unmatched>")

    def _sweep_submit(self, environ) -> Response:
        from repro.sweep import SweepRejected, SweepSpec, SweepSpecError

        route = "/api/sweeps"
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > MAX_SWEEP_BODY:
            return Response.error(413, "sweep spec too large", route=route)
        body = environ["wsgi.input"].read(length) if length > 0 else b""
        try:
            payload = json.loads(body or b"null")
        except ValueError:
            return Response.error(400, "request body is not valid JSON",
                                  route=route)
        try:
            spec = SweepSpec.parse(payload)
        except SweepSpecError as exc:
            return Response.error(422, str(exc), route=route)
        decision = environ.get("repro.tenant")
        tenant = decision.tenant if decision is not None else None
        try:
            job = self.sweeps.submit(spec, tenant=tenant)
        except SweepRejected as exc:
            response = Response.error(429, str(exc), route=route)
            response.headers.append(
                ("Retry-After", str(bounded_retry_after(exc.retry_after_s))))
            return response
        accepted = job.progress()
        accepted["spec"] = spec.canonical()
        return Response.json(accepted, status=202, route=route)

    def metrics_extras(self) -> dict:
        """Per-process sections riding alongside the mergeable export.

        In a process fleet, these appear under each worker's entry in
        ``fleet.per_worker`` — page caches, pools, and resilience state
        are genuinely per process and must not be summed.
        """
        cache_stats = (self.cache.stats() if self.cache is not None
                       else {"enabled": False})
        cache_stats.pop("shards", None)     # per-shard detail is too chatty
        # for an N-worker breakdown; the local payload still carries it
        extras = {
            "generation": self.state.corpus_signature,
            "stale": self._currently_stale(),
            "page_cache": cache_stats,
            "pool": (self.worker_pool.stats() if self.worker_pool is not None
                     else {"workers": 1, "pooled": False}),
        }
        if self.cache is not None:
            extras["page_cache"]["warm_loaded"] = self.warm_loaded
        if self.rebuilder.last_error:
            extras["rebuild_last_error"] = self.rebuilder.last_error
        if self.background is not None:
            extras["rebuild_thread"] = self.background.stats()
        if self.sweeps is not None:
            extras["sweeps"] = self.sweeps.stats()
        if self.tenancy is not None:
            extras["tenancy"] = self.tenancy.stats()
        sanitizer = sanitize.current()
        if sanitizer is not None:
            extras["sanitizer"] = sanitizer.counters()
        return extras

    def _local_metrics_payload(self) -> dict:
        payload = self.metrics.snapshot()
        payload["page_cache"] = (
            self.cache.stats() if self.cache is not None else {"enabled": False}
        )
        if self.cache is not None:
            payload["page_cache"]["warm_loaded"] = self.warm_loaded
        payload["workers"] = (
            self.worker_pool.stats() if self.worker_pool is not None
            else {"workers": 1, "pooled": False}
        )
        if self.rebuilder.last_error:
            payload["rebuilds"]["last_error"] = self.rebuilder.last_error
        resilience = payload.setdefault("resilience", {})
        resilience["stale"] = self._currently_stale()
        if self.shedder is not None:
            resilience["load_shedder"] = self.shedder.stats()
        if self.background is not None:
            resilience["rebuild_thread"] = self.background.stats()
        if self.faults is not None:
            resilience["faults"] = self.faults.stats()
        if self.store is not None:
            resilience["persist"] = self.store.stats()
        if self.sweeps is not None:
            payload["sweeps"] = self.sweeps.stats()
        if self.tenancy is not None:
            resilience["tenancy"] = self.tenancy.stats()
        sanitizer = sanitize.current()
        if sanitizer is not None:
            payload["sanitizer"] = sanitizer.counters()
        return payload

    def _api_metrics(self) -> Response:
        if self.fleet is not None:
            # Fleet-wide view: merge every worker's raw export (bucket
            # counts, not percentiles) so the reported percentiles come
            # from the union of all observations, with a per-worker
            # breakdown for the genuinely per-process state.
            return Response.json(self.fleet.metrics_payload(self),
                                 route="/api/metrics")
        return Response.json(self._local_metrics_payload(),
                             route="/api/metrics")

    def _api_lint(self, query: dict[str, list[str]] | None = None,
                  ) -> Response:
        """Static-analysis report for the served corpus.

        The report is recomputed only when the corpus generation changes
        (the same ``corpus_signature`` the cacheable API responses key
        on), so after a :class:`RebuildManager` swap the next request
        re-lints and every one after that is served from the snapshot.
        The lint run happens *outside* ``_lint_lock`` — the engine
        serializes itself — so concurrent requests never queue behind a
        full analysis just to read the cached payload.

        ``?rules=a,b`` narrows the report to those rule ids — applied to
        the cached payload after the fact, mirroring ``lint --select``:
        filtering never invalidates or forks the cache.
        """
        route = "/api/lint"
        rules: list[str] = [
            rule_id.strip()
            for chunk in (query or {}).get("rules", [])
            for rule_id in chunk.split(",") if rule_id.strip()]
        signature = self.state.corpus_signature
        with self._lint_lock:
            if (self._lint_payload is not None
                    and self._lint_signature == signature):
                return self._lint_response(self._lint_payload, rules, route)
            engine = self._lint_engine
        if engine is None:
            from repro.lint import LintConfig, LintEngine

            # Sharing the serve cache directory persists the lint
            # fingerprint table too, so a freshly started server's first
            # /api/lint re-analyzes only files changed since the last run.
            engine = LintEngine(LintConfig(
                content_dir=self.rebuilder.content_dir, jobs=4,
                cache_dir=self.store.root if self.store is not None
                else None))
        result = engine.lint()
        payload = {
            "signature": signature,
            "counts": result.counts,
            "fixable": result.fixable,
            "clean": not result.diagnostics,
            "diagnostics": [d.to_dict() for d in result.diagnostics],
            "fixes": [f.to_dict() for f in result.fixes],
            "stats": {
                "files_total": result.stats.files_total,
                "files_analyzed": result.stats.files_analyzed,
                "files_cached": result.stats.files_cached,
            },
        }
        with self._lint_lock:
            self._lint_engine = engine
            self._lint_payload = payload
            self._lint_signature = signature
        return self._lint_response(payload, rules, route)

    @staticmethod
    def _lint_response(payload: dict, rules: list[str],
                       route: str) -> Response:
        """The cached lint payload, optionally narrowed to ``rules``."""
        if not rules:
            return Response.json(payload, route=route)
        from repro.lint import RULES

        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            return Response.error(
                400, f"unknown lint rule(s): {', '.join(unknown)}",
                route=route)
        keep = set(rules)
        diagnostics = [d for d in payload["diagnostics"]
                       if d["rule"] in keep]
        fixes = [f for f in payload["fixes"] if f["rule"] in keep]
        counts: dict[str, int] = {k: 0 for k in payload["counts"]}
        for diag in diagnostics:
            counts[diag["severity"]] += 1
        filtered = dict(payload)
        filtered.update({
            "rules": sorted(keep),
            "counts": counts,
            "fixable": len(fixes),
            "clean": not diagnostics,
            "diagnostics": diagnostics,
            "fixes": fixes,
        })
        return Response.json(filtered, route=route)


# -- construction ----------------------------------------------------------


def create_app(
    content_dir=None,
    cache_size: int = 512,
    cache_enabled: bool = True,
    cache_shards: int = 8,
    cache_dir=None,
    watch_interval_s: float = 1.0,
    watch: bool = True,
    metrics: MetricsRegistry | None = None,
    faults=None,
    fault_spec: str | None = None,
    fault_seed: int = 0,
    request_timeout_ms: float | None = None,
    max_inflight: int | None = None,
    rebuild_mode: str = "inline",
    debounce_s: float = 0.05,
    breaker_threshold: int = 3,
    breaker_reset_s: float = 1.0,
    retry: RetryPolicy | None = None,
    sweep_workers: int = 1,
    sweep_max_jobs: int = 4,
    sweep_deadline_s: float | None = None,
    tenants=None,
) -> ServeApp:
    """Build a ready-to-serve :class:`ServeApp` over a content directory
    (default: the packaged 38-activity corpus).

    The page cache is lock-striped over ``cache_shards`` shards
    (``cache_shards=1`` degenerates to the single-mutex cache).  With
    ``cache_dir`` set, previously spilled responses whose render-plan
    signatures still match are warm-loaded immediately — and the search
    index is restored from persisted postings, skipping the cold
    tokenization pass — so the first requests after a restart are hits.

    ``rebuild_mode="inline"`` (the default, and what tests rely on for
    synchronous edit visibility) refreshes on the request path;
    ``"background"`` starts a :class:`BackgroundRebuilder` thread with a
    circuit breaker so no request's latency ever includes a re-scan.

    ``tenants`` enables the multi-tenant admission edge: pass a
    :class:`~repro.serve.tenancy.TenancyConfig`, a config dict, a path
    to a tenants JSON file, or the literal string ``"default"`` for the
    built-in tiers.  ``None`` (the default) disables the edge entirely —
    zero per-request overhead for single-tenant deployments.
    """
    if faults is None and fault_spec:
        faults = parse_fault_spec(fault_spec, seed=fault_seed)
    store = CacheStore(cache_dir, faults=faults) if cache_dir else None
    search_loader = None
    if store is not None:
        def search_loader(catalog):
            return store.load_search(catalog_signature(catalog))
    rebuilder = RebuildManager(content_dir, min_interval_s=watch_interval_s,
                               faults=faults, search_loader=search_loader)
    cache = None
    if cache_enabled:
        if cache_shards > 1:
            cache = ShardedPageCache(cache_size, shards=cache_shards)
        else:
            cache = PageCache(cache_size)
    from repro.sweep import ResultStore, SweepManager

    sweep_store = None
    if cache_dir:
        from pathlib import Path

        sweep_store = ResultStore(Path(cache_dir) / "sweeps", faults=faults)
    sweeps = SweepManager(
        store=sweep_store, workers=sweep_workers,
        max_active_jobs=sweep_max_jobs, default_deadline_s=sweep_deadline_s,
        faults=faults)
    tenancy = None
    if tenants is not None:
        tenancy = TenantGate(TenancyConfig.load(tenants), faults=faults)
    app = ServeApp(
        rebuilder, cache=cache, metrics=metrics, watch=watch, store=store,
        faults=faults, request_timeout_ms=request_timeout_ms,
        shedder=LoadShedder(max_inflight) if max_inflight else None,
        retry=retry if retry is not None else RetryPolicy(retries=1),
        sweeps=sweeps, tenancy=tenancy,
    )
    if rebuild_mode == "background":
        breaker = CircuitBreaker(failure_threshold=breaker_threshold,
                                 reset_timeout_s=breaker_reset_s)
        app.background = BackgroundRebuilder(
            rebuilder, breaker=breaker, debounce_s=debounce_s,
            poll_interval_s=watch_interval_s if watch else None,
            on_result=app.on_rebuild)
        app.background.start()
    elif rebuild_mode != "inline":
        raise ValueError(f"unknown rebuild_mode {rebuild_mode!r} "
                         f"(expected 'inline' or 'background')")
    app.warm_start()
    return app


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - WSGI API
        pass


def create_server(host: str = "127.0.0.1", port: int = 8000,
                  app: ServeApp | None = None, quiet: bool = False,
                  workers: int = 1, queue_limit: int | None = None,
                  **app_kwargs) -> tuple[WSGIServer, ServeApp]:
    """Bind a WSGI server (``port=0`` picks an ephemeral port).

    ``workers=1`` is the stock single-threaded ``wsgiref`` server;
    ``workers>1`` services connections on a :class:`WorkerPool` of that
    size, so slow clients no longer head-of-line block everyone else.
    ``queue_limit`` bounds the pool's task queue: connections past the
    watermark are answered ``503 + Retry-After`` at the socket.
    """
    app = app or create_app(**app_kwargs)
    handler = _QuietHandler if quiet else WSGIRequestHandler
    if workers > 1:
        pool = WorkerPool(workers, max_queue=queue_limit)
        server = PooledWSGIServer((host, port), handler, pool)
        server.set_app(app)
        app.worker_pool = pool
    else:
        server = make_server(host, port, app, handler_class=handler)
    return server, app


def run(host: str = "127.0.0.1", port: int = 8000, workers: int = 1,
        queue_limit: int | None = None, worker_model: str = "thread",
        threads_per_worker: int = 2, sanitize_locks: bool = False,
        sanitize_budget_ms: float = 250.0, **app_kwargs) -> int:
    """Blocking entry point used by ``pdcunplugged serve``.

    The CLI path defaults to the background rebuild pipeline: requests
    never pay for a catalog re-scan, and rebuild failures degrade to
    stale serving behind the circuit breaker instead of surfacing.

    ``worker_model="process"`` switches to the pre-fork supervisor:
    ``workers`` becomes the process count (each with its own
    ``threads_per_worker``-thread pool), and the GIL stops being the
    throughput ceiling.

    ``sanitize_locks=True`` activates the runtime concurrency sanitizer
    (:mod:`repro.sanitize`) before any lock is constructed, so every
    registered serve/sweep lock is instrumented and ``/api/metrics``
    grows a ``sanitizer`` section (races, stalls, per-site hold/wait
    histograms).  Activation happens before a pre-fork supervisor
    forks, so each worker process inherits an active sanitizer and
    reports its own counters.
    """
    if sanitize_locks and sanitize.current() is None:
        sanitize.activate(hold_budget_ms=sanitize_budget_ms)
        print(f"concurrency sanitizer ACTIVE "
              f"(stall budget {sanitize_budget_ms:g}ms)")
    if worker_model == "process":
        from repro.serve.prefork import run_prefork

        return run_prefork(host=host, port=port, workers=max(1, workers),
                           queue_limit=queue_limit,
                           threads_per_worker=threads_per_worker,
                           **app_kwargs)
    if worker_model != "thread":
        raise ValueError(f"unknown worker_model {worker_model!r} "
                         f"(expected 'thread' or 'process')")
    app_kwargs.setdefault("rebuild_mode", "background")
    server, app = create_server(host, port, workers=workers,
                                queue_limit=queue_limit, **app_kwargs)
    bound_port = server.server_address[1]
    print(f"serving {len(app.state.catalog)} activities on "
          f"http://{host}:{bound_port} with {workers} worker(s) "
          f"(Ctrl-C to stop)")
    if app.warm_loaded:
        print(f"  warm start: {app.warm_loaded} cached responses reloaded")
    if app.faults is not None and app.faults.active:
        print(f"  fault injection ACTIVE: {len(app.faults.rules)} rule(s), "
              f"seed {app.faults.seed}")
    if app.tenancy is not None:
        config = app.tenancy.config
        print(f"  multi-tenant edge ACTIVE: tiers {sorted(config.tiers)}, "
              f"{len(config.keys)} key(s), {config.window_s:g}s window")
    print(f"  API: /api/activities /api/search?q=… /api/coverage/cs2013 "
          f"/api/coverage/tcpp /api/gaps /api/simulate/<slug> /api/sweeps "
          f"/api/metrics /api/lint")
    if app.sweeps is not None:
        print(f"  sweeps: {app.sweeps.workers} worker process(es), "
              f"up to {app.sweeps.max_active_jobs} concurrent jobs")
    print(f"  ops: /healthz /readyz")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down.")
    finally:
        server.server_close()
        app.close()
        saved = app.save_cache()
        if saved:
            print(f"spilled {saved} cached responses for warm restart.")
    return 0
