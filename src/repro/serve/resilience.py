"""Resilience primitives: circuit breaker, request deadlines, load shedding.

The degradation ladder the serving layer follows under failure, from
least to most degraded:

1. **Serve fresh** — the normal path.
2. **Serve stale** — rebuilds are failing (or the breaker is open): keep
   answering from the last good generation, marked with a
   ``Warning: 110`` header.  Never fail closed to users because the
   *content pipeline* is sick.
3. **Shed** — the process itself is saturated: answer ``503`` with
   ``Retry-After`` *cheaply* rather than queueing unboundedly and
   timing everyone out.

:class:`CircuitBreaker` guards the rebuild pipeline (state machine
CLOSED → OPEN → HALF_OPEN with exponential backoff + seeded jitter);
:class:`Deadline` is the per-request time budget checked at render
boundaries (cooperative — a thread cannot be preempted, so the budget is
enforced at the points where slow work starts and ends); and
:class:`LoadShedder` is the bounded-concurrency watermark.

All three take injectable clocks/RNG seeds, so chaos tests replay
deterministically.
"""

from __future__ import annotations

import random
import threading
import time

__all__ = ["BreakerOpen", "CircuitBreaker", "Deadline", "DeadlineExceeded",
           "LoadShedder", "bounded_retry_after",
           "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Never tell a client to back off longer than this many seconds.
MAX_RETRY_AFTER_S = 60


def bounded_retry_after(seconds: float, max_s: float = MAX_RETRY_AFTER_S) -> int:
    """Clamp a computed back-off hint to a bounded positive integer.

    Every refusal path — shedder 503s, queue-saturation 503s, and the
    tenancy edge's 429s — formats ``Retry-After`` through this helper so
    clients always see an integer in ``[1, max_s]``: never zero (which
    some clients treat as "retry immediately, in a tight loop") and
    never an hour-long lockout from a transient pressure spike.
    """
    return int(min(max(1, round(seconds)), max_s))


class BreakerOpen(RuntimeError):
    """An operation was refused because its circuit breaker is open."""


class CircuitBreaker:
    """Trip after N consecutive failures; half-open with backoff + jitter.

    * **closed** — operations proceed; consecutive failures are counted.
    * **open** — operations are refused until the current backoff
      elapses.  Each re-trip doubles the backoff (capped), with a seeded
      jitter fraction so a fleet of breakers does not retry in lockstep.
    * **half-open** — exactly one trial operation is admitted; success
      closes the breaker (and resets the backoff), failure re-opens it.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        max_timeout_s: float = 30.0,
        multiplier: float = 2.0,
        jitter: float = 0.2,
        seed: int = 0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be > 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.max_timeout_s = max_timeout_s
        self.multiplier = multiplier
        self.jitter = jitter
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._current_timeout_s = reset_timeout_s
        self._retry_at: float | None = None
        self._trips = 0
        self._successes = 0
        self._failures = 0

    # -- state machine -------------------------------------------------------

    def allow(self) -> bool:
        """Whether the caller may attempt the guarded operation now.

        In the open state, the first call after the backoff elapses is
        admitted as the half-open trial; concurrent callers are refused
        until that trial reports back.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                now = self._clock()
                if self._retry_at is not None and now >= self._retry_at:
                    self._state = HALF_OPEN
                    return True
                return False
            return False                 # HALF_OPEN: trial already in flight

    def record_success(self) -> None:
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._current_timeout_s = self.reset_timeout_s
            self._state = CLOSED
            self._retry_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._trip_locked(backoff=True)
            elif self._state == CLOSED \
                    and self._consecutive_failures >= self.failure_threshold:
                self._trip_locked(backoff=False)

    def _trip_locked(self, backoff: bool) -> None:
        if backoff:
            self._current_timeout_s = min(
                self._current_timeout_s * self.multiplier, self.max_timeout_s)
        timeout = self._current_timeout_s
        if self.jitter:
            timeout += self._rng.uniform(0.0, timeout * self.jitter)
        self._state = OPEN
        self._retry_at = self._clock() + timeout
        self._trips += 1

    # -- observability -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def closed(self) -> bool:
        return self.state == CLOSED

    def stats(self) -> dict:
        with self._lock:
            retry_in = None
            if self._retry_at is not None:
                retry_in = max(0.0, self._retry_at - self._clock())
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "trips": self._trips,
                "successes": self._successes,
                "failures": self._failures,
                "current_timeout_s": round(self._current_timeout_s, 4),
                "retry_in_s": round(retry_in, 4) if retry_in is not None else None,
            }


class DeadlineExceeded(Exception):
    """A request exhausted its time budget; ``stage`` names where."""

    def __init__(self, stage: str, budget_s: float, elapsed_s: float):
        super().__init__(f"deadline exceeded at {stage}: "
                         f"{elapsed_s * 1e3:.1f} ms > {budget_s * 1e3:.1f} ms budget")
        self.stage = stage
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class Deadline:
    """A per-request time budget, checked cooperatively at stage edges.

    Threads cannot be preempted mid-render, so the budget is enforced at
    the boundaries where slow work starts and finishes: a render that
    overruns is detected the moment it returns, and subsequent stages
    (for the same request) refuse to start.
    """

    __slots__ = ("budget_s", "_started", "_clock")

    def __init__(self, budget_s: float, clock=time.perf_counter):
        if budget_s <= 0:
            raise ValueError("deadline budget must be > 0")
        self.budget_s = budget_s
        self._clock = clock
        self._started = clock()

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._started

    def remaining_s(self) -> float:
        return self.budget_s - self.elapsed_s

    @property
    def expired(self) -> bool:
        return self.remaining_s() <= 0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        elapsed = self.elapsed_s
        if elapsed >= self.budget_s:
            raise DeadlineExceeded(stage, self.budget_s, elapsed)


class LoadShedder:
    """Bounded admission: past the watermark, requests are shed cheaply.

    ``try_acquire`` admits a request while fewer than ``max_inflight``
    are active, else counts a shed; the caller answers the shed request
    with ``503`` + ``Retry-After`` without doing any rendering work —
    the whole point is that refusing is orders of magnitude cheaper than
    serving, so the server stays responsive under bursts instead of
    queueing into timeout territory.
    """

    def __init__(self, max_inflight: int, retry_after_s: float = 1.0):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted = 0
        self._shed = 0
        self._shed_streak = 0       # consecutive sheds since the last admit

    def try_acquire(self) -> bool:
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._shed += 1
                self._shed_streak += 1
                return False
            self._inflight += 1
            self._admitted += 1
            self._shed_streak = 0
            return True

    def release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def retry_after(self) -> int:
        """Back-off hint, in whole seconds, derived from current pressure.

        Inflight saturation alone is binary (``_inflight`` never exceeds
        the watermark), so sustained overload shows up as the *streak* of
        consecutive sheds: the hint grows by one base interval per
        ``4 × max_inflight`` uninterrupted sheds, bounded by
        :func:`bounded_retry_after` — light brushes against the
        watermark still say "1", a hammered server tells clients to back
        off progressively longer.
        """
        with self._lock:
            pressure = self._shed_streak / (4.0 * self.max_inflight)
        return bounded_retry_after(self.retry_after_s * (1.0 + pressure))

    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed

    def shed_rate(self) -> float:
        with self._lock:
            seen = self._admitted + self._shed
            return self._shed / seen if seen else 0.0

    def stats(self) -> dict:
        with self._lock:
            seen = self._admitted + self._shed
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "admitted": self._admitted,
                "shed": self._shed,
                "shed_rate": round(self._shed / seen, 4) if seen else 0.0,
                "retry_after_s": self.retry_after_s,
            }
