"""Retry with exponential backoff + jitter, shared across subsystems.

One policy object owns the *schedule* (how many attempts, how long to
wait between them); callers own the *classification* (which outcomes are
worth retrying).  The serving layer uses it for transient persist/load
I/O, the link auditor for flaky HTTP fetches — both get the same
deterministic, injectable behaviour:

* the schedule is pure data (``delays()`` yields the backoff sequence),
* jitter comes from a caller-supplied seeded RNG, so tests and
  benchmarks replay identically,
* sleeping is injectable (default ``time.sleep``; pass ``sleep=None``
  to retry immediately, the link-auditor default).

Not every exception deserves a retry: :func:`is_transient` encodes the
split — a missing file or a permission wall will not heal on attempt
three, while an injected fault, a timeout, or a generic ``OSError``
plausibly will.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["RetryPolicy", "RetryError", "is_transient"]

#: Exception types that retrying cannot fix: the condition is structural,
#: not transient, so the first failure is final.
_PERMANENT: tuple[type[BaseException], ...] = (
    FileNotFoundError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is plausibly transient (worth another attempt)."""
    return isinstance(exc, OSError) and not isinstance(exc, _PERMANENT)


class RetryError(Exception):
    """Every attempt failed; ``last`` is the final exception."""

    def __init__(self, attempts: int, last: BaseException):
        super().__init__(f"gave up after {attempts} attempt(s): "
                         f"{type(last).__name__}: {last}")
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """An immutable retry schedule: attempts and backoff shape.

    ``retries`` extra attempts follow the first (so ``retries=2`` means
    up to three calls).  Delay before retry *k* is
    ``base_delay_s * multiplier**(k-1)`` capped at ``max_delay_s``, with
    a uniform jitter of up to ``jitter`` of itself added when an RNG is
    supplied.
    """

    retries: int = 2
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 0.5
    jitter: float = 0.5

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    @property
    def attempts(self) -> int:
        return self.retries + 1

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The backoff delays preceding retries 1..``retries``."""
        delay = self.base_delay_s
        for _ in range(self.retries):
            value = min(delay, self.max_delay_s)
            if rng is not None and self.jitter and value > 0:
                value += rng.uniform(0.0, value * self.jitter)
            yield value
            delay *= self.multiplier

    def schedule(self, rng: random.Random | None = None
                 ) -> Iterator[tuple[int, float]]:
        """``(attempt_number, delay_before_it)`` pairs, first delay 0."""
        yield 1, 0.0
        for i, delay in enumerate(self.delays(rng), start=2):
            yield i, delay

    def call(
        self,
        fn: Callable[[], object],
        *,
        retry_on: Callable[[BaseException], bool] = is_transient,
        sleep: Callable[[float], None] | None = time.sleep,
        rng: random.Random | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Run ``fn`` under this schedule; raise :class:`RetryError` when
        every attempt fails with a retryable exception.

        A non-retryable exception propagates immediately, unchanged.
        """
        last: BaseException | None = None
        attempts = 0
        for attempt, delay in self.schedule(rng):
            if delay > 0 and sleep is not None:
                sleep(delay)
            attempts = attempt
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not retry_on(exc):
                    raise
                last = exc
                if on_retry is not None:
                    on_retry(attempt, exc)
        assert last is not None
        raise RetryError(attempts, last)
