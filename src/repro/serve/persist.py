"""On-disk spill/restore for the page cache and search index (warm starts).

A fresh server process used to cold-start at hit-ratio 0 and pay one
render per page before the cache did anything.  :class:`CacheStore` fixes
that: it spills cache entries (body + ETag + content type) to a cache
directory together with the *render-plan signature* each body was rendered
under, and on boot reloads every entry whose signature still matches the
current plan.  Invalidation therefore reuses the exact mechanism the
incremental rebuilder already trusts — if any input of a page changed, its
signature changed, and the stale spill is silently dropped.

The search index rides along: its per-document term counts are persisted
under the :func:`~repro.sitegen.search.catalog_signature` of the catalog
they were tokenized from, so a warm start skips the cold
``SearchIndex.from_catalog`` pass entirely when the content has not
changed.

Layout under ``cache_dir``::

    cache-index.json          path -> {etag, content_type, signature, blob}
    search-postings.json      checksummed, signature-stamped search index
    blobs/<sha>.body          content-addressed bodies (deduplicated)

Failure model — this module is *tolerant by construction*:

* every write is atomic (tmp + fsync + rename via :mod:`repro.ioutil`),
  so a crash mid-save never leaves a torn file where a reader finds it;
* transient write errors are retried under a
  :class:`~repro.serve.retrypolicy.RetryPolicy`; a persistently failing
  entry is *skipped* (logged, counted) — persistence is an optimization,
  never worth failing a save over;
* every load path treats garbage the same way: a truncated or corrupt
  index, a missing or tampered blob (ETag recomputed from bytes), or a
  postings file whose checksum/signature/version disagrees all mean
  "start cold", logged at WARNING, never raised.

A :class:`~repro.serve.faults.FaultPlan` can be attached to exercise all
of the above deterministically (ops ``persist-write`` / ``cache-read``).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Callable

from repro.ioutil import atomic_write_bytes
from repro.serve.cache import checksum, make_etag
from repro.serve.retrypolicy import RetryError, RetryPolicy

__all__ = ["CacheStore", "SEARCH_FILENAME"]

log = logging.getLogger("repro.serve.persist")

#: ``signature_for`` callback: maps a cache key (request path, possibly with
#: a query string) to the signature its body was rendered under, or ``None``
#: when the key must not be persisted (e.g. volatile routes).
SignatureFn = Callable[[str], "str | None"]

_INDEX_NAME = "cache-index.json"
_BLOB_DIR = "blobs"

SEARCH_FILENAME = "search-postings.json"
_SEARCH_VERSION = 1


class CacheStore:
    """Persist page-cache entries keyed by render-plan signature."""

    def __init__(self, cache_dir: str | Path, faults=None,
                 retry: RetryPolicy | None = None):
        self.root = Path(cache_dir)
        self.blob_dir = self.root / _BLOB_DIR
        self.blob_dir.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / _INDEX_NAME
        self.search_path = self.root / SEARCH_FILENAME
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy(retries=1)
        self.skipped_saves = 0
        self.load_errors = 0

    # -- instrumented I/O (fault hooks + retry) ----------------------------

    def _persist_bytes(self, path: Path, data: bytes) -> None:
        """Atomically write ``data`` with fault hooks and transient retry."""
        def attempt() -> None:
            payload = data
            if self.faults is not None:
                self.faults.maybe_fail("persist-write")
                payload = self.faults.mangle_write("persist-write", payload)
            atomic_write_bytes(path, payload)
        self.retry.call(attempt, sleep=None)

    def _read_bytes(self, path: Path) -> bytes:
        def attempt() -> bytes:
            if self.faults is not None:
                self.faults.maybe_fail("cache-read")
            data = path.read_bytes()
            if self.faults is not None:
                data = self.faults.mangle_read("cache-read", data)
            return data
        return self.retry.call(attempt, sleep=None)

    # -- saving ------------------------------------------------------------

    def save(self, cache, signature_for: SignatureFn) -> int:
        """Spill every persistable entry of ``cache``; return the count.

        ``cache`` is any object with an ``entries()`` snapshot method
        (:class:`~repro.serve.cache.PageCache` or
        :class:`~repro.serve.cache.ShardedPageCache`).  An entry whose
        blob cannot be written even after retries is skipped and counted,
        not raised — a failed spill costs a cold render later, nothing
        more.
        """
        index: dict[str, dict] = {}
        for entry in cache.entries():
            signature = signature_for(entry.path)
            if signature is None:
                continue
            blob = self._blob_name(entry.etag)
            blob_path = self.blob_dir / blob
            try:
                if not blob_path.exists():
                    self._persist_bytes(blob_path, entry.body)
            except (OSError, RetryError) as exc:
                self.skipped_saves += 1
                log.warning("skipping spill of %s: %s", entry.path, exc)
                continue
            index[entry.path] = {
                "etag": entry.etag,
                "content_type": entry.content_type,
                "signature": signature,
                "blob": blob,
            }
        try:
            self._write_index(index)
        except (OSError, RetryError) as exc:
            self.skipped_saves += 1
            log.warning("cache index not written: %s", exc)
            return 0                      # old index stays; skip GC under it
        self._collect_garbage(index)
        return len(index)

    def _write_index(self, index: dict) -> None:
        body = json.dumps(index, indent=2, sort_keys=True).encode("utf-8")
        self._persist_bytes(self.index_path, body)

    def _collect_garbage(self, index: dict) -> int:
        """Delete blobs no live index entry references.

        The cache directory may be shared by a pre-fork worker fleet, so
        besides the index this process just wrote, the index currently on
        disk (possibly a peer's, written a moment later) is honored too —
        GC must never delete a blob a concurrent spill still references.
        A blob both miss is only a cold render on the next warm start.
        """
        referenced = {meta["blob"] for meta in index.values()}
        for meta in self.load_index().values():
            if isinstance(meta, dict) and meta.get("blob"):
                referenced.add(str(meta["blob"]))
        removed = 0
        for blob_path in self.blob_dir.glob("*.body"):
            if blob_path.name not in referenced:
                try:
                    blob_path.unlink(missing_ok=True)
                except OSError:
                    continue              # a lingering blob is only disk
                removed += 1
        return removed

    # -- loading -----------------------------------------------------------

    def load_index(self) -> dict[str, dict]:
        """The persisted index, or ``{}`` when absent/corrupt (cold start)."""
        try:
            raw = json.loads(self._read_bytes(self.index_path))
        except FileNotFoundError:
            return {}
        except (OSError, RetryError, ValueError) as exc:
            self.load_errors += 1
            log.warning("cache index unreadable, starting cold: %s", exc)
            return {}
        if not isinstance(raw, dict):
            self.load_errors += 1
            log.warning("cache index malformed, starting cold")
            return {}
        return raw

    def warm_load(self, cache, signature_for: SignatureFn) -> int:
        """Preload ``cache`` with every entry whose signature still holds.

        Returns the number of entries restored.  Entries whose signature
        no longer matches the current render plan (the content changed
        while the server was down), whose blob is missing, or whose bytes
        no longer hash to the recorded ETag are skipped.
        """
        warmed = 0
        for path, meta in sorted(self.load_index().items()):
            try:
                expected = signature_for(path)
                if expected is None or expected != meta["signature"]:
                    continue
                body = self._read_bytes(self.blob_dir / str(meta["blob"]))
                if make_etag(body) != meta["etag"]:
                    continue                      # tampered / torn blob
                cache.put(path, body, str(meta["content_type"]))
                warmed += 1
            except (OSError, RetryError, KeyError, TypeError):
                self.load_errors += 1
                continue
        return warmed

    # -- search-index postings ---------------------------------------------

    def save_search(self, index, signature: str) -> bool:
        """Persist ``index`` (a :class:`~repro.sitegen.search.SearchIndex`)
        stamped with the catalog ``signature`` it was built from."""
        body = json.dumps(index.to_payload(), sort_keys=True,
                          separators=(",", ":"))
        wrapper = {
            "version": _SEARCH_VERSION,
            "signature": signature,
            "checksum": checksum(body.encode("utf-8")),
            "index": body,
        }
        try:
            self._persist_bytes(self.search_path,
                                json.dumps(wrapper).encode("utf-8"))
        except (OSError, RetryError) as exc:
            self.skipped_saves += 1
            log.warning("search postings not written: %s", exc)
            return False
        return True

    def load_search(self, expected_signature: str):
        """The persisted search index, or ``None`` (build cold).

        ``None`` on: no file, version or signature mismatch (content
        changed), checksum mismatch (corruption), or any parse error —
        a broken postings file must never take warm start down.
        """
        from repro.errors import SiteError
        from repro.sitegen.search import SearchIndex

        try:
            wrapper = json.loads(self._read_bytes(self.search_path))
        except FileNotFoundError:
            return None
        except (OSError, RetryError, ValueError) as exc:
            self.load_errors += 1
            log.warning("search postings unreadable, building cold: %s", exc)
            return None
        try:
            if wrapper["version"] != _SEARCH_VERSION:
                log.warning("search postings version %r unsupported, "
                            "building cold", wrapper.get("version"))
                return None
            if wrapper["signature"] != expected_signature:
                return None               # content changed: postings stale
            body = wrapper["index"]
            if checksum(body.encode("utf-8")) != wrapper["checksum"]:
                self.load_errors += 1
                log.warning("search postings checksum mismatch, building cold")
                return None
            return SearchIndex.from_payload(json.loads(body))
        except (KeyError, TypeError, ValueError, AttributeError, SiteError) as exc:
            self.load_errors += 1
            log.warning("search postings corrupt, building cold: %s", exc)
            return None

    def _blob_name(self, etag: str) -> str:
        return etag.strip('"') + ".body"

    def stats(self) -> dict:
        return {
            "skipped_saves": self.skipped_saves,
            "load_errors": self.load_errors,
        }
