"""On-disk spill/restore for the page cache (warm starts across restarts).

A fresh server process used to cold-start at hit-ratio 0 and pay one
render per page before the cache did anything.  :class:`CacheStore` fixes
that: it spills cache entries (body + ETag + content type) to a cache
directory together with the *render-plan signature* each body was rendered
under, and on boot reloads every entry whose signature still matches the
current plan.  Invalidation therefore reuses the exact mechanism the
incremental rebuilder already trusts — if any input of a page changed, its
signature changed, and the stale spill is silently dropped.

Layout under ``cache_dir``::

    cache-index.json          path -> {etag, content_type, signature, blob}
    blobs/<sha>.body          content-addressed bodies (deduplicated)

Bodies are content-addressed by their ETag hash, so unchanged bodies are
written once ever; the index is rewritten atomically (tmp + rename) so a
crash mid-save never leaves a torn index.  Corrupt or tampered blobs are
detected on load (the ETag is recomputed from the bytes) and skipped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

from repro.serve.cache import make_etag

__all__ = ["CacheStore"]

#: ``signature_for`` callback: maps a cache key (request path, possibly with
#: a query string) to the signature its body was rendered under, or ``None``
#: when the key must not be persisted (e.g. volatile routes).
SignatureFn = Callable[[str], "str | None"]

_INDEX_NAME = "cache-index.json"
_BLOB_DIR = "blobs"


class CacheStore:
    """Persist page-cache entries keyed by render-plan signature."""

    def __init__(self, cache_dir: str | Path):
        self.root = Path(cache_dir)
        self.blob_dir = self.root / _BLOB_DIR
        self.blob_dir.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / _INDEX_NAME

    # -- saving ------------------------------------------------------------

    def save(self, cache, signature_for: SignatureFn) -> int:
        """Spill every persistable entry of ``cache``; return the count.

        ``cache`` is any object with an ``entries()`` snapshot method
        (:class:`~repro.serve.cache.PageCache` or
        :class:`~repro.serve.cache.ShardedPageCache`).
        """
        index: dict[str, dict] = {}
        for entry in cache.entries():
            signature = signature_for(entry.path)
            if signature is None:
                continue
            blob = self._blob_name(entry.etag)
            blob_path = self.blob_dir / blob
            if not blob_path.exists():
                blob_path.write_bytes(entry.body)
            index[entry.path] = {
                "etag": entry.etag,
                "content_type": entry.content_type,
                "signature": signature,
                "blob": blob,
            }
        self._write_index(index)
        self._collect_garbage(index)
        return len(index)

    def _write_index(self, index: dict) -> None:
        tmp = self.index_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(index, indent=2, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.index_path)

    def _collect_garbage(self, index: dict) -> int:
        """Delete blobs no live index entry references."""
        referenced = {meta["blob"] for meta in index.values()}
        removed = 0
        for blob_path in self.blob_dir.glob("*.body"):
            if blob_path.name not in referenced:
                blob_path.unlink(missing_ok=True)
                removed += 1
        return removed

    # -- loading -----------------------------------------------------------

    def load_index(self) -> dict[str, dict]:
        """The persisted index, or ``{}`` when absent/corrupt."""
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        return raw if isinstance(raw, dict) else {}

    def warm_load(self, cache, signature_for: SignatureFn) -> int:
        """Preload ``cache`` with every entry whose signature still holds.

        Returns the number of entries restored.  Entries whose signature
        no longer matches the current render plan (the content changed
        while the server was down), whose blob is missing, or whose bytes
        no longer hash to the recorded ETag are skipped.
        """
        warmed = 0
        for path, meta in sorted(self.load_index().items()):
            try:
                expected = signature_for(path)
                if expected is None or expected != meta["signature"]:
                    continue
                body = (self.blob_dir / str(meta["blob"])).read_bytes()
                if make_etag(body) != meta["etag"]:
                    continue                      # tampered / torn blob
                cache.put(path, body, str(meta["content_type"]))
                warmed += 1
            except (OSError, KeyError, TypeError):
                continue
        return warmed

    def _blob_name(self, etag: str) -> str:
        return etag.strip('"') + ".body"
