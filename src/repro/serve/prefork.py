"""Pre-fork multi-process serving: escape the GIL.

The ``--workers N`` thread pool caps render-heavy throughput at roughly
one core, because every render holds the GIL.  This module provides
``--worker-model process``: a parent *supervisor* binds the listening
socket exactly once and forks N worker processes that all ``accept()``
on the shared socket, each running its own full
:class:`~repro.serve.app.ServeApp` (private page cache, metrics
registry, rebuild pipeline, circuit breaker) — N cores of rendering with
zero cross-process locking on the request path.

Three coordination planes make the fleet behave like one server:

1. **Metrics** — every worker exposes a unix *control socket*
   (``worker-<i>.sock`` in the runtime directory).  ``/api/metrics``
   answered by any worker collects each peer's raw
   :meth:`~repro.serve.metrics.MetricsRegistry.export` (bucket counts,
   not percentiles) over those sockets and merges them with
   :func:`~repro.serve.metrics.merge_exports`, so the reported
   fleet-wide percentiles come from the union of observations, plus a
   ``fleet.per_worker`` breakdown.
2. **Generation** — a successful rebuild in any worker publishes the new
   corpus signature to the :class:`GenerationBoard` (an atomic JSON file
   in the runtime directory) and *pokes* every peer's control socket;
   each poked worker re-scans and swaps its own generation, so one edit
   propagates to the whole fleet without a restart.  Stale serving
   (``Warning: 110``) and the rebuild circuit breaker stay *per
   process* — one worker's sick pipeline never marks a healthy peer
   stale.
3. **Lifecycle** — the supervisor polls its children, reaps crashes, and
   respawns with per-slot exponential backoff; a graceful stop sends
   ``shutdown`` over the control sockets so each worker stops accepting,
   drains its in-flight requests (bounded), spills its cache, and exits.
   ``/readyz`` answers 503 until *every* expected worker is up and warm.

A fourth plane rides the same sockets when the multi-tenant edge is
enabled (``tenants=``): each worker's :class:`~repro.serve.tenancy.TenantGate`
gossips its per-(worker, epoch) window counts to its peers via the
``tenancy`` command, max-merged on absorb, so N workers enforce ~one
fleet-wide rate limit instead of N× the quota — and a respawned worker
inherits its predecessor's counts from the survivors' gossip.

The control protocol is one JSON line per connection::

    {"cmd": "ping" | "ready" | "metrics" | "generation" | "poke"
            | "tenancy" | "shutdown"}

Pure stdlib.  Requires ``fork`` (POSIX); the CLI refuses the mode
elsewhere.  In process mode each worker's sweep plane runs its points
inline (``sweep_workers`` is clamped to 1): the process fleet *is* the
parallelism, and daemonic workers cannot spawn pool children.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import signal
import socket
import tempfile
import threading
import time
from pathlib import Path

from repro.ioutil import atomic_write_bytes
from repro.serve.metrics import merge_exports

__all__ = ["PreforkServer", "FleetLinks", "GenerationBoard", "ControlServer",
           "control_call", "worker_socket_path", "run_prefork"]

log = logging.getLogger("repro.serve.prefork")

_MANIFEST_NAME = "fleet.json"
_GENERATION_NAME = "generation.json"

#: Default deadline for one control-socket round trip.  Peers that do
#: not answer within it are reported as not responding, never waited on.
CONTROL_TIMEOUT_S = 1.0

#: A worker alive longer than this has its crash-backoff counter reset.
_STABLE_AFTER_S = 5.0


def worker_socket_path(runtime_dir: str | Path, index: int) -> Path:
    """The control-socket path for worker ``index`` (naming convention)."""
    return Path(runtime_dir) / f"worker-{index}.sock"


def control_call(sock_path: str | Path, cmd: str,
                 timeout_s: float = CONTROL_TIMEOUT_S, **fields) -> dict | None:
    """One control request against a worker socket.

    Returns the decoded response, or ``None`` on *any* failure — a dead,
    draining, or not-yet-started peer is a fact to report, not an error
    to raise.
    """
    request = dict(fields, cmd=cmd)
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
            client.settimeout(timeout_s)
            client.connect(str(sock_path))
            client.sendall(json.dumps(request).encode("utf-8") + b"\n")
            chunks = []
            while True:
                data = client.recv(65536)
                if not data:
                    break
                chunks.append(data)
                if b"\n" in data:
                    break
        payload = b"".join(chunks)
        return json.loads(payload) if payload.strip() else None
    except (OSError, ValueError):
        return None


class ControlServer:
    """Per-worker unix-socket command server (one JSON line per connection).

    Runs on its own daemon thread inside the worker process, so control
    queries (readiness, metrics export, pokes) never compete with HTTP
    request handling for a worker thread.
    """

    def __init__(self, path: str | Path, handlers: dict, name: str = "control"):
        self.path = Path(path)
        self.handlers = handlers
        self.path.unlink(missing_ok=True)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(str(self.path))
        self._sock.listen(16)
        self._sock.settimeout(0.2)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, name=name,
                                        daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout_s: float = 2.0) -> None:
        self._stop.set()
        self._thread.join(timeout=timeout_s)
        try:
            self._sock.close()
        finally:
            self.path.unlink(missing_ok=True)

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return                      # socket closed under us: done
            try:
                self._handle(conn)
            except Exception:               # noqa: BLE001 - keep serving
                log.exception("control request failed")
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(CONTROL_TIMEOUT_S)
        data = b""
        while b"\n" not in data and len(data) < (1 << 20):
            chunk = conn.recv(65536)
            if not chunk:
                break
            data += chunk
        try:
            request = json.loads(data.decode("utf-8"))
        except ValueError:
            request = {}
        cmd = request.get("cmd") if isinstance(request, dict) else None
        handler = self.handlers.get(cmd)
        if handler is None:
            response = {"error": f"unknown control command {cmd!r}"}
        else:
            try:
                response = handler(request)
            except Exception as exc:        # noqa: BLE001 - report, don't die
                response = {"error": f"{type(exc).__name__}: {exc}"}
        conn.sendall(json.dumps(response, default=str).encode("utf-8") + b"\n")


class GenerationBoard:
    """The cross-process generation record: an atomic JSON file.

    A rebuild's *publish* is two-channel: this durable file (a late
    joiner — e.g. a respawned worker — can read what the fleet converged
    on) plus transient control-socket pokes (the live workers re-scan
    now instead of at their next poll).  Reads are tolerant: a torn or
    garbage file means "nothing published", never an exception.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def publish(self, generation: str, worker: int | None = None) -> bool:
        """Record ``generation``; returns False when already current."""
        current = self.read()
        if current is not None and current.get("generation") == generation:
            return False
        payload = {"generation": generation, "worker": worker,
                   "published_at": time.time()}
        try:
            atomic_write_bytes(
                self.path,
                json.dumps(payload, sort_keys=True).encode("utf-8"))
        except OSError as exc:
            log.warning("generation publish failed: %s", exc)
        return True

    def read(self) -> dict | None:
        try:
            payload = json.loads(self.path.read_bytes())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None


def fleet_section(workers: int, reports: list[dict],
                  answered_by: int | None = None) -> dict:
    """The ``fleet`` block of a merged metrics payload."""
    per_worker: dict[str, dict] = {}
    for report in sorted(reports, key=lambda r: r.get("worker", -1)):
        export = report.get("export") or {}
        counters = export.get("counters") or {}
        entry = {
            "pid": report.get("pid"),
            "requests": sum(int(route.get("requests", 0))
                            for route in (export.get("routes") or {}).values()),
            "cache_hits": int(counters.get("cache_hits", 0)),
            "cache_misses": int(counters.get("cache_misses", 0)),
        }
        entry.update(report.get("extra") or {})
        per_worker[str(report.get("worker"))] = entry
    return {
        "worker_model": "process",
        "workers": workers,
        "responding": len(reports),
        "answered_by": answered_by,
        "per_worker": per_worker,
    }


class FleetLinks:
    """One worker's view of its fleet: peers, board, aggregation.

    Attached to the worker's :class:`~repro.serve.app.ServeApp` as
    ``app.fleet``; its presence is what switches ``/api/metrics`` and
    ``/readyz`` into fleet-wide mode.
    """

    def __init__(self, runtime_dir: str | Path, index: int, workers: int,
                 timeout_s: float = CONTROL_TIMEOUT_S):
        self.runtime_dir = Path(runtime_dir)
        self.index = index
        self.workers = workers
        self.timeout_s = timeout_s
        self.board = GenerationBoard(self.runtime_dir / _GENERATION_NAME)

    def peers(self) -> list[tuple[int, Path]]:
        return [(i, worker_socket_path(self.runtime_dir, i))
                for i in range(self.workers) if i != self.index]

    # -- generation plane --------------------------------------------------

    def publish_generation(self, generation: str) -> int:
        """Publish a new generation; returns the number of peers poked.

        When the board already records ``generation`` some other worker
        published first — skip the pokes, damping the (finite) poke
        echo: a poked peer's own rebuild republishes, but by then the
        board is current and the echo stops.
        """
        if not self.board.publish(generation, worker=self.index):
            return 0
        poked = 0
        for _idx, path in self.peers():
            if control_call(path, "poke", timeout_s=self.timeout_s):
                poked += 1
        return poked

    # -- metrics plane -----------------------------------------------------

    def collect_metrics(self, local: dict | None = None) -> list[dict]:
        reports = [local] if local else []
        for _idx, path in self.peers():
            report = control_call(path, "metrics", timeout_s=self.timeout_s)
            if report and "export" in report:
                reports.append(report)
        return reports

    def metrics_payload(self, app) -> dict:
        """Fleet-wide ``/api/metrics``: merged registries + breakdown."""
        local = {"worker": self.index, "pid": os.getpid(),
                 "export": app.metrics.export(),
                 "extra": app.metrics_extras()}
        reports = self.collect_metrics(local)
        merged = merge_exports(r["export"] for r in reports).snapshot()
        merged["fleet"] = fleet_section(self.workers, reports,
                                        answered_by=self.index)
        return merged

    # -- readiness plane ---------------------------------------------------

    def fleet_status(self, local_ready: bool) -> tuple[bool, dict]:
        """Whether every expected worker is up and warm, plus the detail."""
        statuses = {str(self.index): {"ready": bool(local_ready),
                                      "pid": os.getpid(),
                                      "responding": True}}
        for idx, path in self.peers():
            reply = control_call(path, "ready", timeout_s=self.timeout_s)
            statuses[str(idx)] = {
                "ready": bool(reply and reply.get("ready")),
                "pid": reply.get("pid") if reply else None,
                "responding": reply is not None,
            }
        ready = all(s["ready"] for s in statuses.values())
        return ready, {"workers": self.workers, "per_worker": statuses}


# -- the worker process ------------------------------------------------------


def _worker_main(index: int, listen_socket: socket.socket,
                 runtime_dir: str, workers: int, threads_per_worker: int,
                 queue_limit: int | None, drain_timeout_s: float,
                 quiet: bool, app_kwargs: dict,
                 tenancy_sync_interval_s: float = 0.25) -> None:
    """Entry point of one forked worker (runs in the child process)."""
    from repro.serve.app import _QuietHandler, create_app
    from repro.serve.tenancy import TenancySync
    from repro.serve.workers import PooledWSGIServer, WorkerPool
    from wsgiref.simple_server import WSGIRequestHandler

    kwargs = dict(app_kwargs)
    # Daemonic workers cannot spawn pool children, and the fleet is the
    # parallelism anyway: sweep points run inline inside each worker.
    kwargs["sweep_workers"] = 1
    # Decorrelate per-worker fault RNGs so an injected-fault fleet does
    # not fail in lockstep (still deterministic per worker).
    if kwargs.get("fault_spec"):
        kwargs["fault_seed"] = int(kwargs.get("fault_seed", 0)) + index

    app = create_app(**kwargs)
    app.fleet = FleetLinks(runtime_dir, index, workers)

    tenancy_sync = None
    if app.tenancy is not None:
        # Claim this process's slot in the window CRDT, then gossip: the
        # sync thread pulls every peer's view over the control sockets
        # and max-merges it in, so the fleet converges on ~one shared
        # limit.  Fetch failures are counted and skipped — a dead peer
        # never blocks admission.
        app.tenancy.set_worker(index)

        def fetch_tenancy_views() -> list[dict]:
            views = []
            for _idx, path in app.fleet.peers():
                reply = control_call(path, "tenancy",
                                     timeout_s=app.fleet.timeout_s)
                if reply and isinstance(reply.get("view"), dict):
                    views.append(reply["view"])
            return views

        tenancy_sync = TenancySync(app.tenancy, fetch_tenancy_views,
                                   interval_s=tenancy_sync_interval_s).start()

    pool = WorkerPool(threads_per_worker, name=f"prefork-{index}-thread",
                      max_queue=queue_limit)
    listen_socket.setblocking(False)   # accept races resolve as EAGAIN,
    # which the socketserver no-block path treats as "someone else won"
    handler = _QuietHandler if quiet else WSGIRequestHandler
    server = PooledWSGIServer(listen_socket.getsockname()[:2], handler, pool,
                              drain_timeout_s=drain_timeout_s,
                              listen_socket=listen_socket)
    server.set_app(app)
    app.worker_pool = pool

    stopping = threading.Event()

    def request_shutdown(*_args) -> None:
        if stopping.is_set():
            return
        stopping.set()
        # serve_forever must keep spinning for shutdown() to complete, so
        # the blocking call happens off the signal/control path.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, signal.SIG_IGN)   # parent owns Ctrl-C

    def _poke(_request) -> dict:
        if app.background is not None:
            app.background.poke()
            return {"ok": True, "mode": "background"}

        def refresh() -> None:
            try:
                result = app.rebuilder.refresh()
                if result is not None and result.ok:
                    app.on_rebuild(result)
            except Exception:               # noqa: BLE001 - poke is advisory
                log.exception("poked refresh failed")

        threading.Thread(target=refresh, daemon=True).start()
        return {"ok": True, "mode": "inline"}

    control = ControlServer(
        worker_socket_path(runtime_dir, index),
        handlers={
            "ping": lambda _r: {"ok": True, "worker": index,
                                "pid": os.getpid()},
            "ready": lambda _r: dict(app.local_readiness(), worker=index,
                                     pid=os.getpid()),
            "metrics": lambda _r: {"worker": index, "pid": os.getpid(),
                                   "export": app.metrics.export(),
                                   "extra": app.metrics_extras()},
            "generation": lambda _r: {"worker": index, "pid": os.getpid(),
                                      "generation": app.state.corpus_signature,
                                      "stale": app._currently_stale()},
            "poke": _poke,
            "tenancy": lambda _r: {
                "worker": index, "pid": os.getpid(),
                "view": (app.tenancy.view()
                         if app.tenancy is not None else {}),
            },
            "shutdown": lambda _r: (request_shutdown(), {"ok": True})[1],
        },
        name=f"prefork-{index}-control",
    )
    control.start()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        if tenancy_sync is not None:
            tenancy_sync.stop()
        control.stop()
        server.server_close()               # stops accepting, drains, joins
        app.close()
        try:
            app.save_cache()
        except Exception:                   # noqa: BLE001 - spill is optional
            log.exception("cache spill on shutdown failed")


# -- the supervisor ----------------------------------------------------------


class PreforkServer:
    """Parent supervisor: bind once, fork N accepting workers, keep N alive.

    The parent never builds a :class:`ServeApp` and never touches a
    request — it binds the TCP socket, writes the fleet manifest, forks
    the workers (``fork`` start method: the listening socket is inherited,
    nothing is pickled), and then only supervises: reap crashed workers,
    respawn them with per-slot exponential backoff, and on ``stop()``
    ask every worker to drain gracefully before escalating.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        runtime_dir: str | Path | None = None,
        threads_per_worker: int = 2,
        queue_limit: int | None = None,
        drain_timeout_s: float = 5.0,
        respawn: bool = True,
        respawn_backoff_s: float = 0.1,
        respawn_backoff_max_s: float = 5.0,
        monitor_interval_s: float = 0.05,
        quiet: bool = True,
        tenancy_sync_interval_s: float = 0.25,
        **app_kwargs,
    ):
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        if threads_per_worker < 1:
            raise ValueError("threads_per_worker must be >= 1")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:           # pragma: no cover - non-POSIX
            raise RuntimeError(
                "worker_model='process' needs the fork start method "
                "(POSIX only); use the thread worker model here") from exc
        self.workers = workers
        self.threads_per_worker = threads_per_worker
        self.queue_limit = queue_limit
        self.drain_timeout_s = drain_timeout_s
        self.respawn = respawn
        self.respawn_backoff_s = respawn_backoff_s
        self.respawn_backoff_max_s = respawn_backoff_max_s
        self.monitor_interval_s = monitor_interval_s
        self.quiet = quiet
        self.tenancy_sync_interval_s = tenancy_sync_interval_s
        self.app_kwargs = dict(app_kwargs)

        self._owns_runtime_dir = runtime_dir is None
        self.runtime_dir = (Path(runtime_dir) if runtime_dir is not None
                            else Path(tempfile.mkdtemp(prefix="pdc-prefork-")))
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        self.board = GenerationBoard(self.runtime_dir / _GENERATION_NAME)

        self.listen_socket = socket.create_server((host, port), backlog=128)
        self.host, self.port = self.listen_socket.getsockname()[:2]

        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._procs: list = [None] * workers
        self._spawned_at: list[float] = [0.0] * workers
        self._crashes: list[int] = [0] * workers
        self._respawn_at: list[float] = [0.0] * workers
        self._deaths = 0
        self._respawns = 0
        self._monitor: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PreforkServer":
        self._write_manifest()
        for index in range(self.workers):
            self._spawn(index)
        monitor = threading.Thread(target=self._monitor_loop,
                                   name="prefork-monitor", daemon=True)
        with self._lock:
            self._monitor = monitor
        monitor.start()
        return self

    def _write_manifest(self) -> None:
        manifest = {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "parent_pid": os.getpid(),
            "sockets": [str(worker_socket_path(self.runtime_dir, i))
                        for i in range(self.workers)],
        }
        atomic_write_bytes(
            self.runtime_dir / _MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"))

    def _spawn(self, index: int) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self.listen_socket, str(self.runtime_dir),
                  self.workers, self.threads_per_worker, self.queue_limit,
                  self.drain_timeout_s, self.quiet, self.app_kwargs,
                  self.tenancy_sync_interval_s),
            name=f"prefork-worker-{index}",
            daemon=True,
        )
        proc.start()
        with self._lock:
            self._procs[index] = proc
            self._spawned_at[index] = time.monotonic()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.monitor_interval_s):
            now = time.monotonic()
            for index in range(self.workers):
                with self._lock:
                    proc = self._procs[index]
                    spawned_at = self._spawned_at[index]
                    respawn_at = self._respawn_at[index]
                if proc is not None and proc.is_alive():
                    if (self._crashes[index]
                            and now - spawned_at > _STABLE_AFTER_S):
                        with self._lock:
                            self._crashes[index] = 0
                    continue
                if proc is not None:        # just found dead: reap + schedule
                    proc.join(timeout=0)
                    with self._lock:
                        self._procs[index] = None
                        self._deaths += 1
                        self._crashes[index] += 1
                        backoff = min(
                            self.respawn_backoff_s
                            * (2 ** (self._crashes[index] - 1)),
                            self.respawn_backoff_max_s)
                        self._respawn_at[index] = now + backoff
                    log.warning("worker %d died (pid %s); respawn in %.2fs",
                                index, proc.pid, backoff)
                    continue
                if not self.respawn or self._stop.is_set():
                    continue
                if now >= respawn_at:
                    self._spawn(index)
                    with self._lock:
                        self._respawns += 1

    def stop(self, graceful: bool = True, timeout_s: float = 10.0) -> None:
        """Stop the fleet: graceful drain first, then escalate."""
        self._stop.set()
        with self._lock:
            monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=2.0)
        with self._lock:
            procs = [(i, p) for i, p in enumerate(self._procs)
                     if p is not None]
        if graceful:
            for index, _proc in procs:
                control_call(worker_socket_path(self.runtime_dir, index),
                             "shutdown", timeout_s=CONTROL_TIMEOUT_S)
        deadline = time.monotonic() + timeout_s
        for _index, proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for index, proc in procs:
            if proc.is_alive():
                log.warning("worker %d did not drain; terminating", index)
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():             # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=1.0)
        try:
            self.listen_socket.close()
        except OSError:
            pass
        for index in range(self.workers):
            worker_socket_path(self.runtime_dir, index).unlink(missing_ok=True)
        if self._owns_runtime_dir:
            import shutil

            shutil.rmtree(self.runtime_dir, ignore_errors=True)

    def __enter__(self) -> "PreforkServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- supervision API (ops + tests) -------------------------------------

    def worker_pids(self) -> list[int | None]:
        with self._lock:
            return [p.pid if p is not None else None for p in self._procs]

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for p in self._procs
                       if p is not None and p.is_alive())

    def control(self, index: int, cmd: str, **fields) -> dict | None:
        return control_call(worker_socket_path(self.runtime_dir, index),
                            cmd, **fields)

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> bool:
        """Forcibly kill one worker (crash-injection for tests/drills)."""
        with self._lock:
            proc = self._procs[index]
        if proc is None or proc.pid is None or not proc.is_alive():
            return False
        try:
            os.kill(proc.pid, sig)
        except ProcessLookupError:
            return False
        return True

    def wait_ready(self, timeout_s: float = 60.0,
                   poll_s: float = 0.1) -> bool:
        """Block until every worker answers ``ready`` on its socket."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            replies = [self.control(i, "ready") for i in range(self.workers)]
            if all(r is not None and r.get("ready") for r in replies):
                return True
            time.sleep(poll_s)
        return False

    def collect_metrics(self) -> list[dict]:
        reports = []
        for index in range(self.workers):
            report = self.control(index, "metrics")
            if report and "export" in report:
                reports.append(report)
        return reports

    def aggregate_metrics(self) -> dict:
        """Supervisor-side fleet metrics (same merge the workers serve)."""
        reports = self.collect_metrics()
        merged = merge_exports(r["export"] for r in reports).snapshot()
        merged["fleet"] = fleet_section(self.workers, reports)
        return merged

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "alive": sum(1 for p in self._procs
                             if p is not None and p.is_alive()),
                "deaths": self._deaths,
                "respawns": self._respawns,
                "crash_backoff": list(self._crashes),
            }


def run_prefork(host: str = "127.0.0.1", port: int = 8000,
                workers: int = 2, queue_limit: int | None = None,
                threads_per_worker: int = 2, quiet: bool = False,
                **app_kwargs) -> int:
    """Blocking CLI entry point for ``serve --worker-model process``."""
    app_kwargs.setdefault("rebuild_mode", "background")
    if int(app_kwargs.pop("sweep_workers", 1) or 1) > 1:
        print("note: --sweep-workers > 1 is ignored in process mode "
              "(sweep points run inline inside each worker)")
    server = PreforkServer(host=host, port=port, workers=workers,
                           queue_limit=queue_limit,
                           threads_per_worker=threads_per_worker,
                           quiet=quiet, **app_kwargs)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    server.start()
    print(f"pre-fork serving on http://{server.host}:{server.port} with "
          f"{workers} worker process(es) x {threads_per_worker} thread(s) "
          f"(Ctrl-C to stop)")
    print(f"  runtime dir: {server.runtime_dir} (control sockets, "
          f"fleet manifest, generation board)")
    if server.wait_ready(timeout_s=120.0):
        print(f"  fleet ready: {server.alive_workers()}/{workers} workers warm")
    else:
        print("  warning: fleet not fully ready yet; /readyz stays 503 "
              "until every worker is warm")
    try:
        stop.wait()
    except KeyboardInterrupt:
        print("\nshutting down fleet.")
    finally:
        server.stop(graceful=True)
    return 0
