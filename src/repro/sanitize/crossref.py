"""Cross-reference static concurrency findings with runtime evidence.

The static passes over-approximate (DESIGN §9): ``serve-lock-order``
reports any both-ways *possible* acquisition order and
``serve-blocking-io-under-lock`` any known-blocking call lexically
under a lock.  After a sanitized run we can say which of those shapes
the program actually exhibited:

* a blocking-under-lock finding is **confirmed** when the flagged
  class's lock site recorded at least one stall (a hold past budget);
* a lock-order finding is **confirmed** when the runtime order graph
  contains both directions between any two lock sites the finding
  names.

Everything else is **unobserved** — not refuted (dynamic analysis only
sees executed paths), just never seen.  Both outcomes are emitted as
INFO ``sanitize-crossref`` diagnostics anchored at the static finding.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.lint.diagnostics import Diagnostic, make
from repro.lint.engine import LintConfig, LintEngine

if TYPE_CHECKING:                         # pragma: no cover
    from repro.sanitize.core import Sanitizer

CROSSREF_RULES = ("serve-blocking-io-under-lock", "serve-lock-order")

_QUALIFIED = re.compile(r"\b([A-Za-z_]\w*)\.(_?\w+)\b")
_IN_CLASS = re.compile(r"lock-order inversion in (\w+)\b")


def default_code_dirs() -> list[Path]:
    import repro.serve
    import repro.sweep
    return [Path(repro.serve.__file__).parent,
            Path(repro.sweep.__file__).parent]


def static_findings(code_dirs: Iterable[Path] | None = None,
                    ) -> list[Diagnostic]:
    """Static lock-order / blocking-under-lock findings for the dirs."""
    dirs = list(code_dirs) if code_dirs is not None else default_code_dirs()
    out: list[Diagnostic] = []
    for code_dir in dirs:
        config = LintConfig(content_dir=code_dir, code_dir=code_dir,
                            content=False, site=False, code=True)
        result = LintEngine(config).lint()
        out.extend(diag for diag in result.diagnostics
                   if diag.rule_id in CROSSREF_RULES)
    return out


def _lock_sites_in(message: str, sites: frozenset[str]) -> set[str]:
    """Registered lock-site names a static message refers to.

    Cross-class messages already qualify locks as ``Cls._lock``;
    intra-class ones say ``self._lock`` with the class named elsewhere
    in the message, so resolve ``self`` against that class.
    """
    in_class = _IN_CLASS.search(message)
    owner = in_class.group(1) if in_class else message.split(".", 1)[0]
    found: set[str] = set()
    for obj, attr in _QUALIFIED.findall(message):
        name = f"{owner}.{attr}" if obj == "self" else f"{obj}.{attr}"
        if name in sites:
            found.add(name)
    return found


def crossref(sanitizer: "Sanitizer",
             code_dirs: Iterable[Path] | None = None) -> list[Diagnostic]:
    """INFO diagnostics marking each static finding confirmed/unobserved."""
    findings = static_findings(code_dirs)
    site_names = frozenset(sanitizer.sites)
    edges = set(sanitizer.order_edges)
    out: list[Diagnostic] = []
    for diag in findings:
        if diag.rule_id == "serve-blocking-io-under-lock":
            cls = diag.message.split(".", 1)[0]
            confirmed = any(
                name.startswith(f"{cls}.") and site.stalls
                for name, site in sanitizer.sites.items())
        else:
            named = _lock_sites_in(diag.message, site_names)
            confirmed = any(
                (a, b) in edges and (b, a) in edges
                for a in named for b in named if a != b)
        status = "confirmed" if confirmed else "unobserved"
        out.append(make(
            "sanitize-crossref", diag.file, diag.span.line,
            diag.span.column,
            f"static {diag.rule_id} {status} at runtime: {diag.message}"))
    return out
