"""The sanitizer collector: instrumented locks, locksets, watchdog.

Three cooperating pieces live here:

* :class:`InstrumentedLock` / :class:`InstrumentedCondition` — thin
  wrappers installed at registered lock sites.  Every successful
  acquire pushes the site onto the acquiring thread's lockset and
  records held-before edges against whatever that thread already
  holds; every release pops it and feeds the hold-time histogram.
* :class:`Sanitizer` — the process-wide collector: per-site wait/hold
  histograms, the global lock-order graph, the stall watchdog, and
  the Eraser race table (:mod:`repro.sanitize.lockset`).
* ``diagnostics()`` — renders everything observed as ordinary lint
  :class:`~repro.lint.diagnostics.Diagnostic` rows so the existing
  suppression / severity-override / baseline / reporter machinery
  applies unchanged.

Internal-lock discipline: the sanitizer's own mutex (``_mu``) is only
ever taken *while* user locks may be held, never the other way around
— no user lock is acquired under ``_mu`` — so instrumentation cannot
introduce a deadlock that the uninstrumented program lacked.

Diagnostic messages deliberately exclude durations, thread ids, and
counts: baseline entries key on ``(rule, file, message)`` and the
seeded-race acceptance test requires byte-identical reports across
runs.  Measured values travel in :meth:`Sanitizer.counters` instead.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.lint.diagnostics import Diagnostic, Severity, make, rule
from repro.lint.lockgraph import _strongly_connected
from repro.sanitize import DEFAULT_BUDGET
from repro.sanitize.lockset import RaceTable, SharedProxy, caller_site

rule("sanitize-data-race", "sanitize", Severity.ERROR,
     "write to a shared field with an empty candidate lockset")
rule("sanitize-lock-stall", "sanitize", Severity.WARNING,
     "lock held past its stall budget (blocking work under lock)")
rule("sanitize-lock-order", "sanitize", Severity.WARNING,
     "runtime lock-order inversion (locks acquired in both orders)")
rule("sanitize-crossref", "sanitize", Severity.INFO,
     "static concurrency finding confirmed/unobserved at runtime")

#: Waits shorter than this don't count as contention (scheduler noise).
_CONTENTION_FLOOR_S = 1e-3


class MiniHistogram:
    """Log-spaced latency histogram (seconds) — count/sum/max + p95.

    A trimmed cousin of ``repro.serve.metrics.LatencyHistogram``; kept
    local so the serve modules can import this package at load time
    without a cycle.
    """

    BOUNDS_S = tuple(mantissa * 10.0 ** exponent
                     for exponent in range(-6, 2)
                     for mantissa in (1.0, 2.5, 5.0))

    __slots__ = ("buckets", "count", "total_s", "max_s")

    def __init__(self) -> None:
        self.buckets = [0] * (len(self.BOUNDS_S) + 1)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.buckets[bisect_left(self.BOUNDS_S, seconds)] += 1
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def percentile(self, q: float) -> float:
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= target:
                if index >= len(self.BOUNDS_S):
                    return self.max_s
                return min(self.BOUNDS_S[index], self.max_s)
        return self.max_s

    def snapshot_ms(self) -> dict[str, float]:
        mean = self.total_s / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean * 1e3, 3),
            "p95_ms": round(self.percentile(0.95) * 1e3, 3),
            "max_ms": round(self.max_s * 1e3, 3),
        }


@dataclass
class LockSite:
    """Aggregated observations for one named lock site."""

    name: str
    budget_s: float | None                  # None: stall-watchdog exempt
    acquires: int = 0
    contended: int = 0
    stalls: int = 0
    wait_hist: MiniHistogram = field(default_factory=MiniHistogram)
    hold_hist: MiniHistogram = field(default_factory=MiniHistogram)
    #: Worst over-budget hold: (hold_s, release-site file, line).
    worst_stall: tuple[float, str, int] | None = None


class _Held:
    """One entry in a thread's lockset (depth counts RLock re-entry)."""

    __slots__ = ("site", "depth", "t0")

    def __init__(self, site: LockSite, t0: float) -> None:
        self.site = site
        self.depth = 1
        self.t0 = t0


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.held: list[_Held] = []


class InstrumentedLock:
    """Wrapper over ``threading.Lock``/``RLock`` at a registered site."""

    __slots__ = ("_inner", "_site", "_san")

    def __init__(self, inner: Any, site: LockSite, san: "Sanitizer") -> None:
        self._inner = inner
        self._site = site
        self._san = san

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        t0 = perf_counter()
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._san._note_acquired(self._site, perf_counter() - t0)
        else:
            self._san._note_failed_acquire(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        self._san._note_released(self._site)

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.release()
        return False

    def locked(self) -> bool:
        return self._inner.locked()


class InstrumentedCondition:
    """Wrapper over ``threading.Condition`` at a registered site.

    ``wait()`` releases the underlying lock, so the bookkeeping entry
    is popped for the duration of the wait and re-pushed afterwards —
    otherwise every ``Condition.wait(timeout=...)`` loop would read as
    a stall and poison the lock-order graph.
    """

    __slots__ = ("_inner", "_site", "_san")

    def __init__(self, inner: Any, site: LockSite, san: "Sanitizer") -> None:
        self._inner = inner
        self._site = site
        self._san = san

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        t0 = perf_counter()
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._san._note_acquired(self._site, perf_counter() - t0)
        else:
            self._san._note_failed_acquire(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        self._san._note_released(self._site)

    def __enter__(self) -> "InstrumentedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.release()
        return False

    def wait(self, timeout: float | None = None) -> bool:
        depth = self._san._note_wait_begin(self._site)
        try:
            return self._inner.wait(timeout)
        finally:
            self._san._note_wait_end(self._site, depth)

    def wait_for(self, predicate: Any, timeout: float | None = None) -> Any:
        depth = self._san._note_wait_begin(self._site)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._san._note_wait_end(self._site, depth)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


class Sanitizer:
    """Process-wide concurrency observer.

    ``hold_budget_ms`` is the default stall budget applied to every
    registered lock site; individual sites can override or opt out via
    ``register_lock(..., stall_budget_ms=...)``.
    """

    def __init__(self, hold_budget_ms: float = 250.0) -> None:
        self.hold_budget_s = hold_budget_ms / 1e3
        self._mu = threading.Lock()
        self._threads = _ThreadState()
        self.sites: dict[str, LockSite] = {}
        #: (held-site, taken-site) -> first-observed acquiring file/line.
        self.order_edges: dict[tuple[str, str], tuple[str, int]] = {}
        self.races = RaceTable(self)

    # -- registration ---------------------------------------------------

    def _site(self, name: str, stall_budget_ms: Any) -> LockSite:
        if stall_budget_ms is DEFAULT_BUDGET:
            budget_s: float | None = self.hold_budget_s
        elif stall_budget_ms is None:
            budget_s = None
        else:
            budget_s = float(stall_budget_ms) / 1e3
        with self._mu:
            site = self.sites.get(name)
            if site is None:
                site = LockSite(name, budget_s)
                self.sites[name] = site
            return site

    def wrap(self, lock: Any, name: str,
             stall_budget_ms: Any = DEFAULT_BUDGET) -> Any:
        if isinstance(lock, (InstrumentedLock, InstrumentedCondition)):
            return lock
        site = self._site(name, stall_budget_ms)
        if hasattr(lock, "notify") and hasattr(lock, "wait"):
            return InstrumentedCondition(lock, site, self)
        return InstrumentedLock(lock, site, self)

    def instrument_attr(self, owner: Any, attr: str, name: str,
                        stall_budget_ms: Any = DEFAULT_BUDGET) -> None:
        lock = getattr(owner, attr)
        wrapped = self.wrap(lock, name, stall_budget_ms)
        if wrapped is not lock:
            setattr(owner, attr, wrapped)

    def share(self, obj: Any, name: str) -> SharedProxy:
        return SharedProxy(obj, name, self)

    # -- lockset bookkeeping (called from instrumented wrappers) --------

    def _note_acquired(self, site: LockSite, wait_s: float) -> None:
        held = self._threads.held
        for entry in held:
            if entry.site is site:          # RLock re-entry
                entry.depth += 1
                with self._mu:
                    site.acquires += 1
                    site.wait_hist.observe(wait_s)
                return
        new_edges: list[tuple[str, str]] = []
        with self._mu:
            site.acquires += 1
            site.wait_hist.observe(wait_s)
            if wait_s >= _CONTENTION_FLOOR_S:
                site.contended += 1
            for entry in held:
                key = (entry.site.name, site.name)
                if key not in self.order_edges:
                    new_edges.append(key)
        if new_edges:                       # rare: capture frames off-mutex
            where = caller_site()
            with self._mu:
                for key in new_edges:
                    self.order_edges.setdefault(key, where)
        held.append(_Held(site, perf_counter()))

    def _note_failed_acquire(self, site: LockSite) -> None:
        with self._mu:
            site.contended += 1

    def _note_released(self, site: LockSite) -> None:
        held = self._threads.held
        for index in range(len(held) - 1, -1, -1):
            entry = held[index]
            if entry.site is site:
                entry.depth -= 1
                if entry.depth == 0:
                    del held[index]
                    self._record_hold(site, perf_counter() - entry.t0)
                return
        # Released by a thread that never acquired it (legal for a bare
        # Lock used as a signal) — nothing to time.

    def _record_hold(self, site: LockSite, hold_s: float) -> None:
        over = site.budget_s is not None and hold_s > site.budget_s
        where = caller_site() if over else None
        with self._mu:
            site.hold_hist.observe(hold_s)
            if over:
                site.stalls += 1
                if site.worst_stall is None or hold_s > site.worst_stall[0]:
                    site.worst_stall = (hold_s, where[0], where[1])

    def _note_wait_begin(self, site: LockSite) -> int:
        held = self._threads.held
        for index in range(len(held) - 1, -1, -1):
            entry = held[index]
            if entry.site is site:
                del held[index]
                self._record_hold(site, perf_counter() - entry.t0)
                return entry.depth
        return 1

    def _note_wait_end(self, site: LockSite, depth: int) -> None:
        entry = _Held(site, perf_counter())
        entry.depth = depth
        self._threads.held.append(entry)
        with self._mu:
            site.acquires += 1

    def held_names(self) -> frozenset[str]:
        """Lock sites held by the calling thread (for the race table)."""
        return frozenset(entry.site.name for entry in self._threads.held)

    # -- reporting ------------------------------------------------------

    def counters(self) -> dict[str, Any]:
        """JSON-safe snapshot for ``/api/metrics`` and the CLI."""
        with self._mu:
            locks = {
                name: {
                    "acquires": site.acquires,
                    "contended": site.contended,
                    "stalls": site.stalls,
                    "stall_budget_ms": (
                        None if site.budget_s is None
                        else round(site.budget_s * 1e3, 3)),
                    "wait": site.wait_hist.snapshot_ms(),
                    "hold": site.hold_hist.snapshot_ms(),
                }
                for name, site in sorted(self.sites.items())
            }
            return {
                "races": self.races.race_count(),
                "stalls": sum(site.stalls for site in self.sites.values()),
                "order_edges": len(self.order_edges),
                "order_cycles": len(self._cycles_locked()),
                "shared_fields": self.races.field_count(),
                "locks": locks,
            }

    def _cycles_locked(self) -> list[list[str]]:
        nodes = ({a for a, _ in self.order_edges}
                 | {b for _, b in self.order_edges})
        edges = {pair: "" for pair in self.order_edges}
        return _strongly_connected(nodes, edges)

    def diagnostics(self) -> list[Diagnostic]:
        """Everything observed, as ordinary lint diagnostics."""
        out = list(self.races.diagnostics())
        with self._mu:
            sites = list(self.sites.values())
            edges = dict(self.order_edges)
            cycles = self._cycles_locked()
        for site in sites:
            if site.stalls and site.worst_stall is not None:
                _hold_s, file, line = site.worst_stall
                out.append(make(
                    "sanitize-lock-stall", file, line, 1,
                    f"lock {site.name} held past its stall budget "
                    f"(watchdog: blocking work while holding it?)"))
        for component in cycles:
            members = set(component)
            intra = sorted(
                (pair, where) for pair, where in edges.items()
                if pair[0] in members and pair[1] in members)
            detail = ", ".join(
                f"{a} held while taking {b} "
                f"[{Path(file).name}:{line}]"
                for (a, b), (file, line) in intra)
            file, line = min(where for _pair, where in intra)
            out.append(make(
                "sanitize-lock-order", file, line, 1,
                f"runtime lock-order inversion among "
                f"{', '.join(component)}: {detail}"))
        return out
