"""pytest integration: run a test session under the sanitizer.

``tests/conftest.py`` delegates the actual hook bodies here so the
plugin logic lives with the sanitizer (and stays importable from the
``pdcunplugged sanitize`` CLI's ``--pytest`` mode if ever needed).

``--sanitize`` activates a process-wide :class:`Sanitizer` before the
first test runs; every lock the serve/sweep stacks register from then
on is instrumented.  At session end the observations are finalized
through the lint report pipeline (suppressions / baseline) and any
*unbaselined* warning-or-worse finding — a race, a stall, or a runtime
lock-order inversion — fails the session even when every test passed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.lint.diagnostics import Severity


def addoption(parser: Any) -> None:
    group = parser.getgroup("sanitize")
    group.addoption(
        "--sanitize", action="store_true", default=False,
        help="run the session under the runtime concurrency sanitizer")
    group.addoption(
        "--sanitize-budget-ms", type=float, default=500.0,
        help="lock-stall watchdog budget in milliseconds (default 500)")
    group.addoption(
        "--sanitize-baseline", default=None, metavar="FILE",
        help="baseline file for known sanitizer findings")


def configure(config: Any) -> None:
    if not config.getoption("--sanitize"):
        return
    from repro.sanitize import activate
    config._sanitizer = activate(
        hold_budget_ms=config.getoption("--sanitize-budget-ms"))


def sessionfinish(session: Any) -> None:
    config = session.config
    sanitizer = getattr(config, "_sanitizer", None)
    if sanitizer is None:
        return
    from repro.sanitize import deactivate
    from repro.sanitize.report import finalize
    deactivate()
    baseline_opt = config.getoption("--sanitize-baseline")
    result = finalize(
        sanitizer.diagnostics(),
        baseline=Path(baseline_opt) if baseline_opt else None)
    config._sanitize_result = (sanitizer, result)
    failing = [diag for diag in result.diagnostics
               if diag.severity.rank >= Severity.WARNING.rank]
    if failing and session.exitstatus == 0:
        session.exitstatus = 1


def terminal_summary(terminalreporter: Any, config: Any) -> None:
    bundle = getattr(config, "_sanitize_result", None)
    if bundle is None:
        return
    sanitizer, result = bundle
    counters = sanitizer.counters()
    terminalreporter.section("concurrency sanitizer")
    terminalreporter.line(
        f"lock sites: {len(counters['locks'])}  "
        f"races: {counters['races']}  stalls: {counters['stalls']}  "
        f"order edges: {counters['order_edges']}  "
        f"baselined: {result.stats.baselined}")
    for diag in result.diagnostics:
        terminalreporter.line(
            f"{diag.severity.value}: {diag.rule_id} "
            f"{diag.file}:{diag.span.line} {diag.message}")
