"""Render sanitizer observations through the lint reporting pipeline.

:func:`finalize` takes raw sanitizer diagnostics and applies, in
order, exactly the report-time filters the lint engine applies:
``# lint: disable=`` suppression comments in the flagged source files,
rule disabling / ``--select`` keep-lists, the baseline ratchet, and
severity overrides.  The result is an ordinary
:class:`~repro.lint.engine.LintResult`, so ``render_text`` /
``render_json`` / ``render_sarif`` and the lint exit-code semantics
work on sanitizer output unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.lint.baseline import baseline_key, load_baseline
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    Suppressions,
    is_suppressed,
    python_suppressions,
    sort_key,
)
from repro.lint.engine import LintResult, LintStats


def validate_rules(*rule_sets: Iterable[str] | None) -> None:
    """Raise ``ValueError`` for rule ids absent from the registry."""
    unknown: set[str] = set()
    for rules in rule_sets:
        if rules:
            unknown |= set(rules) - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown lint rule(s): {', '.join(sorted(unknown))}")


def _suppressions_for(file: str,
                      cache: dict[str, Suppressions | None],
                      ) -> Suppressions | None:
    if file not in cache:
        suppressions: Suppressions | None = None
        path = Path(file)
        if path.suffix == ".py" and path.is_file():
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                text = ""
            if text:
                suppressions = python_suppressions(text)
        cache[file] = suppressions
    return cache[file]


def finalize(diagnostics: Iterable[Diagnostic],
             *,
             severity_overrides: Mapping[str, Severity] | None = None,
             disabled: frozenset[str] = frozenset(),
             selected: frozenset[str] | None = None,
             baseline: Path | None = None,
             ) -> LintResult:
    """Apply report-time filtering and return a ``LintResult``."""
    validate_rules(severity_overrides, disabled, selected)
    baselined = load_baseline(baseline) if baseline else frozenset()
    overrides = dict(severity_overrides or {})
    suppression_cache: dict[str, Suppressions | None] = {}

    kept: list[Diagnostic] = []
    stats = LintStats()
    for diag in diagnostics:
        if diag.rule_id in disabled:
            continue
        if selected is not None and diag.rule_id not in selected:
            continue
        if is_suppressed(diag, _suppressions_for(diag.file,
                                                 suppression_cache)):
            continue
        if baseline_key(diag) in baselined:
            stats.baselined += 1
            continue
        override = overrides.get(diag.rule_id)
        if override is not None:
            diag = diag.with_severity(override)
        kept.append(diag)
    kept.sort(key=sort_key)
    return LintResult(diagnostics=kept, stats=stats)
