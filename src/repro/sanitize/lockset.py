"""Eraser-style lockset race detection over proxied shared objects.

The algorithm (Savage et al., *Eraser: A Dynamic Data Race Detector
for Multithreaded Programs*, 1997) tracks a state machine per shared
field:

``virgin`` → ``exclusive`` (first accessing thread) → ``shared``
(second thread reads) / ``shared-modified`` (second thread writes).

From the moment a second thread touches the field, a *candidate
lockset* C(v) — initialised to the locks held at that access — is
intersected with the accessing thread's held locks on every further
access.  When C(v) becomes empty while the field is in
``shared-modified``, no single lock protected every access: a
candidate data race, reported once per field at the file/line of the
access that emptied the set.

Only traffic through a :class:`SharedProxy` is observed (the proxy
model: opt-in, zero cost for unproxied objects, and the documented
false-negative shape — accesses that bypass the proxy are invisible).
"""

from __future__ import annotations

import sys
import threading
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:                         # pragma: no cover
    from repro.lint.diagnostics import Diagnostic
    from repro.sanitize.core import Sanitizer

_PKG_PREFIX = __name__.rsplit(".", 1)[0]    # "repro.sanitize"

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


def caller_site(skip_prefix: str = _PKG_PREFIX) -> tuple[str, int]:
    """File/line of the nearest stack frame outside this package."""
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not (module.startswith(skip_prefix)
                or module in ("threading", "contextlib")):
            return frame.f_code.co_filename, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


class _FieldState:
    __slots__ = ("state", "owner", "lockset", "reported")

    def __init__(self, owner: int) -> None:
        self.state = EXCLUSIVE
        self.owner = owner
        self.lockset: frozenset[str] | None = None   # None: not yet shared
        self.reported = False


class RaceTable:
    """Per-field lockset state machine; owns the reported races."""

    def __init__(self, sanitizer: "Sanitizer") -> None:
        self._san = sanitizer
        self._mu = threading.Lock()
        self._fields: dict[tuple[str, str], _FieldState] = {}
        #: (message, file, line) per reported race, in discovery order.
        self._races: list[tuple[str, str, int]] = []

    def on_access(self, obj_name: str, attr: str, is_write: bool) -> None:
        held = self._san.held_names()
        tid = threading.get_ident()
        with self._mu:
            fs = self._fields.get((obj_name, attr))
            if fs is None:
                self._fields[(obj_name, attr)] = _FieldState(tid)
                return
            prior: frozenset[str] = frozenset()
            if fs.state == EXCLUSIVE:
                if tid == fs.owner:
                    return
                fs.lockset = held
                fs.state = SHARED_MODIFIED if is_write else SHARED
            else:
                prior = fs.lockset if fs.lockset is not None else frozenset()
                fs.lockset = prior & held
                if is_write:
                    fs.state = SHARED_MODIFIED
            if (fs.state == SHARED_MODIFIED and not fs.lockset
                    and not fs.reported):
                fs.reported = True
                file, line = caller_site()
                kind = "write" if is_write else "read"
                guarded = (
                    f"candidate lockset was {{{', '.join(sorted(prior))}}} "
                    f"until this access" if prior
                    else "no common lock across threads")
                self._races.append((
                    f"data race on {obj_name}.{attr}: {kind} with empty "
                    f"lockset in shared-modified state ({guarded})",
                    file, line))

    def race_count(self) -> int:
        with self._mu:
            return len(self._races)

    def field_count(self) -> int:
        with self._mu:
            return len(self._fields)

    def diagnostics(self) -> Iterator["Diagnostic"]:
        from repro.lint.diagnostics import make
        with self._mu:
            races = list(self._races)
        for message, file, line in races:
            yield make("sanitize-data-race", file, line, 1, message)


class SharedProxy:
    """Attribute-access proxy feeding a :class:`RaceTable`.

    Delegates every read/write to the wrapped target; dunder traffic
    (including special-method dispatch, which CPython resolves on the
    type) bypasses observation by design.
    """

    __slots__ = ("_san_target", "_san_name", "_san_races")

    def __init__(self, target: Any, name: str,
                 sanitizer: "Sanitizer") -> None:
        object.__setattr__(self, "_san_target", target)
        object.__setattr__(self, "_san_name", name)
        object.__setattr__(self, "_san_races", sanitizer.races)

    def __getattr__(self, attr: str) -> Any:
        target = object.__getattribute__(self, "_san_target")
        value = getattr(target, attr)
        if not attr.startswith("__"):
            object.__getattribute__(self, "_san_races").on_access(
                object.__getattribute__(self, "_san_name"), attr, False)
        return value

    def __setattr__(self, attr: str, value: Any) -> None:
        object.__getattribute__(self, "_san_races").on_access(
            object.__getattribute__(self, "_san_name"), attr, True)
        setattr(object.__getattribute__(self, "_san_target"), attr, value)

    def __repr__(self) -> str:
        name = object.__getattribute__(self, "_san_name")
        return f"<SharedProxy {name}>"
