"""Runtime concurrency sanitizer — dynamic counterpart to the static passes.

``repro.lint`` reasons about locks from the AST (lock graph, fork
safety, resource lattice); this package observes the *actual* lock and
shared-state traffic of a running process:

* :class:`~repro.sanitize.core.Sanitizer` — the collector.  Wraps
  ``threading.Lock``/``RLock``/``Condition`` objects at registered
  sites, maintains per-thread locksets and a global lock-order graph,
  and runs an Eraser-style lockset state machine over attribute traffic
  on registered shared objects.
* :func:`register_lock` / :func:`share` — the instrumentation points
  the serve/sweep classes call.  Both are no-ops (a ``None`` check)
  when no sanitizer is active, so production paths pay nothing.
* Findings come out as ordinary lint :class:`~repro.lint.diagnostics.
  Diagnostic` objects, so suppressions, severity overrides, the
  baseline ratchet, and the text/JSON/SARIF reporters work unchanged.

This module is deliberately import-light: the serve and sweep modules
import it at module load, so it must not drag in ``repro.lint`` (or
anything else heavy) until a sanitizer is actually activated.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "activate",
    "activation",
    "current",
    "deactivate",
    "register_lock",
    "share",
    "wrap_lock",
]

#: Sentinel: "use the sanitizer's default stall budget for this site".
DEFAULT_BUDGET = object()

_state_lock = threading.Lock()
_active: Any = None


def current():
    """The active :class:`Sanitizer`, or ``None``."""
    return _active


def activate(sanitizer=None, **kwargs):
    """Install ``sanitizer`` (or a fresh one built from ``kwargs``) as
    the process-wide active sanitizer and return it."""
    global _active
    if sanitizer is None:
        from repro.sanitize.core import Sanitizer
        sanitizer = Sanitizer(**kwargs)
    with _state_lock:
        if _active is not None:
            raise RuntimeError("a sanitizer is already active")
        _active = sanitizer
    return sanitizer


def deactivate():
    """Remove and return the active sanitizer (``None`` if none)."""
    global _active
    with _state_lock:
        sanitizer, _active = _active, None
    return sanitizer


@contextmanager
def activation(sanitizer=None, **kwargs) -> Iterator[Any]:
    """``with activation() as san:`` — activate for the block only."""
    san = activate(sanitizer, **kwargs)
    try:
        yield san
    finally:
        deactivate()


def register_lock(owner: Any, attr: str, name: str,
                  stall_budget_ms: Any = DEFAULT_BUDGET) -> None:
    """Instrument the lock stored at ``owner.<attr>`` under ``name``.

    Called from ``__init__`` bodies *after* the plain
    ``self._lock = threading.Lock()`` assignment — the assignment stays
    so the static passes keep recognising lock ownership; this call
    swaps in an instrumented wrapper only when a sanitizer is active.

    ``stall_budget_ms=None`` exempts the site from the stall watchdog
    (for locks that legitimately guard long critical sections, e.g. a
    rebuild refresh lock held across a full site rebuild).
    """
    san = _active
    if san is None:
        return
    san.instrument_attr(owner, attr, name, stall_budget_ms)


def wrap_lock(lock: Any, name: str,
              stall_budget_ms: Any = DEFAULT_BUDGET) -> Any:
    """Return an instrumented wrapper for ``lock`` (or ``lock`` itself
    when no sanitizer is active)."""
    san = _active
    if san is None:
        return lock
    return san.wrap(lock, name, stall_budget_ms)


def share(obj: Any, name: str) -> Any:
    """Wrap ``obj`` in an attribute-access proxy feeding the lockset
    race detector.  Returns ``obj`` unchanged when inactive.

    Only traffic *through the returned proxy* is observed — callers
    must thread the proxy, not the original, to every thread under
    test.  (This is the documented proxy-model limitation; see
    DESIGN §10.)
    """
    san = _active
    if san is None:
        return obj
    return san.share(obj, name)
