"""A small, dependency-free Markdown engine.

PDCunplugged authors write activities "in near plain-text" Markdown
(paper §II).  This module implements the Markdown subset those documents
use -- and that Hugo renders for them -- as a two-stage pipeline:

1. :func:`parse` turns source text into a typed block AST
   (:class:`Document` of :class:`Block` nodes containing :class:`Inline`
   nodes), which the activity parser also walks directly to recover the
   seven structured sections of an activity body.
2. :func:`render_html` (or ``Document.to_html()``) renders the AST to
   HTML with correct escaping.

Supported block constructs: ATX headings (``#`` .. ``######``), thematic
breaks (``---`` / ``***`` / ``___`` -- these delimit activity sections),
fenced and indented code blocks, block quotes, unordered/ordered lists
with nesting, pipe tables, and paragraphs.  Supported inline constructs:
escapes, code spans, strong/emphasis, links, images, and autolinks.

The implementation favours clarity over speed, per the optimization
workflow in the HPC guides ("make it work, make it right, then measure"):
the site-build benchmark shows this renderer processes the whole corpus in
well under a second, so no further optimization is warranted.
"""

from __future__ import annotations

import html
import re
from dataclasses import dataclass, field

__all__ = [
    "Block",
    "BlockQuote",
    "CodeBlock",
    "CodeSpan",
    "Document",
    "Emphasis",
    "HardBreak",
    "Heading",
    "Image",
    "Inline",
    "Link",
    "ListBlock",
    "ListItem",
    "Paragraph",
    "Strong",
    "Table",
    "Text",
    "ThematicBreak",
    "parse",
    "parse_inlines",
    "render_html",
    "plain_text",
]


# ---------------------------------------------------------------------------
# AST node types
# ---------------------------------------------------------------------------


@dataclass
class Inline:
    """Base class for inline nodes."""

    def to_html(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_text(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class Text(Inline):
    text: str

    def to_html(self) -> str:
        return html.escape(self.text, quote=False)

    def to_text(self) -> str:
        return self.text


@dataclass
class CodeSpan(Inline):
    code: str

    def to_html(self) -> str:
        return f"<code>{html.escape(self.code, quote=False)}</code>"

    def to_text(self) -> str:
        return self.code


@dataclass
class Emphasis(Inline):
    children: list[Inline]

    def to_html(self) -> str:
        return "<em>" + "".join(c.to_html() for c in self.children) + "</em>"

    def to_text(self) -> str:
        return "".join(c.to_text() for c in self.children)


@dataclass
class Strong(Inline):
    children: list[Inline]

    def to_html(self) -> str:
        return "<strong>" + "".join(c.to_html() for c in self.children) + "</strong>"

    def to_text(self) -> str:
        return "".join(c.to_text() for c in self.children)


@dataclass
class Link(Inline):
    children: list[Inline]
    url: str
    title: str = ""

    def to_html(self) -> str:
        label = "".join(c.to_html() for c in self.children)
        title = f' title="{html.escape(self.title)}"' if self.title else ""
        return f'<a href="{html.escape(self.url)}"{title}>{label}</a>'

    def to_text(self) -> str:
        return "".join(c.to_text() for c in self.children)


@dataclass
class Image(Inline):
    alt: str
    url: str
    title: str = ""

    def to_html(self) -> str:
        title = f' title="{html.escape(self.title)}"' if self.title else ""
        return f'<img src="{html.escape(self.url)}" alt="{html.escape(self.alt)}"{title} />'

    def to_text(self) -> str:
        return self.alt


@dataclass
class HardBreak(Inline):
    def to_html(self) -> str:
        return "<br />"

    def to_text(self) -> str:
        return "\n"


@dataclass
class Block:
    """Base class for block nodes."""

    def to_html(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_text(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class Heading(Block):
    level: int
    children: list[Inline]

    def to_html(self) -> str:
        inner = "".join(c.to_html() for c in self.children)
        return f"<h{self.level}>{inner}</h{self.level}>"

    def to_text(self) -> str:
        return "".join(c.to_text() for c in self.children)


@dataclass
class Paragraph(Block):
    children: list[Inline]

    def to_html(self) -> str:
        return "<p>" + "".join(c.to_html() for c in self.children) + "</p>"

    def to_text(self) -> str:
        return "".join(c.to_text() for c in self.children)


@dataclass
class ThematicBreak(Block):
    def to_html(self) -> str:
        return "<hr />"

    def to_text(self) -> str:
        return ""


@dataclass
class CodeBlock(Block):
    code: str
    language: str = ""

    def to_html(self) -> str:
        cls = f' class="language-{html.escape(self.language)}"' if self.language else ""
        return f"<pre><code{cls}>{html.escape(self.code, quote=False)}</code></pre>"

    def to_text(self) -> str:
        return self.code


@dataclass
class BlockQuote(Block):
    children: list[Block]

    def to_html(self) -> str:
        inner = "\n".join(c.to_html() for c in self.children)
        return f"<blockquote>\n{inner}\n</blockquote>"

    def to_text(self) -> str:
        return "\n".join(c.to_text() for c in self.children)


@dataclass
class ListItem(Block):
    children: list[Block]

    def to_html(self) -> str:
        # Tight list items render their single paragraph without <p>.
        if len(self.children) == 1 and isinstance(self.children[0], Paragraph):
            inner = "".join(c.to_html() for c in self.children[0].children)
        else:
            inner = "\n".join(c.to_html() for c in self.children)
        return f"<li>{inner}</li>"

    def to_text(self) -> str:
        return "\n".join(c.to_text() for c in self.children)


@dataclass
class ListBlock(Block):
    ordered: bool
    items: list[ListItem]
    start: int = 1

    def to_html(self) -> str:
        tag = "ol" if self.ordered else "ul"
        start = f' start="{self.start}"' if self.ordered and self.start != 1 else ""
        inner = "\n".join(i.to_html() for i in self.items)
        return f"<{tag}{start}>\n{inner}\n</{tag}>"

    def to_text(self) -> str:
        return "\n".join(i.to_text() for i in self.items)


@dataclass
class Table(Block):
    header: list[list[Inline]]
    rows: list[list[list[Inline]]]
    alignments: list[str] = field(default_factory=list)

    def _cell(self, cell: list[Inline], tag: str, align: str) -> str:
        attr = f' style="text-align:{align}"' if align else ""
        return f"<{tag}{attr}>" + "".join(c.to_html() for c in cell) + f"</{tag}>"

    def to_html(self) -> str:
        aligns = self.alignments or [""] * len(self.header)
        head = "".join(self._cell(c, "th", a) for c, a in zip(self.header, aligns))
        body_rows = []
        for row in self.rows:
            cells = "".join(self._cell(c, "td", a) for c, a in zip(row, aligns))
            body_rows.append(f"<tr>{cells}</tr>")
        body = "\n".join(body_rows)
        return f"<table>\n<thead><tr>{head}</tr></thead>\n<tbody>\n{body}\n</tbody>\n</table>"

    def to_text(self) -> str:
        parts = ["\t".join("".join(c.to_text() for c in cell) for cell in self.header)]
        for row in self.rows:
            parts.append("\t".join("".join(c.to_text() for c in cell) for cell in row))
        return "\n".join(parts)


@dataclass
class Document(Block):
    children: list[Block]

    def to_html(self) -> str:
        return "\n".join(c.to_html() for c in self.children)

    def to_text(self) -> str:
        return "\n".join(c.to_text() for c in self.children if c.to_text())


# ---------------------------------------------------------------------------
# Block parsing
# ---------------------------------------------------------------------------

_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_THEMATIC_RE = re.compile(r"^ {0,3}((\*\s*){3,}|(-\s*){3,}|(_\s*){3,})$")
_FENCE_RE = re.compile(r"^ {0,3}(```+|~~~+)\s*(\S*)\s*$")
_ULIST_RE = re.compile(r"^( *)([-*+])\s+(.*)$")
_OLIST_RE = re.compile(r"^( *)(\d{1,9})([.)])\s+(.*)$")
_TABLE_SEP_RE = re.compile(r"^ {0,3}\|?\s*:?-+:?\s*(\|\s*:?-+:?\s*)*\|?\s*$")


def parse(text: str) -> Document:
    """Parse Markdown source into a :class:`Document` AST."""
    lines = text.replace("\r\n", "\n").split("\n")
    blocks, _ = _parse_blocks(lines, 0, len(lines))
    return Document(blocks)


def _parse_blocks(lines: list[str], start: int, end: int) -> tuple[list[Block], int]:
    blocks: list[Block] = []
    i = start
    while i < end:
        line = lines[i]
        if not line.strip():
            i += 1
            continue

        m = _FENCE_RE.match(line)
        if m:
            fence, lang = m.group(1), m.group(2)
            close = re.compile(rf"^ {{0,3}}{re.escape(fence[0])}{{{len(fence)},}}\s*$")
            j = i + 1
            code_lines = []
            while j < end and not close.match(lines[j]):
                code_lines.append(lines[j])
                j += 1
            blocks.append(CodeBlock("\n".join(code_lines) + ("\n" if code_lines else ""), lang))
            i = j + 1 if j < end else j
            continue

        if _THEMATIC_RE.match(line):
            blocks.append(ThematicBreak())
            i += 1
            continue

        m = _HEADING_RE.match(line)
        if m:
            blocks.append(Heading(len(m.group(1)), parse_inlines(m.group(2))))
            i += 1
            continue

        if line.startswith("    ") and not _ULIST_RE.match(line) and not _OLIST_RE.match(line):
            j = i
            code_lines = []
            while j < end and (lines[j].startswith("    ") or not lines[j].strip()):
                if not lines[j].strip() and (j + 1 >= end or not lines[j + 1].startswith("    ")):
                    break
                code_lines.append(lines[j][4:] if lines[j].startswith("    ") else "")
                j += 1
            while code_lines and not code_lines[-1].strip():
                code_lines.pop()
            blocks.append(CodeBlock("\n".join(code_lines) + "\n"))
            i = j
            continue

        if line.lstrip().startswith(">"):
            j = i
            quoted = []
            while j < end and lines[j].lstrip().startswith(">"):
                stripped = lines[j].lstrip()[1:]
                quoted.append(stripped[1:] if stripped.startswith(" ") else stripped)
                j += 1
            inner, _ = _parse_blocks(quoted, 0, len(quoted))
            blocks.append(BlockQuote(inner))
            i = j
            continue

        if _ULIST_RE.match(line) or _OLIST_RE.match(line):
            block, i = _parse_list(lines, i, end)
            blocks.append(block)
            continue

        if "|" in line and i + 1 < end and _TABLE_SEP_RE.match(lines[i + 1]) and "|" in lines[i + 1]:
            block, i = _parse_table(lines, i, end)
            blocks.append(block)
            continue

        # Paragraph: gather until a blank line or the start of another block.
        j = i
        para: list[str] = []
        while j < end and lines[j].strip():
            probe = lines[j]
            if j > i and (
                _THEMATIC_RE.match(probe)
                or _HEADING_RE.match(probe)
                or _FENCE_RE.match(probe)
                or _ULIST_RE.match(probe)
                or _OLIST_RE.match(probe)
                or probe.lstrip().startswith(">")
            ):
                break
            para.append(probe.strip())
            j += 1
        blocks.append(Paragraph(parse_inlines(_join_paragraph(para))))
        i = j
    return blocks, i


def _join_paragraph(lines: list[str]) -> str:
    """Join paragraph lines, turning two-space line endings into hard breaks."""
    out: list[str] = []
    for idx, line in enumerate(lines):
        out.append(line)
        if idx < len(lines) - 1:
            out.append("\n")
    return "".join(out)


def _parse_list(lines: list[str], start: int, end: int) -> tuple[ListBlock, int]:
    first = lines[start]
    ordered = bool(_OLIST_RE.match(first))
    marker = _OLIST_RE if ordered else _ULIST_RE
    base_indent = len(first) - len(first.lstrip())
    start_num = int(_OLIST_RE.match(first).group(2)) if ordered else 1

    items: list[ListItem] = []
    i = start
    while i < end:
        line = lines[i]
        if not line.strip():
            # A blank line ends the list unless the next line continues it.
            if i + 1 < end and (
                marker.match(lines[i + 1])
                or (lines[i + 1].startswith(" " * (base_indent + 2)) and lines[i + 1].strip())
            ):
                i += 1
                continue
            break
        m = marker.match(line)
        indent = len(line) - len(line.lstrip())
        if not m or indent > base_indent:
            if indent > base_indent and items:
                # Continuation / nested content of the current item.
                item_lines = [line[base_indent + 2 :] if len(line) > base_indent + 2 else line.strip()]
                j = i + 1
                while j < end and (not lines[j].strip() or (len(lines[j]) - len(lines[j].lstrip())) > base_indent):
                    if not lines[j].strip() and (j + 1 >= end or marker.match(lines[j + 1]) or not lines[j + 1].strip()):
                        break
                    item_lines.append(lines[j][base_indent + 2 :] if lines[j].strip() else "")
                    j += 1
                nested, _ = _parse_blocks(item_lines, 0, len(item_lines))
                items[-1].children.extend(nested)
                i = j
                continue
            break
        if indent < base_indent:
            break
        content = m.group(3) if not ordered else m.group(4)
        items.append(ListItem([Paragraph(parse_inlines(content))]))
        i += 1
    return ListBlock(ordered, items, start_num), i


def _split_table_row(line: str) -> list[str]:
    stripped = line.strip()
    if stripped.startswith("|"):
        stripped = stripped[1:]
    if stripped.endswith("|"):
        stripped = stripped[:-1]
    cells: list[str] = []
    current: list[str] = []
    escaped = False
    for ch in stripped:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
            current.append(ch)
        elif ch == "|":
            cells.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    cells.append("".join(current).strip())
    return cells


def _parse_table(lines: list[str], start: int, end: int) -> tuple[Table, int]:
    header_cells = _split_table_row(lines[start])
    sep_cells = _split_table_row(lines[start + 1])
    alignments: list[str] = []
    for cell in sep_cells:
        left = cell.startswith(":")
        right = cell.endswith(":")
        if left and right:
            alignments.append("center")
        elif right:
            alignments.append("right")
        elif left:
            alignments.append("left")
        else:
            alignments.append("")
    rows: list[list[list[Inline]]] = []
    i = start + 2
    while i < end and lines[i].strip() and "|" in lines[i]:
        cells = _split_table_row(lines[i])
        cells += [""] * (len(header_cells) - len(cells))
        rows.append([parse_inlines(c) for c in cells[: len(header_cells)]])
        i += 1
    header = [parse_inlines(c) for c in header_cells]
    return Table(header, rows, alignments), i


# ---------------------------------------------------------------------------
# Inline parsing
# ---------------------------------------------------------------------------

_AUTOLINK_RE = re.compile(r"<(https?://[^ >]+)>")
_URL_RE = re.compile(r"https?://[^\s<>()\[\]]+[^\s<>()\[\].,;:!?'\"]")


def parse_inlines(text: str) -> list[Inline]:
    """Parse inline Markdown into a list of :class:`Inline` nodes."""
    nodes: list[Inline] = []
    buf: list[str] = []
    i = 0
    n = len(text)

    def flush() -> None:
        if buf:
            nodes.append(Text("".join(buf)))
            buf.clear()

    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n and text[i + 1] in r"\`*_{}[]()#+-.!|<>":
            buf.append(text[i + 1])
            i += 2
            continue
        if ch == "\n":
            flush()
            nodes.append(HardBreak())
            i += 1
            continue
        if ch == "`":
            run = len(text) - len(text[i:].lstrip("`"))
            ticks = 0
            while i + ticks < n and text[i + ticks] == "`":
                ticks += 1
            close = text.find("`" * ticks, i + ticks)
            if close != -1:
                flush()
                nodes.append(CodeSpan(text[i + ticks : close].strip()))
                i = close + ticks
                continue
        if ch == "!" and i + 1 < n and text[i + 1] == "[":
            parsed = _parse_link_like(text, i + 1)
            if parsed:
                label, url, title, nxt = parsed
                flush()
                nodes.append(Image(label, url, title))
                i = nxt
                continue
        if ch == "[":
            parsed = _parse_link_like(text, i)
            if parsed:
                label, url, title, nxt = parsed
                flush()
                nodes.append(Link(parse_inlines(label), url, title))
                i = nxt
                continue
        if ch == "<":
            m = _AUTOLINK_RE.match(text, i)
            if m:
                flush()
                nodes.append(Link([Text(m.group(1))], m.group(1)))
                i = m.end()
                continue
        if ch in "*_":
            delim = ch
            run = 1
            while i + run < n and text[i + run] == delim:
                run += 1
            run = min(run, 2)
            closer = text.find(delim * run, i + run)
            while closer != -1 and closer + run < n and text[closer + run] == delim and run == 1:
                closer = text.find(delim * run, closer + 1)
            if closer != -1 and closer > i + run:
                inner = text[i + run : closer]
                if inner.strip():
                    flush()
                    children = parse_inlines(inner)
                    nodes.append(Strong(children) if run == 2 else Emphasis(children))
                    i = closer + run
                    continue
        buf.append(ch)
        i += 1
    flush()
    return nodes


def _parse_link_like(text: str, start: int) -> tuple[str, str, str, int] | None:
    """Parse ``[label](url "title")`` starting at ``text[start] == '['``."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        if text[i] == "\\":
            i += 2
            continue
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                break
        i += 1
    if i >= n or depth != 0:
        return None
    label = text[start + 1 : i]
    if i + 1 >= n or text[i + 1] != "(":
        return None
    j = i + 2
    depth = 1
    while j < n:
        if text[j] == "\\":
            j += 2
            continue
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                break
        j += 1
    if j >= n:
        return None
    target = text[i + 2 : j].strip()
    title = ""
    if '"' in target:
        m = re.match(r'^(\S*)\s+"(.*)"$', target)
        if m:
            target, title = m.group(1), m.group(2)
    return label, target, title, j + 1


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def render_html(text: str) -> str:
    """Render Markdown source straight to HTML."""
    return parse(text).to_html()


def plain_text(text: str) -> str:
    """Strip Markdown formatting, returning readable plain text."""
    return parse(text).to_text()


def find_urls(text: str) -> list[str]:
    """Extract all http(s) URLs from Markdown source (links + bare URLs)."""
    urls: list[str] = []

    def walk_inlines(inlines: list[Inline]) -> None:
        for node in inlines:
            if isinstance(node, Link):
                if node.url.startswith("http"):
                    urls.append(node.url)
                walk_inlines(node.children)
            elif isinstance(node, Image):
                if node.url.startswith("http"):
                    urls.append(node.url)
            elif isinstance(node, (Emphasis, Strong)):
                walk_inlines(node.children)
            elif isinstance(node, Text):
                urls.extend(_URL_RE.findall(node.text))

    def walk_blocks(blocks: list[Block]) -> None:
        for block in blocks:
            if isinstance(block, (Paragraph, Heading)):
                walk_inlines(block.children)
            elif isinstance(block, (BlockQuote, ListItem)):
                walk_blocks(block.children)
            elif isinstance(block, ListBlock):
                walk_blocks(list(block.items))
            elif isinstance(block, Table):
                for cell in block.header:
                    walk_inlines(cell)
                for row in block.rows:
                    for cell in row:
                        walk_inlines(cell)

    walk_blocks(parse(text).children)
    return urls
