"""``repro.sitegen``: the Hugo-substitute static-site substrate.

Submodules
----------

* :mod:`repro.sitegen.frontmatter` -- front-matter parse/serialize.
* :mod:`repro.sitegen.markdown` -- Markdown AST + HTML renderer.
* :mod:`repro.sitegen.taxonomy` -- the taxonomy engine.
* :mod:`repro.sitegen.templates` -- mustache-dialect template engine.
* :mod:`repro.sitegen.archetypes` -- ``hugo new`` activity scaffolding.
* :mod:`repro.sitegen.site` -- the site builder.
* :mod:`repro.sitegen.views` -- CS2013 / TCPP / Courses / Accessibility views.
* :mod:`repro.sitegen.linkcheck` -- external-resource link auditing.
"""

from repro.sitegen.archetypes import ACTIVITY_ARCHETYPE, new_activity, render_archetype
from repro.sitegen.search import SearchHit, SearchIndex
from repro.sitegen.site import BuildStats, Page, Site, SiteConfig
from repro.sitegen.taxonomy import (
    DEFAULT_TAXONOMIES,
    Taxonomy,
    TaxonomyConfig,
    TaxonomyIndex,
    Term,
    slugify,
)
from repro.sitegen.templates import Template, TemplateEnvironment
from repro.sitegen.views import (
    View,
    ViewEntry,
    ViewGroup,
    accessibility_view,
    courses_view,
    cs2013_view,
    tcpp_view,
)

__all__ = [
    "ACTIVITY_ARCHETYPE",
    "BuildStats",
    "DEFAULT_TAXONOMIES",
    "Page",
    "SearchHit",
    "SearchIndex",
    "Site",
    "SiteConfig",
    "Taxonomy",
    "TaxonomyConfig",
    "TaxonomyIndex",
    "Template",
    "TemplateEnvironment",
    "Term",
    "View",
    "ViewEntry",
    "ViewGroup",
    "accessibility_view",
    "courses_view",
    "cs2013_view",
    "new_activity",
    "render_archetype",
    "slugify",
    "tcpp_view",
]
