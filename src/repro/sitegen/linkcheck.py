"""External-resource link auditing.

The paper's future-work section (§IV) observes that "external links can
expire; several authors cite external activities in their papers, but those
links have since been de-activated."  This module implements the audit that
motivates hosting materials directly: it extracts every external URL from a
set of pages and classifies each via a pluggable *prober*.

No network access is assumed (or allowed in this environment): the default
prober is a deterministic offline heuristic, and tests inject fake probers.
A real deployment plugs in a *fetcher* — any callable
``(url, timeout) -> FetchResult`` — and the auditor adds the policy on
top: malformed-URL short-circuiting, bounded retries on transient
failures, and structured per-link results (status, attempts, detail).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable
from urllib.parse import urlparse

from repro.sitegen import markdown

__all__ = [
    "LinkStatus",
    "LinkReport",
    "AuditResult",
    "LinkAuditor",
    "FetchResult",
    "offline_prober",
]


class LinkStatus(enum.Enum):
    """Outcome of probing one URL."""

    OK = "ok"
    DEAD = "dead"
    MALFORMED = "malformed"
    SKIPPED = "skipped"


@dataclass(frozen=True)
class FetchResult:
    """Outcome of one fetch attempt against one URL."""

    status_code: int | None = None      # HTTP status, when a response arrived
    error: str | None = None            # transport-level failure description

    @property
    def ok(self) -> bool:
        return self.error is None and self.status_code is not None \
            and 200 <= self.status_code < 400


#: A pluggable transport: ``(url, timeout_s) -> FetchResult``.  Real
#: deployments wrap ``urllib``/``http.client`` HEAD requests; tests script it.
Fetcher = Callable[[str, float], FetchResult]

#: HTTP statuses treated as transient (retried up to the auditor's budget).
RETRYABLE_STATUSES: frozenset[int] = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class LinkReport:
    """One URL found on one page, with its probe outcome."""

    page: str
    url: str
    status: LinkStatus
    attempts: int = 1                   # fetch attempts spent on this URL
    detail: str = ""                    # e.g. "HTTP 404" or "timed out"


@dataclass
class AuditResult:
    """Aggregate of one audit run."""

    reports: list[LinkReport] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.reports)

    @property
    def dead(self) -> list[LinkReport]:
        return [r for r in self.reports if r.status is LinkStatus.DEAD]

    @property
    def ok(self) -> list[LinkReport]:
        return [r for r in self.reports if r.status is LinkStatus.OK]

    @property
    def malformed(self) -> list[LinkReport]:
        return [r for r in self.reports if r.status is LinkStatus.MALFORMED]

    @property
    def rot_rate(self) -> float:
        """Fraction of probed links that are dead (0.0 when nothing probed)."""
        probed = [r for r in self.reports if r.status in (LinkStatus.OK, LinkStatus.DEAD)]
        if not probed:
            return 0.0
        return len([r for r in probed if r.status is LinkStatus.DEAD]) / len(probed)

    def pages_with_dead_links(self) -> list[str]:
        return sorted({r.page for r in self.dead})

    def by_status(self) -> dict[str, int]:
        """Count of reports per status value (JSON/tooling-friendly)."""
        counts: dict[str, int] = {}
        for report in self.reports:
            counts[report.status.value] = counts.get(report.status.value, 0) + 1
        return counts


#: Hosts the paper explicitly names as having de-activated materials.
KNOWN_DEAD_HOSTS: frozenset[str] = frozenset()


def offline_prober(url: str) -> LinkStatus:
    """Deterministic offline URL classifier.

    Validates URL structure only: a syntactically sound absolute http(s)
    URL is reported OK, anything else MALFORMED.  Deployments substitute a
    real network prober; tests substitute scripted ones.
    """
    try:
        parsed = urlparse(url)
    except ValueError:
        return LinkStatus.MALFORMED
    if parsed.scheme not in ("http", "https") or not parsed.netloc or "." not in parsed.netloc:
        return LinkStatus.MALFORMED
    return LinkStatus.OK


class LinkAuditor:
    """Extract and probe every external URL across a collection of pages.

    Two injection points, mutually exclusive:

    * ``prober`` — the legacy hook: ``url -> LinkStatus`` (one shot, no
      retries).  Default: the offline structural check.
    * ``fetcher`` — a transport ``(url, timeout_s) -> FetchResult``; the
      auditor then owns the policy: malformed URLs are never fetched,
      transient failures (exceptions, 429/5xx) are retried up to
      ``retries`` extra times, and every report carries the attempt count
      and a human-readable detail.

    The retry *schedule* is the shared :class:`repro.serve.retrypolicy.
    RetryPolicy`: pass ``retry_policy=`` to control backoff shape, or the
    plain ``retries=`` count for the legacy immediate-retry behaviour.
    Sleeping between attempts is injectable (``sleep=``) and defaults to
    none — audits never stall a test run.
    """

    def __init__(
        self,
        prober: Callable[[str], LinkStatus] | None = None,
        *,
        fetcher: Fetcher | None = None,
        timeout_s: float = 5.0,
        retries: int = 1,
        retry_policy=None,
        sleep: Callable[[float], None] | None = None,
    ):
        if prober is not None and fetcher is not None:
            raise ValueError("pass either prober= or fetcher=, not both")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.prober = prober if fetcher is None else None
        if self.prober is None and fetcher is None:
            self.prober = offline_prober
        self.fetcher = fetcher
        self.timeout_s = timeout_s
        if retry_policy is None:
            # Imported lazily: repro.serve imports sitegen modules, so a
            # module-level import here would be a cycle.
            from repro.serve.retrypolicy import RetryPolicy

            retry_policy = RetryPolicy(retries=retries, base_delay_s=0.0,
                                       jitter=0.0)
        self.retry_policy = retry_policy
        self.retries = retry_policy.retries
        self.sleep = sleep

    def _probe(self, url: str) -> tuple[LinkStatus, int, str]:
        """Classify one URL -> (status, attempts, detail)."""
        if self.fetcher is None:
            return self.prober(url), 1, ""
        if offline_prober(url) is LinkStatus.MALFORMED:
            return LinkStatus.MALFORMED, 0, "not a fetchable http(s) URL"
        detail = ""
        attempts = 0
        for attempt, delay in self.retry_policy.schedule():
            if delay > 0 and self.sleep is not None:
                self.sleep(delay)
            attempts = attempt
            try:
                result = self.fetcher(url, self.timeout_s)
            except Exception as exc:
                result = FetchResult(error=f"{type(exc).__name__}: {exc}")
            if result.ok:
                return LinkStatus.OK, attempts, f"HTTP {result.status_code}"
            if result.error is not None:
                detail = result.error               # transport error: retry
            elif result.status_code in RETRYABLE_STATUSES:
                detail = f"HTTP {result.status_code}"
            else:                                   # hard HTTP failure: final
                return LinkStatus.DEAD, attempts, f"HTTP {result.status_code}"
        return LinkStatus.DEAD, attempts, detail

    def audit_page(self, name: str, body_markdown: str) -> list[LinkReport]:
        reports = []
        for url in markdown.find_urls(body_markdown):
            status, attempts, detail = self._probe(url)
            reports.append(LinkReport(page=name, url=url, status=status,
                                      attempts=attempts, detail=detail))
        return reports

    def audit(self, pages: Iterable) -> AuditResult:
        """Audit pages exposing ``name`` and ``body`` attributes."""
        result = AuditResult()
        for page in pages:
            result.reports.extend(self.audit_page(page.name, page.body))
        return result

    @staticmethod
    def audit_internal(docs: Iterable) -> list[tuple[object, object, str]]:
        """Validate internal links/anchors; ``(doc, ref, problem)`` triples.

        Internal references never touch the network, so there is nothing
        to inject here: this delegates to the single implementation in
        :mod:`repro.lint.links` (the same one the ``internal-link`` lint
        rule reports from), keeping the two checkers incapable of
        disagreeing.  ``docs`` is an iterable of
        :class:`repro.lint.document.DocumentInfo`-shaped objects.
        """
        # Imported lazily: repro.lint imports sitegen modules, so a
        # module-level import here would be a cycle.
        from repro.lint import links

        return links.check_internal_refs(docs)
