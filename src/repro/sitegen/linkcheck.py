"""External-resource link auditing.

The paper's future-work section (§IV) observes that "external links can
expire; several authors cite external activities in their papers, but those
links have since been de-activated."  This module implements the audit that
motivates hosting materials directly: it extracts every external URL from a
set of pages and classifies each via a pluggable *prober*.

No network access is assumed (or allowed in this environment): the default
prober is a deterministic offline heuristic, and tests inject fake probers.
A real deployment would plug in an HTTP HEAD prober with the same signature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable
from urllib.parse import urlparse

from repro.sitegen import markdown

__all__ = ["LinkStatus", "LinkReport", "AuditResult", "LinkAuditor", "offline_prober"]


class LinkStatus(enum.Enum):
    """Outcome of probing one URL."""

    OK = "ok"
    DEAD = "dead"
    MALFORMED = "malformed"
    SKIPPED = "skipped"


@dataclass(frozen=True)
class LinkReport:
    """One URL found on one page, with its probe outcome."""

    page: str
    url: str
    status: LinkStatus


@dataclass
class AuditResult:
    """Aggregate of one audit run."""

    reports: list[LinkReport] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.reports)

    @property
    def dead(self) -> list[LinkReport]:
        return [r for r in self.reports if r.status is LinkStatus.DEAD]

    @property
    def ok(self) -> list[LinkReport]:
        return [r for r in self.reports if r.status is LinkStatus.OK]

    @property
    def rot_rate(self) -> float:
        """Fraction of probed links that are dead (0.0 when nothing probed)."""
        probed = [r for r in self.reports if r.status in (LinkStatus.OK, LinkStatus.DEAD)]
        if not probed:
            return 0.0
        return len([r for r in probed if r.status is LinkStatus.DEAD]) / len(probed)

    def pages_with_dead_links(self) -> list[str]:
        return sorted({r.page for r in self.dead})


#: Hosts the paper explicitly names as having de-activated materials.
KNOWN_DEAD_HOSTS: frozenset[str] = frozenset()


def offline_prober(url: str) -> LinkStatus:
    """Deterministic offline URL classifier.

    Validates URL structure only: a syntactically sound absolute http(s)
    URL is reported OK, anything else MALFORMED.  Deployments substitute a
    real network prober; tests substitute scripted ones.
    """
    try:
        parsed = urlparse(url)
    except ValueError:
        return LinkStatus.MALFORMED
    if parsed.scheme not in ("http", "https") or not parsed.netloc or "." not in parsed.netloc:
        return LinkStatus.MALFORMED
    return LinkStatus.OK


class LinkAuditor:
    """Extract and probe every external URL across a collection of pages."""

    def __init__(self, prober: Callable[[str], LinkStatus] = offline_prober):
        self.prober = prober

    def audit_page(self, name: str, body_markdown: str) -> list[LinkReport]:
        reports = []
        for url in markdown.find_urls(body_markdown):
            reports.append(LinkReport(page=name, url=url, status=self.prober(url)))
        return reports

    def audit(self, pages: Iterable) -> AuditResult:
        """Audit pages exposing ``name`` and ``body`` attributes."""
        result = AuditResult()
        for page in pages:
            result.reports.extend(self.audit_page(page.name, page.body))
        return result
