"""The static-site builder: content discovery, taxonomy assembly, rendering.

This is the Hugo substitute the PDCunplugged site runs on.  A
:class:`Site` is configured with a content directory of Markdown files
(each with front matter), builds a :class:`~repro.sitegen.taxonomy.TaxonomyIndex`
over them, and renders a complete HTML tree:

* ``/index.html`` -- listing of all activities,
* ``/activities/<slug>/index.html`` -- one page per activity, with the
  colored taxonomy-chip header of paper Fig. 3,
* ``/<taxonomy>/index.html`` -- term listing per visible taxonomy,
* ``/<taxonomy>/<term>/index.html`` -- one listing page per term ("each term
  links to a separate page that contains all the activities that share that
  term", §II-B).

Rendering goes through the template engine so themes are swappable; the
built-in :data:`DEFAULT_THEME` is deliberately small.  :meth:`Site.build`
returns :class:`BuildStats` so the "fast build times" claim (§II) can be
benchmarked.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import SiteError
from repro.sitegen import frontmatter, markdown
from repro.sitegen.taxonomy import (
    DEFAULT_TAXONOMIES,
    TaxonomyConfig,
    TaxonomyIndex,
    slugify,
)
from repro.sitegen.templates import TemplateEnvironment

__all__ = ["Page", "Site", "SiteConfig", "BuildStats", "DEFAULT_THEME"]


@dataclass
class Page:
    """One content page: parsed front matter plus Markdown body."""

    name: str
    title: str
    body: str
    _params: dict = field(default_factory=dict)
    section: str = "activities"

    @property
    def params(self) -> Mapping[str, object]:
        return self._params

    @property
    def slug(self) -> str:
        return slugify(self.name)

    @property
    def url(self) -> str:
        return f"/{self.section}/{self.slug}/"

    @property
    def date(self) -> str:
        return str(self._params.get("date", ""))

    def terms(self, taxonomy: str) -> list[str]:
        raw = self._params.get(taxonomy, [])
        if isinstance(raw, str):
            return [raw] if raw else []
        return [str(t) for t in raw]

    def content_html(self) -> str:
        return markdown.render_html(self.body)

    @classmethod
    def from_text(cls, name: str, text: str, section: str = "activities") -> "Page":
        block, body = frontmatter.split_document(text)
        params = frontmatter.parse(block) if block else {}
        title = str(params.get("title", "")) or name
        return cls(name=name, title=title, body=body, _params=dict(params), section=section)

    @classmethod
    def from_file(cls, path: str | Path, section: str = "activities") -> "Page":
        path = Path(path)
        return cls.from_text(path.stem, path.read_text(encoding="utf-8"), section=section)


@dataclass(frozen=True)
class SiteConfig:
    """Site-wide configuration (the ``config.toml`` equivalent)."""

    title: str = "PDCunplugged"
    base_url: str = "https://www.pdcunplugged.org"
    taxonomies: tuple[TaxonomyConfig, ...] = DEFAULT_TAXONOMIES
    strategy: str = "indexed"


@dataclass
class BuildStats:
    """Result of one full site build."""

    pages_rendered: int = 0
    terms_rendered: int = 0
    duration_s: float = 0.0
    output_dir: Path | None = None

    @property
    def total_files(self) -> int:
        return self.pages_rendered + self.terms_rendered


DEFAULT_THEME: dict[str, str] = {
    "base": (
        "<!DOCTYPE html>\n<html><head><title>{{ title }} | {{ site_title }}</title>"
        "</head>\n<body>\n{{{ content }}}\n</body></html>\n"
    ),
    "chips": (
        '<div class="activity-header">'
        "{{# chips }}"
        '<a class="chip chip-{{ color }}" data-taxonomy="{{ taxonomy }}" '
        'href="{{ url }}">{{ term }}</a>'
        "{{/ chips }}"
        "</div>"
    ),
    "single": (
        "<article>\n<h1>{{ page.title }}</h1>\n{{> chips }}\n"
        '<div class="content">{{{ html }}}</div>\n</article>'
    ),
    "list": (
        "<section>\n<h1>{{ heading }}</h1>\n<ul>\n"
        "{{# entries }}"
        '<li><a href="{{ url }}">{{ title }}</a></li>\n'
        "{{/ entries }}"
        "</ul>\n</section>"
    ),
    "terms": (
        "<section>\n<h1>{{ heading }}</h1>\n<ul>\n"
        "{{# terms }}"
        '<li><a href="{{ url }}">{{ name }}</a> ({{ count }})</li>\n'
        "{{/ terms }}"
        "</ul>\n</section>"
    ),
    "view": (
        '<section class="view">\n<h1>{{ heading }}</h1>\n'
        "{{# groups }}"
        '<div class="view-group">\n<h2>{{ term }} ({{ count }})</h2>\n<ul>\n'
        "{{# entries }}"
        '<li><a href="{{ url }}">{{ title }}</a></li>\n'
        "{{/ entries }}"
        "</ul>\n"
        "{{# subgroups }}"
        '<div class="view-subgroup">\n<h3>{{ term }}</h3>\n<ul>\n'
        "{{# entries }}"
        '<li><a href="{{ url }}">{{ title }}</a></li>\n'
        "{{/ entries }}"
        "</ul>\n</div>\n"
        "{{/ subgroups }}"
        "</div>\n"
        "{{/ groups }}"
        "</section>"
    ),
}


class Site:
    """A content tree plus taxonomy index, renderable to static HTML."""

    def __init__(
        self,
        config: SiteConfig | None = None,
        theme: Mapping[str, str] | None = None,
    ):
        self.config = config or SiteConfig()
        self.pages: list[Page] = []
        self.index = TaxonomyIndex(self.config.taxonomies, strategy=self.config.strategy)
        self.env = TemplateEnvironment(dict(theme or DEFAULT_THEME))
        for required in ("base", "single", "list", "terms", "chips"):
            if required not in self.env:
                raise SiteError(f"theme is missing required template {required!r}")

    # -- content -----------------------------------------------------------

    def add_page(self, page: Page) -> None:
        if any(p.name == page.name for p in self.pages):
            raise SiteError(f"duplicate page name {page.name!r}")
        self.pages.append(page)
        self.index.add_page(page)

    def load_content(self, content_dir: str | Path) -> int:
        """Load every ``*.md`` under ``content_dir`` (one section per subdir)."""
        content_dir = Path(content_dir)
        if not content_dir.is_dir():
            raise SiteError(f"content directory {content_dir} does not exist")
        count = 0
        for path in sorted(content_dir.rglob("*.md")):
            rel = path.relative_to(content_dir)
            section = rel.parts[0] if len(rel.parts) > 1 else "activities"
            self.add_page(Page.from_file(path, section=section))
            count += 1
        return count

    def page(self, name: str) -> Page:
        for p in self.pages:
            if p.name == name:
                return p
        raise SiteError(f"no page named {name!r}")

    # -- rendering ---------------------------------------------------------

    def _wrap(self, title: str, content: str) -> str:
        return self.env.render(
            "base",
            {"title": title, "site_title": self.config.title, "content": content},
        )

    def render_header_chips(self, page: Page) -> str:
        """Render the colored taxonomy chips of paper Fig. 3 for a page.

        Only visible taxonomies produce chips; hidden ones (``medium``,
        ``cs2013details``, ``tcppdetails``) never appear in the header
        (§II-B.e).
        """
        return self.env.render("chips", {"chips": self._chip_context(page)})

    def render_page(self, page: Page) -> str:
        content = self.env.render(
            "single",
            {
                "page": page,
                "chips": self._chip_context(page),
                "html": page.content_html(),
            },
        )
        return self._wrap(page.title, content)

    def _chip_context(self, page: Page) -> list[dict]:
        chips = []
        for taxonomy in self.index.visible_taxonomies():
            for term_name in page.terms(taxonomy.name):
                term = taxonomy.terms.get(term_name)
                chips.append(
                    {
                        "taxonomy": taxonomy.name,
                        "term": term_name,
                        "color": taxonomy.config.color,
                        "url": term.url if term else "#",
                    }
                )
        return chips

    def render_term_page(self, taxonomy_name: str, term_name: str) -> str:
        taxonomy = self.index.taxonomy(taxonomy_name)
        term = taxonomy.term(term_name)
        entries = [
            {"title": p.title, "url": p.url}
            for p in sorted(term.pages, key=lambda p: p.title.lower())
        ]
        content = self.env.render(
            "list", {"heading": f"{taxonomy_name}: {term_name}", "entries": entries}
        )
        return self._wrap(term_name, content)

    def render_taxonomy_index(self, taxonomy_name: str) -> str:
        taxonomy = self.index.taxonomy(taxonomy_name)
        terms = [
            {"name": t.name, "url": t.url, "count": t.count}
            for t in taxonomy.sorted_terms()
        ]
        content = self.env.render("terms", {"heading": taxonomy_name, "terms": terms})
        return self._wrap(taxonomy_name, content)

    def render_home(self) -> str:
        entries = [
            {"title": p.title, "url": p.url}
            for p in sorted(self.pages, key=lambda p: p.title.lower())
        ]
        content = self.env.render("list", {"heading": "All Activities", "entries": entries})
        return self._wrap("Home", content)

    def render_view(self, view) -> str:
        """Render one browsing view (paper §II-C) as a page.

        ``view`` is a :class:`~repro.sitegen.views.View`; groups render as
        sections, learning-outcome/topic subgroups as nested lists.
        """
        content = self.env.render(
            "view",
            {
                "heading": f"{view.name} view",
                "groups": [
                    {
                        "term": g.term,
                        "count": g.count,
                        "entries": [
                            {"title": e.title, "url": e.url} for e in g.entries
                        ],
                        "subgroups": [
                            {
                                "term": sg.term,
                                "entries": [
                                    {"title": e.title, "url": e.url}
                                    for e in sg.entries
                                ],
                            }
                            for sg in g.subgroups
                        ],
                    }
                    for g in view.groups
                ],
            },
        )
        return self._wrap(f"{view.name} view", content)

    def build_views(self, output_dir: str | Path) -> int:
        """Render the four §II-C views under ``<output>/views/``."""
        from repro.sitegen.views import (
            accessibility_view,
            courses_view,
            cs2013_view,
            tcpp_view,
        )

        output = Path(output_dir)
        count = 0
        for view in (cs2013_view(self.index), tcpp_view(self.index),
                     courses_view(self.index), accessibility_view(self.index)):
            view_dir = output / "views" / slugify(view.name)
            view_dir.mkdir(parents=True, exist_ok=True)
            (view_dir / "index.html").write_text(
                self.render_view(view), encoding="utf-8"
            )
            count += 1
        return count

    def build(self, output_dir: str | Path) -> BuildStats:
        """Render the complete site into ``output_dir``."""
        started = time.perf_counter()
        output = Path(output_dir)
        output.mkdir(parents=True, exist_ok=True)
        stats = BuildStats(output_dir=output)

        (output / "index.html").write_text(self.render_home(), encoding="utf-8")
        stats.pages_rendered += 1

        for page in self.pages:
            page_dir = output / page.section / page.slug
            page_dir.mkdir(parents=True, exist_ok=True)
            (page_dir / "index.html").write_text(self.render_page(page), encoding="utf-8")
            stats.pages_rendered += 1

        for taxonomy in self.index.taxonomies():
            tax_dir = output / slugify(taxonomy.name)
            tax_dir.mkdir(parents=True, exist_ok=True)
            (tax_dir / "index.html").write_text(
                self.render_taxonomy_index(taxonomy.name), encoding="utf-8"
            )
            stats.terms_rendered += 1
            for term in taxonomy.terms.values():
                term_dir = tax_dir / term.slug
                term_dir.mkdir(parents=True, exist_ok=True)
                (term_dir / "index.html").write_text(
                    self.render_term_page(taxonomy.name, term.name), encoding="utf-8"
                )
                stats.terms_rendered += 1

        if "view" in self.env:
            stats.terms_rendered += self.build_views(output)

        stats.duration_s = time.perf_counter() - started
        return stats

    def check(self) -> None:
        """Run structural invariants over the whole site (no output)."""
        self.index.check_invariants()
        names = [p.name for p in self.pages]
        if len(set(names)) != len(names):
            raise SiteError("duplicate page names")
