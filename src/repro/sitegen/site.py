"""The static-site builder: content discovery, taxonomy assembly, rendering.

This is the Hugo substitute the PDCunplugged site runs on.  A
:class:`Site` is configured with a content directory of Markdown files
(each with front matter), builds a :class:`~repro.sitegen.taxonomy.TaxonomyIndex`
over them, and renders a complete HTML tree:

* ``/index.html`` -- listing of all activities,
* ``/activities/<slug>/index.html`` -- one page per activity, with the
  colored taxonomy-chip header of paper Fig. 3,
* ``/<taxonomy>/index.html`` -- term listing per visible taxonomy,
* ``/<taxonomy>/<term>/index.html`` -- one listing page per term ("each term
  links to a separate page that contains all the activities that share that
  term", §II-B).

Rendering goes through the template engine so themes are swappable; the
built-in :data:`DEFAULT_THEME` is deliberately small.  :meth:`Site.build`
returns :class:`BuildStats` so the "fast build times" claim (§II) can be
benchmarked.

Builds are planned, not hard-coded: :meth:`Site.render_plan` enumerates
every output file as a :class:`RenderTask` carrying a cheap content
*signature* (a hash over everything that feeds that file) and a deferred
render thunk.  ``Site.build(out, incremental=True)`` skips any task whose
signature matches the previous build, so editing one activity re-renders
only that page plus the listing pages whose membership or entries changed.
The serving layer (:mod:`repro.serve`) reuses the same plan to render
pages on demand and to invalidate exactly the dirty URLs on rebuild.
``Site.build(out, jobs=N)`` renders independent tasks on a thread pool;
output bytes are identical to a serial build.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.errors import SiteError
from repro.sitegen import frontmatter, markdown
from repro.sitegen.taxonomy import (
    DEFAULT_TAXONOMIES,
    TaxonomyConfig,
    TaxonomyIndex,
    slugify,
)
from repro.sitegen.templates import TemplateEnvironment

__all__ = [
    "Page",
    "RenderTask",
    "Site",
    "SiteConfig",
    "BuildStats",
    "DEFAULT_THEME",
]


def _hash(*parts: object) -> str:
    """Stable content signature over ``repr``-able build inputs."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:20]


@dataclass
class Page:
    """One content page: parsed front matter plus Markdown body."""

    name: str
    title: str
    body: str
    _params: dict = field(default_factory=dict)
    section: str = "activities"

    @property
    def params(self) -> Mapping[str, object]:
        return self._params

    @property
    def slug(self) -> str:
        return slugify(self.name)

    @property
    def url(self) -> str:
        return f"/{self.section}/{self.slug}/"

    @property
    def date(self) -> str:
        return str(self._params.get("date", ""))

    def terms(self, taxonomy: str) -> list[str]:
        raw = self._params.get(taxonomy, [])
        if isinstance(raw, str):
            return [raw] if raw else []
        return [str(t) for t in raw]

    def content_html(self) -> str:
        return markdown.render_html(self.body)

    @classmethod
    def from_text(cls, name: str, text: str, section: str = "activities") -> "Page":
        block, body = frontmatter.split_document(text)
        params = frontmatter.parse(block) if block else {}
        title = str(params.get("title", "")) or name
        return cls(name=name, title=title, body=body, _params=dict(params), section=section)

    @classmethod
    def from_file(cls, path: str | Path, section: str = "activities") -> "Page":
        path = Path(path)
        return cls.from_text(path.stem, path.read_text(encoding="utf-8"), section=section)


@dataclass(frozen=True)
class SiteConfig:
    """Site-wide configuration (the ``config.toml`` equivalent)."""

    title: str = "PDCunplugged"
    base_url: str = "https://www.pdcunplugged.org"
    taxonomies: tuple[TaxonomyConfig, ...] = DEFAULT_TAXONOMIES
    strategy: str = "indexed"


@dataclass
class BuildStats:
    """Result of one site build (full or incremental)."""

    pages_rendered: int = 0
    terms_rendered: int = 0
    pages_skipped: int = 0
    terms_skipped: int = 0
    files_removed: int = 0
    incremental: bool = False
    jobs: int = 1
    duration_s: float = 0.0
    output_dir: Path | None = None

    @property
    def total_files(self) -> int:
        """Files actually (re-)rendered by this build."""
        return self.pages_rendered + self.terms_rendered

    @property
    def total_skipped(self) -> int:
        """Files left untouched because their signature was unchanged."""
        return self.pages_skipped + self.terms_skipped


#: RenderTask kinds counted as "pages" in :class:`BuildStats`; everything
#: else (taxonomy indexes, term listings, views) counts as "terms".
_PAGE_KINDS = frozenset({"home", "page"})


@dataclass(frozen=True)
class RenderTask:
    """One output file of a build: where it goes, what feeds it, how to make it."""

    rel_path: str                    # e.g. "activities/gardeners/index.html"
    kind: str                        # "home" | "page" | "taxonomy" | "term" | "view"
    signature: str                   # hash over every input of this file
    render: Callable[[], str]

    @property
    def url(self) -> str:
        """Server path for this file (``a/b/index.html`` -> ``/a/b/``)."""
        if self.rel_path == "index.html":
            return "/"
        return "/" + self.rel_path[: -len("index.html")]

    @property
    def is_page(self) -> bool:
        return self.kind in _PAGE_KINDS


DEFAULT_THEME: dict[str, str] = {
    "base": (
        "<!DOCTYPE html>\n<html><head><title>{{ title }} | {{ site_title }}</title>"
        "</head>\n<body>\n{{{ content }}}\n</body></html>\n"
    ),
    "chips": (
        '<div class="activity-header">'
        "{{# chips }}"
        '<a class="chip chip-{{ color }}" data-taxonomy="{{ taxonomy }}" '
        'href="{{ url }}">{{ term }}</a>'
        "{{/ chips }}"
        "</div>"
    ),
    "single": (
        "<article>\n<h1>{{ page.title }}</h1>\n{{> chips }}\n"
        '<div class="content">{{{ html }}}</div>\n</article>'
    ),
    "list": (
        "<section>\n<h1>{{ heading }}</h1>\n<ul>\n"
        "{{# entries }}"
        '<li><a href="{{ url }}">{{ title }}</a></li>\n'
        "{{/ entries }}"
        "</ul>\n</section>"
    ),
    "terms": (
        "<section>\n<h1>{{ heading }}</h1>\n<ul>\n"
        "{{# terms }}"
        '<li><a href="{{ url }}">{{ name }}</a> ({{ count }})</li>\n'
        "{{/ terms }}"
        "</ul>\n</section>"
    ),
    "view": (
        '<section class="view">\n<h1>{{ heading }}</h1>\n'
        "{{# groups }}"
        '<div class="view-group">\n<h2>{{ term }} ({{ count }})</h2>\n<ul>\n'
        "{{# entries }}"
        '<li><a href="{{ url }}">{{ title }}</a></li>\n'
        "{{/ entries }}"
        "</ul>\n"
        "{{# subgroups }}"
        '<div class="view-subgroup">\n<h3>{{ term }}</h3>\n<ul>\n'
        "{{# entries }}"
        '<li><a href="{{ url }}">{{ title }}</a></li>\n'
        "{{/ entries }}"
        "</ul>\n</div>\n"
        "{{/ subgroups }}"
        "</div>\n"
        "{{/ groups }}"
        "</section>"
    ),
}


class Site:
    """A content tree plus taxonomy index, renderable to static HTML."""

    def __init__(
        self,
        config: SiteConfig | None = None,
        theme: Mapping[str, str] | None = None,
    ):
        self.config = config or SiteConfig()
        self.pages: list[Page] = []
        self.index = TaxonomyIndex(self.config.taxonomies, strategy=self.config.strategy)
        theme = dict(theme or DEFAULT_THEME)
        self.env = TemplateEnvironment(theme)
        for required in ("base", "single", "list", "terms", "chips"):
            if required not in self.env:
                raise SiteError(f"theme is missing required template {required!r}")
        # Theme + site-wide config feed every rendered file, so they are
        # folded into every task signature: a theme edit dirties everything.
        self._global_fingerprint = _hash(
            sorted(theme.items()), self.config.title, self.config.base_url
        )
        # rel_path -> signature as of the last build (seedable across
        # Site instances, see seed_signatures()).
        self._built_signatures: dict[str, str] = {}

    # -- content -----------------------------------------------------------

    def add_page(self, page: Page) -> None:
        if any(p.name == page.name for p in self.pages):
            raise SiteError(f"duplicate page name {page.name!r}")
        self.pages.append(page)
        self.index.add_page(page)

    def load_content(self, content_dir: str | Path) -> int:
        """Load every ``*.md`` under ``content_dir`` (one section per subdir)."""
        content_dir = Path(content_dir)
        if not content_dir.is_dir():
            raise SiteError(f"content directory {content_dir} does not exist")
        count = 0
        for path in sorted(content_dir.rglob("*.md")):
            rel = path.relative_to(content_dir)
            section = rel.parts[0] if len(rel.parts) > 1 else "activities"
            self.add_page(Page.from_file(path, section=section))
            count += 1
        return count

    def page(self, name: str) -> Page:
        for p in self.pages:
            if p.name == name:
                return p
        raise SiteError(f"no page named {name!r}")

    # -- rendering ---------------------------------------------------------

    def _wrap(self, title: str, content: str) -> str:
        return self.env.render(
            "base",
            {"title": title, "site_title": self.config.title, "content": content},
        )

    def render_header_chips(self, page: Page) -> str:
        """Render the colored taxonomy chips of paper Fig. 3 for a page.

        Only visible taxonomies produce chips; hidden ones (``medium``,
        ``cs2013details``, ``tcppdetails``) never appear in the header
        (§II-B.e).
        """
        return self.env.render("chips", {"chips": self._chip_context(page)})

    def render_page(self, page: Page) -> str:
        content = self.env.render(
            "single",
            {
                "page": page,
                "chips": self._chip_context(page),
                "html": page.content_html(),
            },
        )
        return self._wrap(page.title, content)

    def _chip_context(self, page: Page) -> list[dict]:
        chips = []
        for taxonomy in self.index.visible_taxonomies():
            for term_name in page.terms(taxonomy.name):
                term = taxonomy.terms.get(term_name)
                chips.append(
                    {
                        "taxonomy": taxonomy.name,
                        "term": term_name,
                        "color": taxonomy.config.color,
                        "url": term.url if term else "#",
                    }
                )
        return chips

    def render_term_page(self, taxonomy_name: str, term_name: str) -> str:
        taxonomy = self.index.taxonomy(taxonomy_name)
        term = taxonomy.term(term_name)
        entries = [
            {"title": p.title, "url": p.url}
            for p in sorted(term.pages, key=lambda p: p.title.lower())
        ]
        content = self.env.render(
            "list", {"heading": f"{taxonomy_name}: {term_name}", "entries": entries}
        )
        return self._wrap(term_name, content)

    def render_taxonomy_index(self, taxonomy_name: str) -> str:
        taxonomy = self.index.taxonomy(taxonomy_name)
        terms = [
            {"name": t.name, "url": t.url, "count": t.count}
            for t in taxonomy.sorted_terms()
        ]
        content = self.env.render("terms", {"heading": taxonomy_name, "terms": terms})
        return self._wrap(taxonomy_name, content)

    def render_home(self) -> str:
        entries = [
            {"title": p.title, "url": p.url}
            for p in sorted(self.pages, key=lambda p: p.title.lower())
        ]
        content = self.env.render("list", {"heading": "All Activities", "entries": entries})
        return self._wrap("Home", content)

    def render_view(self, view) -> str:
        """Render one browsing view (paper §II-C) as a page.

        ``view`` is a :class:`~repro.sitegen.views.View`; groups render as
        sections, learning-outcome/topic subgroups as nested lists.
        """
        content = self.env.render(
            "view",
            {
                "heading": f"{view.name} view",
                "groups": [
                    {
                        "term": g.term,
                        "count": g.count,
                        "entries": [
                            {"title": e.title, "url": e.url} for e in g.entries
                        ],
                        "subgroups": [
                            {
                                "term": sg.term,
                                "entries": [
                                    {"title": e.title, "url": e.url}
                                    for e in sg.entries
                                ],
                            }
                            for sg in g.subgroups
                        ],
                    }
                    for g in view.groups
                ],
            },
        )
        return self._wrap(f"{view.name} view", content)

    def build_views(self, output_dir: str | Path) -> int:
        """Render the four §II-C views under ``<output>/views/``."""
        output = Path(output_dir)
        count = 0
        for view in self._views():
            view_dir = output / "views" / slugify(view.name)
            view_dir.mkdir(parents=True, exist_ok=True)
            (view_dir / "index.html").write_text(
                self.render_view(view), encoding="utf-8"
            )
            count += 1
        return count

    # -- build planning ----------------------------------------------------

    def render_plan(self) -> list[RenderTask]:
        """Enumerate every output file with its content signature.

        Signatures are cheap (no rendering happens here) and cover every
        input of the file: the page's own source for singles, member
        titles/URLs for listing pages, term counts for taxonomy indexes,
        and the full group structure for views — plus the theme/config
        fingerprint.  Two plans agreeing on a signature are guaranteed to
        render byte-identical files.
        """
        g = self._global_fingerprint
        tasks: list[RenderTask] = []

        listing = sorted(
            ((p.title, p.url) for p in self.pages), key=lambda e: e[0].lower()
        )
        tasks.append(
            RenderTask("index.html", "home", _hash(g, "home", listing), self.render_home)
        )

        for page in self.pages:
            tasks.append(
                RenderTask(
                    f"{page.section}/{page.slug}/index.html",
                    "page",
                    _hash(g, "page", page.title, page.body,
                          sorted(page.params.items(), key=lambda kv: kv[0]),
                          self._chip_context(page)),
                    lambda p=page: self.render_page(p),
                )
            )

        for taxonomy in self.index.taxonomies():
            tax_slug = slugify(taxonomy.name)
            terms = [(t.name, t.url, t.count) for t in taxonomy.sorted_terms()]
            tasks.append(
                RenderTask(
                    f"{tax_slug}/index.html",
                    "taxonomy",
                    _hash(g, "taxonomy", taxonomy.name, terms),
                    lambda n=taxonomy.name: self.render_taxonomy_index(n),
                )
            )
            for term in taxonomy.terms.values():
                members = sorted(
                    ((p.title, p.url) for p in term.pages),
                    key=lambda e: e[0].lower(),
                )
                tasks.append(
                    RenderTask(
                        f"{tax_slug}/{term.slug}/index.html",
                        "term",
                        _hash(g, "term", taxonomy.name, term.name, members),
                        lambda tx=taxonomy.name, tm=term.name:
                            self.render_term_page(tx, tm),
                    )
                )

        if "view" in self.env:
            for view in self._views():
                structure = [
                    (grp.term,
                     [(e.title, e.url) for e in grp.entries],
                     [(sg.term, [(e.title, e.url) for e in sg.entries])
                      for sg in grp.subgroups])
                    for grp in view.groups
                ]
                tasks.append(
                    RenderTask(
                        f"views/{slugify(view.name)}/index.html",
                        "view",
                        _hash(g, "view", view.name, structure),
                        lambda v=view: self.render_view(v),
                    )
                )
        return tasks

    def _views(self) -> list:
        """The four §II-C browsing views over the current index."""
        from repro.sitegen.views import (
            accessibility_view,
            courses_view,
            cs2013_view,
            tcpp_view,
        )

        return [cs2013_view(self.index), tcpp_view(self.index),
                courses_view(self.index), accessibility_view(self.index)]

    @property
    def built_signatures(self) -> dict[str, str]:
        """rel_path -> signature recorded by the last :meth:`build`."""
        return dict(self._built_signatures)

    def seed_signatures(self, signatures: Mapping[str, str]) -> None:
        """Carry build state over from a previous :class:`Site` instance.

        The serving layer reconstructs the Site when content changes; seeding
        the fresh instance with the old signatures lets its next incremental
        build skip everything the edit did not touch.
        """
        self._built_signatures = dict(signatures)

    def build(self, output_dir: str | Path, incremental: bool = False,
              jobs: int = 1) -> BuildStats:
        """Render the site into ``output_dir``.

        With ``incremental=True``, a task whose signature matches the last
        build (and whose output file still exists) is skipped, and output
        files no longer in the plan are deleted — so editing one activity
        re-renders only its page plus the listing pages whose membership
        or entries actually changed.

        With ``jobs > 1``, pending tasks render on a thread pool.  Every
        :class:`RenderTask` is independent (own output file, read-only view
        of the site), so this is purely a scheduling change: the output is
        byte-identical to a serial build regardless of completion order.
        """
        if jobs < 1:
            raise SiteError("build jobs must be >= 1")
        started = time.perf_counter()
        output = Path(output_dir)
        output.mkdir(parents=True, exist_ok=True)
        stats = BuildStats(output_dir=output, incremental=incremental, jobs=jobs)

        plan = self.render_plan()
        pending: list[RenderTask] = []
        for task in plan:
            dest = output / task.rel_path
            if (incremental
                    and self._built_signatures.get(task.rel_path) == task.signature
                    and dest.exists()):
                if task.is_page:
                    stats.pages_skipped += 1
                else:
                    stats.terms_skipped += 1
                continue
            pending.append(task)

        def render_one(task: RenderTask) -> RenderTask:
            dest = output / task.rel_path
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(task.render(), encoding="utf-8")
            return task

        if jobs > 1 and len(pending) > 1:
            with ThreadPoolExecutor(max_workers=jobs,
                                    thread_name_prefix="sitegen") as pool:
                done = list(pool.map(render_one, pending))
        else:
            done = [render_one(task) for task in pending]
        # Tallied on the build thread so BuildStats needs no locking.
        for task in done:
            if task.is_page:
                stats.pages_rendered += 1
            else:
                stats.terms_rendered += 1

        if incremental:
            current = {task.rel_path for task in plan}
            for stale in set(self._built_signatures) - current:
                stale_file = output / stale
                if stale_file.exists():
                    stale_file.unlink()
                    stats.files_removed += 1

        self._built_signatures = {task.rel_path: task.signature for task in plan}
        stats.duration_s = time.perf_counter() - started
        return stats

    def check(self) -> None:
        """Run structural invariants over the whole site (no output)."""
        self.index.check_invariants()
        names = [p.name for p in self.pages]
        if len(set(names)) != len(names):
            raise SiteError("duplicate page names")
