"""Full-text search over the activity collection.

The repository exists so educators can "quickly find existing unplugged
activities to try out in their classes" (paper §I).  Beyond taxonomy
browsing, this module gives the site a search box: a small inverted index
with TF-IDF ranking over activity titles, section bodies, and tags.

Pure Python, deterministic, no dependencies; built once per catalog and
queried many times.  Tokenization lowercases, strips punctuation, and
drops a small stop list; title and tag hits are boosted.

The index is *patchable*: documents can be removed and re-added, and
:meth:`SearchIndex.patched_from_catalog` produces a new index from an old
one by re-tokenizing only a dirty subset — the serving layer's rebuild
path uses it so a one-file content edit patches one document's postings
instead of re-indexing the whole corpus.  The old index is never mutated
(copy-on-patch), so in-flight queries against the previous generation
stay consistent.

The index is also *persistable*: :meth:`SearchIndex.to_payload` /
:meth:`SearchIndex.from_payload` round-trip the per-document term counts
through plain JSON-able dicts (postings are derived data and rebuilt on
load), and :func:`catalog_signature` fingerprints exactly the inputs the
index is built from — the serving layer stores the payload under that
signature so a warm start can skip the cold tokenization pass, and any
content change invalidates the stored copy.
"""

from __future__ import annotations

import hashlib
import math
import re
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import SiteError

__all__ = ["SearchHit", "SearchIndex", "catalog_signature", "tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal stop list -- enough to keep section boilerplate out of the index.
STOP_WORDS: frozenset[str] = frozenset(
    """a an and are as at be by for from has in into is it its of on or
    that the their this to with students student activity the""".split()
)

#: Field weights: a title hit outranks a body hit.
FIELD_WEIGHTS = {"title": 3.0, "tags": 2.0, "body": 1.0}


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokens with stop words removed."""
    return [
        t for t in _TOKEN_RE.findall(text.lower())
        if t not in STOP_WORDS
    ]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    name: str
    title: str
    score: float
    matched_terms: tuple[str, ...]


@dataclass
class _DocEntry:
    name: str
    title: str
    field_counts: dict[str, Counter] = field(default_factory=dict)
    length: int = 0


class SearchIndex:
    """A TF-IDF inverted index over documents with title/tags/body fields."""

    def __init__(self):
        self._docs: dict[str, _DocEntry] = {}
        self._postings: dict[str, set[str]] = {}

    # -- construction -----------------------------------------------------------

    def add_document(self, name: str, title: str, body: str,
                     tags: list[str] | None = None) -> None:
        if name in self._docs:
            raise SiteError(f"duplicate document {name!r}")
        fields = {
            "title": Counter(tokenize(title)),
            "tags": Counter(
                t for tag in (tags or []) for t in tokenize(tag.replace("_", " "))
            ),
            "body": Counter(tokenize(body)),
        }
        entry = _DocEntry(
            name=name,
            title=title,
            field_counts=fields,
            length=sum(sum(c.values()) for c in fields.values()) or 1,
        )
        self._docs[name] = entry
        for counter in fields.values():
            for token in counter:
                self._postings.setdefault(token, set()).add(name)

    def remove_document(self, name: str) -> bool:
        """Drop ``name`` and its postings; ``False`` when it was absent."""
        entry = self._docs.pop(name, None)
        if entry is None:
            return False
        for counter in entry.field_counts.values():
            for token in counter:
                names = self._postings.get(token)
                if names is None:
                    continue
                names.discard(name)
                if not names:
                    del self._postings[token]
        return True

    def update_document(self, name: str, title: str, body: str,
                        tags: list[str] | None = None) -> None:
        """Replace (or insert) one document's postings in place."""
        self.remove_document(name)
        self.add_document(name, title, body, tags)

    def index_activity(self, activity) -> None:
        """Add one :class:`~repro.activities.schema.Activity` document."""
        tags = (activity.cs2013 + activity.tcpp + activity.courses
                + activity.senses + activity.medium)
        body = "\n".join(activity.sections.values())
        self.add_document(activity.name, activity.title, body, tags)

    @classmethod
    def from_catalog(cls, catalog) -> "SearchIndex":
        """Index a :class:`~repro.activities.catalog.Catalog`."""
        index = cls()
        for activity in catalog:
            index.index_activity(activity)
        return index

    def copy(self) -> "SearchIndex":
        """Independent copy (documents are shared, postings are not).

        ``_DocEntry`` instances are treated as immutable after insertion,
        so sharing them is safe; posting sets are mutated by patching and
        therefore deep-copied.
        """
        clone = type(self)()
        clone._docs = dict(self._docs)
        clone._postings = {token: set(names) for token, names in self._postings.items()}
        return clone

    def patched_from_catalog(self, catalog, dirty_names) -> "SearchIndex":
        """A new index for ``catalog``, re-tokenizing only ``dirty_names``.

        Every name in ``dirty_names`` is dropped from a copy of this index
        and re-added from the catalog when still present (covers edits,
        additions, and deletions in one pass).  The result is
        token-for-token identical to ``from_catalog(catalog)`` as long as
        ``dirty_names`` covers every changed document.
        """
        index = self.copy()
        for name in sorted(set(dirty_names)):
            index.remove_document(name)
            if name in catalog:
                index.index_activity(catalog.get(name))
        return index

    # -- persistence ------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-able form of the index: per-document term counts only.

        Postings are derived data — :meth:`from_payload` rebuilds them —
        so the payload stays small and there is nothing in it that can
        disagree with itself.
        """
        return {
            "docs": [
                {
                    "name": entry.name,
                    "title": entry.title,
                    "length": entry.length,
                    "fields": {
                        fname: dict(counter)
                        for fname, counter in entry.field_counts.items()
                    },
                }
                for entry in (self._docs[n] for n in sorted(self._docs))
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SearchIndex":
        """Rebuild an index from :meth:`to_payload` output.

        Raises ``KeyError``/``TypeError``/:class:`~repro.errors.SiteError`
        on malformed payloads; callers loading from disk treat any of
        those as "start cold" rather than trusting partial data.
        """
        index = cls()
        for doc in payload["docs"]:
            name = doc["name"]
            if name in index._docs:
                raise SiteError(f"duplicate document {name!r}")
            fields = {
                fname: Counter({str(t): int(n) for t, n in counts.items()})
                for fname, counts in doc["fields"].items()
            }
            index._docs[name] = _DocEntry(
                name=name,
                title=doc["title"],
                field_counts=fields,
                length=int(doc["length"]),
            )
            for counter in fields.values():
                for token in counter:
                    index._postings.setdefault(token, set()).add(name)
        return index

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def _idf(self, token: str) -> float:
        df = len(self._postings.get(token, ()))
        if df == 0:
            return 0.0
        return math.log(1.0 + len(self._docs) / df)

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Rank documents by weighted TF-IDF over the query tokens.

        Results are deterministic: score descending, name ascending.
        """
        tokens = tokenize(query)
        if not tokens:
            return []
        scores: dict[str, float] = {}
        matches: dict[str, set[str]] = {}
        for token in set(tokens):
            idf = self._idf(token)
            if idf == 0.0:
                continue
            for name in self._postings[token]:
                doc = self._docs[name]
                tf = sum(
                    FIELD_WEIGHTS[fname] * counter.get(token, 0)
                    for fname, counter in doc.field_counts.items()
                )
                if tf:
                    scores[name] = scores.get(name, 0.0) + (tf / doc.length) * idf
                    matches.setdefault(name, set()).add(token)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            SearchHit(
                name=name,
                title=self._docs[name].title,
                score=score,
                matched_terms=tuple(sorted(matches[name])),
            )
            for name, score in ranked[:limit]
        ]

    def suggest(self, prefix: str, limit: int = 8) -> list[str]:
        """Indexed tokens starting with ``prefix`` (for the search box)."""
        prefix = prefix.lower()
        if not prefix:
            return []
        return sorted(t for t in self._postings if t.startswith(prefix))[:limit]


def catalog_signature(catalog) -> str:
    """Fingerprint exactly the inputs :meth:`SearchIndex.from_catalog` reads.

    A persisted index is only valid for the catalog it was built from;
    this hashes the same (name, title, tags, section bodies) tuple that
    :meth:`SearchIndex.index_activity` tokenizes, so the signature changes
    iff the index contents would.
    """
    digest = hashlib.sha256()
    for activity in catalog:
        tags = (activity.cs2013 + activity.tcpp + activity.courses
                + activity.senses + activity.medium)
        body = "\n".join(activity.sections.values())
        for piece in (activity.name, activity.title, "\x1f".join(tags), body):
            digest.update(piece.encode("utf-8"))
            digest.update(b"\x1e")
    return digest.hexdigest()[:20]
