"""The four activity browsing views (paper §II-C).

Beyond per-term listing pages, PDCunplugged builds aggregate *views* so
visitors can "quickly narrow in on unplugged activities that meet their
needs":

* :func:`cs2013_view` -- knowledge units and, via the hidden
  ``cs2013details`` taxonomy, individual learning outcomes with the
  activities covering each.
* :func:`tcpp_view` -- TCPP topic areas and, via ``tcppdetails``, the
  Bloom-classified topics with their activities.
* :func:`courses_view` -- activities grouped by recommended course.
* :func:`accessibility_view` -- the ``senses`` taxonomy crossed with the
  hidden ``medium`` taxonomy ("an educator wondering how to teach
  parallelism with a deck of cards could select the 'cards' term").

Each view is a plain data structure (list of :class:`ViewGroup`) so it can
be rendered by templates, printed by the CLI, or consumed by the analytics
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sitegen.taxonomy import TaxonomyIndex

__all__ = [
    "ViewEntry",
    "ViewGroup",
    "View",
    "cs2013_view",
    "tcpp_view",
    "courses_view",
    "accessibility_view",
]


@dataclass(frozen=True)
class ViewEntry:
    """One activity listed inside a view group."""

    name: str
    title: str
    url: str


@dataclass
class ViewGroup:
    """A term (knowledge unit, topic, course, sense, or medium) with its activities."""

    term: str
    entries: list[ViewEntry] = field(default_factory=list)
    subgroups: list["ViewGroup"] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.entries)


@dataclass
class View:
    """A named view: ordered groups of activities."""

    name: str
    groups: list[ViewGroup] = field(default_factory=list)

    def group(self, term: str) -> ViewGroup:
        for g in self.groups:
            if g.term == term:
                return g
        raise KeyError(term)

    @property
    def terms(self) -> list[str]:
        return [g.term for g in self.groups]


def _entries(pages) -> list[ViewEntry]:
    return [
        ViewEntry(name=p.name, title=p.title, url=p.url)
        for p in sorted(pages, key=lambda p: p.title.lower())
    ]


def _groups_for(index: TaxonomyIndex, taxonomy: str) -> list[ViewGroup]:
    tax = index.taxonomy(taxonomy)
    return [
        ViewGroup(term=t.name, entries=_entries(t.pages))
        for t in sorted(tax.terms.values(), key=lambda t: t.name)
    ]


def cs2013_view(index: TaxonomyIndex) -> View:
    """Knowledge-unit groups, each with learning-outcome subgroups.

    Subgroups come from ``cs2013details`` terms (e.g. ``PD_1``) whose prefix
    matches the knowledge unit's detail abbreviation; the mapping between a
    knowledge unit term (``PD_ParallelDecomposition``) and its detail prefix
    is carried in the standards model, so here subgroups are attached to the
    view root keyed by raw prefix and the analytics layer joins them.
    """
    view = View("cs2013", groups=_groups_for(index, "cs2013"))
    details = _groups_for(index, "cs2013details")
    by_prefix: dict[str, list[ViewGroup]] = {}
    for group in details:
        prefix = group.term.rsplit("_", 1)[0]
        by_prefix.setdefault(prefix, []).append(group)
    for ku_group in view.groups:
        # cs2013 terms look like "PD_ParallelDecomposition"; detail terms
        # like "PD-Decomp_3".  We attach every detail group whose activities
        # are a subset of the KU's activities and whose prefix is declared
        # by those same pages -- a purely structural join.
        ku_pages = {e.name for e in ku_group.entries}
        for prefix_groups in by_prefix.values():
            for dg in prefix_groups:
                if dg.entries and {e.name for e in dg.entries} <= ku_pages:
                    if dg not in ku_group.subgroups:
                        ku_group.subgroups.append(dg)
        ku_group.subgroups.sort(key=lambda g: g.term)
    return view


def tcpp_view(index: TaxonomyIndex) -> View:
    """Topic-area groups with Bloom-classified topic subgroups."""
    view = View("tcpp", groups=_groups_for(index, "tcpp"))
    details = _groups_for(index, "tcppdetails")
    for area_group in view.groups:
        area_pages = {e.name for e in area_group.entries}
        for dg in details:
            if dg.entries and {e.name for e in dg.entries} <= area_pages:
                area_group.subgroups.append(dg)
        area_group.subgroups.sort(key=lambda g: g.term)
    return view


def courses_view(index: TaxonomyIndex) -> View:
    """Activities grouped by recommended course (paper: 'self-explanatory')."""
    return View("courses", groups=_groups_for(index, "courses"))


def accessibility_view(index: TaxonomyIndex) -> View:
    """Senses and mediums, merged into one browsable view.

    The paper builds this view from the ``senses`` taxonomy *in tandem with*
    the hidden ``medium`` taxonomy, so a visitor can filter by either a
    sensory channel ("touch") or a communication medium ("cards").
    """
    groups = _groups_for(index, "senses")
    medium_groups = _groups_for(index, "medium")
    sense_terms = {g.term for g in groups}
    for mg in medium_groups:
        if mg.term in sense_terms:
            # A term used both as sense and medium keeps one merged group.
            existing = next(g for g in groups if g.term == mg.term)
            known = {e.name for e in existing.entries}
            existing.entries.extend(e for e in mg.entries if e.name not in known)
            existing.entries.sort(key=lambda e: e.title.lower())
        else:
            groups.append(mg)
    groups.sort(key=lambda g: g.term)
    return View("accessibility", groups=groups)
