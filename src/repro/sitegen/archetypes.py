"""Archetype scaffolding: the ``hugo new activities/example.md`` equivalent.

Paper Fig. 1 defines the activity Markdown template a contributor copies to
start a new activity: a three-line front-matter header (title, date, tags)
followed by seven sections separated by horizontal rules.  This module
reproduces that template byte-for-byte via :data:`ACTIVITY_ARCHETYPE` and
implements :func:`new_activity`, which instantiates a pre-populated file the
way a local Hugo install would.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import SiteError

__all__ = [
    "ACTIVITY_ARCHETYPE",
    "ACTIVITY_SECTIONS",
    "new_activity",
    "render_archetype",
]

#: The seven body sections of an activity, in order (paper §II-A).
#: "Details" is an optional eighth inserted after "Original Author/link"
#: when the activity has no public-facing external resource.
ACTIVITY_SECTIONS: tuple[str, ...] = (
    "Original Author/link",
    "CS2013 Knowledge Unit Coverage",
    "TCPP Topics Coverage",
    "Recommended Courses",
    "Accessibility",
    "Assessment",
    "Citations",
)

#: Paper Fig. 1, verbatim.
ACTIVITY_ARCHETYPE = """\
---
title:
date:
tags:
---

## Original Author/link

---

## CS2013 Knowledge Unit Coverage

---

## TCPP Topics Coverage

---

## Recommended Courses

---

## Accessibility

---

## Assessment

---

## Citations
"""

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]*$")


def render_archetype(title: str = "", date: str = "") -> str:
    """Render the Fig. 1 template, optionally pre-filling title and date.

    With no arguments this returns the template exactly as printed in the
    paper; with arguments it behaves like ``hugo new``, which substitutes
    the file name and creation date into the archetype.
    """
    text = ACTIVITY_ARCHETYPE
    if title:
        text = text.replace("title:", f'title: "{title}"', 1)
    if date:
        text = text.replace("date:", f"date: {date}", 1)
    return text


def new_activity(
    name: str,
    content_dir: str | Path,
    title: str | None = None,
    date: str = "",
    overwrite: bool = False,
) -> Path:
    """Create ``<content_dir>/activities/<name>.md`` from the archetype.

    Mirrors ``hugo new activities/<name>.md`` (paper §II-A): the new file is
    pre-populated with the Fig. 1 template, its title defaulting to the file
    name.  Raises :class:`~repro.errors.SiteError` for invalid names or when
    the file already exists (unless ``overwrite`` is set).
    """
    if not _NAME_RE.match(name):
        raise SiteError(
            f"invalid activity name {name!r}: use lowercase letters, digits, '-' and '_'"
        )
    directory = Path(content_dir) / "activities"
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.md"
    if path.exists() and not overwrite:
        raise SiteError(f"refusing to overwrite existing activity {path}")
    path.write_text(render_archetype(title if title is not None else name, date), encoding="utf-8")
    return path
