"""Hugo-style taxonomy engine.

The paper chose Hugo "primarily due to its sophisticated support for
taxonomies" (§II-B): a *taxonomy* is a named classification axis (``cs2013``,
``tcpp``, ``courses``, ``senses``, plus the hidden ``cs2013details``,
``tcppdetails`` and ``medium``); a *term* is one value of that axis
(``PD_ParallelAlgorithms``, ``touch``, ...); and the engine automatically
groups pages by the terms they declare, producing one listing page per term.

This module reimplements that machinery: :class:`TaxonomyIndex` ingests
pages (anything exposing ``name`` and ``params``) and builds an inverted
index ``taxonomy -> term -> [pages]`` with deterministic ordering, term
slugs, and per-term weights.  Two indexing strategies are provided (eager
inverted index vs lazy per-query scan) because the site-build benchmark
ablates them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol, Sequence

from repro.errors import SiteError

__all__ = [
    "TaxonomyConfig",
    "Term",
    "Taxonomy",
    "TaxonomyIndex",
    "slugify",
    "DEFAULT_TAXONOMIES",
]


class PageLike(Protocol):
    """Minimal page interface the taxonomy engine needs."""

    name: str

    @property
    def params(self) -> Mapping[str, object]: ...


def slugify(term: str) -> str:
    """Build a URL slug for a term, mirroring Hugo's urlize behaviour."""
    out: list[str] = []
    prev_dash = False
    for ch in term.strip().lower():
        if ch.isalnum():
            out.append(ch)
            prev_dash = False
        elif ch in "_-":
            out.append(ch)
            prev_dash = False
        elif not prev_dash:
            out.append("-")
            prev_dash = True
    slug = "".join(out).strip("-")
    if not slug:
        raise SiteError(f"term {term!r} produces an empty slug")
    return slug


@dataclass(frozen=True)
class TaxonomyConfig:
    """Declaration of one taxonomy axis.

    ``hidden`` taxonomies (paper §II-B.e) are indexed and queryable but are
    not rendered as chips in the activity header.  ``color`` is the display
    color class used by the default theme ("each taxonomy is assigned a
    different color", §II-B).
    """

    name: str
    plural: str
    hidden: bool = False
    color: str = "gray"


#: The seven taxonomies PDCunplugged defines (§II-B).
DEFAULT_TAXONOMIES: tuple[TaxonomyConfig, ...] = (
    TaxonomyConfig("cs2013", "cs2013", color="blue"),
    TaxonomyConfig("tcpp", "tcpp", color="green"),
    TaxonomyConfig("courses", "courses", color="orange"),
    TaxonomyConfig("senses", "senses", color="purple"),
    TaxonomyConfig("cs2013details", "cs2013details", hidden=True),
    TaxonomyConfig("tcppdetails", "tcppdetails", hidden=True),
    TaxonomyConfig("medium", "medium", hidden=True),
)


@dataclass
class Term:
    """One term within a taxonomy, with the pages that declare it."""

    taxonomy: str
    name: str
    pages: list = field(default_factory=list)

    @property
    def slug(self) -> str:
        return slugify(self.name)

    @property
    def url(self) -> str:
        return f"/{slugify(self.taxonomy)}/{self.slug}/"

    @property
    def count(self) -> int:
        return len(self.pages)


@dataclass
class Taxonomy:
    """A taxonomy axis with all of its terms."""

    config: TaxonomyConfig
    terms: dict[str, Term] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.config.name

    def term(self, name: str) -> Term:
        try:
            return self.terms[name]
        except KeyError:
            raise SiteError(f"taxonomy {self.name!r} has no term {name!r}") from None

    def sorted_terms(self) -> list[Term]:
        """Terms ordered by descending page count, then name (Hugo's ByCount)."""
        return sorted(self.terms.values(), key=lambda t: (-t.count, t.name))

    def term_names(self) -> list[str]:
        return sorted(self.terms)

    def histogram(self) -> Counter:
        return Counter({name: term.count for name, term in self.terms.items()})


class TaxonomyIndex:
    """Inverted index from taxonomy terms to the pages declaring them.

    ``strategy`` selects between the default eager inverted index
    (``"indexed"``) and a per-query linear scan (``"scan"``).  Both answer
    identical queries; the site-build benchmark quantifies the difference.
    """

    def __init__(
        self,
        configs: Sequence[TaxonomyConfig] = DEFAULT_TAXONOMIES,
        strategy: str = "indexed",
    ):
        if strategy not in ("indexed", "scan"):
            raise SiteError(f"unknown indexing strategy {strategy!r}")
        self.strategy = strategy
        self.configs = {c.name: c for c in configs}
        if len(self.configs) != len(configs):
            raise SiteError("duplicate taxonomy names in configuration")
        self._pages: list[PageLike] = []
        self._taxonomies: dict[str, Taxonomy] = {
            c.name: Taxonomy(c) for c in configs
        }

    # -- ingestion ---------------------------------------------------------

    def add_page(self, page: PageLike) -> None:
        """Register a page, indexing every taxonomy term it declares.

        Term lists in page params may be a single string or a list of
        strings; Hugo accepts both and so do we.
        """
        self._pages.append(page)
        if self.strategy != "indexed":
            return
        for tax_name, terms in self._page_terms(page):
            taxonomy = self._taxonomies[tax_name]
            for term_name in terms:
                term = taxonomy.terms.setdefault(term_name, Term(tax_name, term_name))
                term.pages.append(page)

    def add_pages(self, pages: Iterable[PageLike]) -> None:
        for page in pages:
            self.add_page(page)

    def _page_terms(self, page: PageLike) -> Iterable[tuple[str, list[str]]]:
        for tax_name in self.configs:
            raw = page.params.get(tax_name)
            if raw is None:
                continue
            if isinstance(raw, str):
                terms = [raw]
            elif isinstance(raw, (list, tuple)):
                terms = [str(t) for t in raw]
            else:
                raise SiteError(
                    f"page {page.name!r}: taxonomy {tax_name!r} must be a string "
                    f"or list, got {type(raw).__name__}"
                )
            seen: set[str] = set()
            unique: list[str] = []
            for t in terms:
                if t not in seen:
                    seen.add(t)
                    unique.append(t)
            yield tax_name, unique

    # -- queries -----------------------------------------------------------

    @property
    def pages(self) -> list[PageLike]:
        return list(self._pages)

    def taxonomy(self, name: str) -> Taxonomy:
        if self.strategy == "scan":
            return self._scan_taxonomy(name)
        try:
            return self._taxonomies[name]
        except KeyError:
            raise SiteError(f"unknown taxonomy {name!r}") from None

    def _scan_taxonomy(self, name: str) -> Taxonomy:
        if name not in self.configs:
            raise SiteError(f"unknown taxonomy {name!r}")
        taxonomy = Taxonomy(self.configs[name])
        for page in self._pages:
            for tax_name, terms in self._page_terms(page):
                if tax_name != name:
                    continue
                for term_name in terms:
                    term = taxonomy.terms.setdefault(term_name, Term(name, term_name))
                    term.pages.append(page)
        return taxonomy

    def taxonomies(self) -> list[Taxonomy]:
        return [self.taxonomy(name) for name in self.configs]

    def visible_taxonomies(self) -> list[Taxonomy]:
        return [t for t in self.taxonomies() if not t.config.hidden]

    def pages_with_term(self, taxonomy: str, term: str) -> list[PageLike]:
        tax = self.taxonomy(taxonomy)
        if term not in tax.terms:
            return []
        return list(tax.terms[term].pages)

    def pages_with_all_terms(self, taxonomy: str, terms: Sequence[str]) -> list[PageLike]:
        """Pages carrying *every* one of ``terms`` (intersection query)."""
        result: list[PageLike] | None = None
        for term in terms:
            pages = self.pages_with_term(taxonomy, term)
            if result is None:
                result = pages
            else:
                keep = {id(p) for p in pages}
                result = [p for p in result if id(p) in keep]
        return result or []

    def term_counts(self, taxonomy: str) -> Counter:
        return self.taxonomy(taxonomy).histogram()

    def check_invariants(self) -> None:
        """Verify index consistency (used by tests and ``repro validate``).

        * every indexed page is a registered page,
        * every page's declared terms appear in the index,
        * no term exists with zero pages.
        """
        registered = {id(p) for p in self._pages}
        for taxonomy in self.taxonomies():
            for term in taxonomy.terms.values():
                if term.count == 0:
                    raise SiteError(f"empty term {term.name!r} in {taxonomy.name!r}")
                for page in term.pages:
                    if id(page) not in registered:
                        raise SiteError(
                            f"term {term.name!r} references unregistered page {page.name!r}"
                        )
        for page in self._pages:
            for tax_name, terms in self._page_terms(page):
                taxonomy = self.taxonomy(tax_name)
                for term_name in terms:
                    if term_name not in taxonomy.terms or not any(
                        p is page for p in taxonomy.terms[term_name].pages
                    ):
                        raise SiteError(
                            f"page {page.name!r} term {term_name!r} missing from index"
                        )
