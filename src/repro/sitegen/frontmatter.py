"""Hugo-style front matter parsing and serialization.

PDCunplugged stores each activity as a Markdown file whose first block is a
front-matter header delimited by ``---`` lines (paper Figs. 1 and 2)::

    ---
    title: "FindSmallestCard"
    cs2013: ["PD_ParallelDecomposition", \\
             "PD_ParallelAlgorithms"]
    tcpp: ["TCPP_Algorithms", "TCPP_Programming"]
    courses: ["CS1", "CS2", "DSA"]
    senses: ["touch", "visual"]
    ---

This module implements the YAML subset Hugo front matter actually uses:

* scalar values: double/single-quoted strings, bare strings, integers,
  floats, booleans (``true``/``false``), ISO dates (kept as strings),
* inline lists ``["a", "b"]`` including the backslash line-continuation
  style shown in the paper's Fig. 2,
* block lists::

      tags:
        - one
        - two

* comments introduced by ``#`` outside quotes, and blank lines.

Nested mappings are intentionally unsupported -- no PDCunplugged header uses
them -- and produce a :class:`~repro.errors.FrontMatterError` rather than a
silent misparse.

The inverse, :func:`serialize`, emits a canonical header that
:func:`parse` round-trips (property-tested in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import FrontMatterError

__all__ = [
    "KeySpan",
    "parse",
    "parse_value",
    "parse_with_spans",
    "serialize",
    "serialize_value",
    "split_document",
    "split_document_with_lines",
]

DELIMITER = "---"

Scalar = str | int | float | bool
Value = Scalar | list[Scalar]


def split_document(text: str) -> tuple[str | None, str]:
    """Split a content file into ``(front_matter_block, body)``.

    The front matter must start on the very first line.  Returns ``None``
    for the block when the document has no front matter.  The delimiter
    lines are not included in the returned block; the body keeps its own
    leading newline stripped (one level) so round-tripping is stable.
    """
    block, body, _, _ = split_document_with_lines(text)
    return block, body


def split_document_with_lines(text: str) -> tuple[str | None, str, int, int]:
    """:func:`split_document` plus source line positions.

    Returns ``(block, body, block_offset, body_offset)`` where the offsets
    are what must be *added* to a 1-based line number inside the block /
    body to obtain the 1-based line number in the original document.  With
    no front matter both offsets are 0.
    """
    lines = text.split("\n")
    if not lines or lines[0].strip() != DELIMITER:
        return None, text, 0, 0
    for idx in range(1, len(lines)):
        if lines[idx].strip() == DELIMITER:
            block = "\n".join(lines[1:idx])
            body = "\n".join(lines[idx + 1 :])
            body_offset = idx + 1                 # body line 1 == doc line idx+2
            if body.startswith("\n"):
                body = body[1:]
                body_offset += 1
            return block, body, 1, body_offset
    raise FrontMatterError("unterminated front matter: missing closing '---'", line=len(lines))


@dataclass(frozen=True)
class KeySpan:
    """Source position of one parsed front-matter key.

    ``line``/``column`` are 1-based and document-absolute once the caller's
    ``line_offset`` is applied.  For list values, ``item_lines`` carries the
    line of each element (inline-list elements all share the key line), so
    diagnostics can point at the exact offending term.
    """

    line: int
    column: int
    item_lines: tuple[int, ...] = ()


def parse(text: str) -> dict[str, Value]:
    """Parse a front-matter block (without delimiters) into a dict.

    Accepts either a whole document (leading ``---``) or a bare block; when
    given a whole document only the header is parsed.
    """
    return parse_with_spans(text)[0]


def parse_with_spans(
    text: str, line_offset: int = 0
) -> tuple[dict[str, Value], dict[str, KeySpan]]:
    """Parse a front-matter block, also returning per-key source spans.

    ``line_offset`` is added to every reported line number (spans *and*
    :class:`~repro.errors.FrontMatterError` positions) so callers parsing
    a block extracted from a larger document get document-absolute lines —
    pass the ``block_offset`` from :func:`split_document_with_lines`.
    """
    if text.lstrip("﻿").startswith(DELIMITER):
        block, _, block_offset, _ = split_document_with_lines(text.lstrip("﻿"))
        if block is None:  # pragma: no cover - startswith guarantees a block
            return {}, {}
        text = block
        line_offset += block_offset

    data: dict[str, Value] = {}
    spans: dict[str, KeySpan] = {}
    lines = _join_continuations(text.split("\n"))
    i = 0
    while i < len(lines):
        lineno, raw = lines[i]
        lineno += line_offset
        stripped = _strip_comment(raw).strip()
        if not stripped:
            i += 1
            continue
        if ":" not in stripped:
            raise FrontMatterError(f"expected 'key: value', got {raw!r}", line=lineno)
        key, _, rest = stripped.partition(":")
        key = key.strip()
        if not key or " " in key:
            raise FrontMatterError(f"invalid key {key!r}", line=lineno)
        if key in data:
            raise FrontMatterError(f"duplicate key {key!r}", line=lineno)
        column = raw.find(key) + 1
        rest = rest.strip()
        if rest:
            value = parse_value(rest, line=lineno)
            data[key] = value
            item_lines = (lineno,) * len(value) if isinstance(value, list) else ()
            spans[key] = KeySpan(lineno, column, item_lines)
            i += 1
            continue
        # Empty value: either a block list follows, or the value is "".
        items: list[Scalar] = []
        item_lines_list: list[int] = []
        saw_item = False
        j = i + 1
        while j < len(lines):
            nxt_lineno, nxt = lines[j]
            nxt_lineno += line_offset
            nxt_stripped = _strip_comment(nxt).strip()
            if not nxt_stripped:
                j += 1
                continue
            if not nxt_stripped.startswith("- "):
                break
            item = parse_value(nxt_stripped[2:].strip(), line=nxt_lineno)
            if isinstance(item, list):
                raise FrontMatterError("nested lists are not supported", line=nxt_lineno)
            items.append(item)
            item_lines_list.append(nxt_lineno)
            saw_item = True
            j += 1
        if saw_item:
            data[key] = items
            spans[key] = KeySpan(lineno, column, tuple(item_lines_list))
            i = j
        else:
            data[key] = ""
            spans[key] = KeySpan(lineno, column)
            i += 1
    return data, spans


def _join_continuations(lines: list[str]) -> list[tuple[int, str]]:
    """Merge backslash-continued lines, keeping original line numbers.

    Fig. 2 of the paper continues an inline list across lines with a
    trailing ``\\``; Hugo tolerates this and so do we.
    """
    out: list[tuple[int, str]] = []
    buffer = ""
    start = 0
    for idx, line in enumerate(lines, start=1):
        stripped = line.rstrip()
        if stripped.endswith("\\"):
            if not buffer:
                start = idx
            buffer += stripped[:-1].rstrip() + " "
            continue
        if buffer:
            out.append((start, buffer + line.strip()))
            buffer = ""
        else:
            out.append((idx, line))
    if buffer:
        raise FrontMatterError("dangling line continuation", line=start)
    return out


def _strip_comment(line: str) -> str:
    """Remove a trailing ``#`` comment that is not inside a quoted string."""
    quote: str | None = None
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if quote:
            if quote == '"' and ch == "\\" and i + 1 < n:
                i += 2
                continue
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#":
            return line[:i]
        i += 1
    return line


def parse_value(text: str, line: int | None = None) -> Value:
    """Parse a single scalar or inline-list value."""
    text = text.strip()
    if not text:
        return ""
    if text.startswith("["):
        return _parse_inline_list(text, line)
    if text.startswith("{"):
        raise FrontMatterError("nested mappings are not supported", line=line)
    return _parse_scalar(text, line)


def _parse_scalar(text: str, line: int | None) -> Scalar:
    if text.startswith('"') or text.startswith("'"):
        quote = text[0]
        inner, end = _read_quoted(text, 0, line)
        if text[end:].strip():
            raise FrontMatterError(
                f"trailing characters after string: {text[end:]!r}", line=line
            )
        return inner
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_inline_list(text: str, line: int | None) -> list[Scalar]:
    if not text.endswith("]"):
        raise FrontMatterError(f"unterminated inline list {text!r}", line=line)
    inner = text[1:-1]
    items: list[Scalar] = []
    for piece in _split_top_level_commas(inner, line):
        piece = piece.strip()
        if not piece:
            continue
        value = _parse_scalar(piece, line)
        items.append(value)
    return items


def _read_quoted(text: str, start: int, line: int | None) -> tuple[str, int]:
    """Read a quoted string starting at ``text[start]``.

    Returns (unescaped content, index just past the closing quote).
    Double-quoted strings honor ``\\\\`` and ``\\"`` escapes; single-quoted
    strings are literal.
    """
    quote = text[start]
    out: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if quote == '"' and ch == "\\" and i + 1 < n and text[i + 1] in ('"', "\\"):
            out.append(text[i + 1])
            i += 2
            continue
        if ch == quote:
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise FrontMatterError(f"unterminated string {text[start:]!r}", line=line)


def _split_top_level_commas(text: str, line: int | None) -> Iterable[str]:
    """Split a list body on commas, treating quoted strings as opaque."""
    current: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in ("'", '"'):
            _, end = _read_quoted(text, i, line)
            current.append(text[i:end])
            i = end
        elif ch == ",":
            yield "".join(current)
            current = []
            i += 1
        elif ch == "[":
            raise FrontMatterError("nested lists are not supported", line=line)
        else:
            current.append(ch)
            i += 1
    if current:
        yield "".join(current)


def serialize_value(value: Value) -> str:
    """Serialize one value in canonical front-matter form."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, list):
        return "[" + ", ".join(serialize_value(v) for v in value) + "]"
    return _quote(value)


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def serialize(data: dict[str, Any], body: str | None = None) -> str:
    """Serialize a mapping (and optional body) into a front-matter document.

    Keys keep their insertion order, matching how activity authors lay out
    headers in the paper.
    """
    lines = [DELIMITER]
    for key, value in data.items():
        lines.append(f"{key}: {serialize_value(value)}")
    lines.append(DELIMITER)
    header = "\n".join(lines) + "\n"
    if body is None:
        return header
    return header + "\n" + body
