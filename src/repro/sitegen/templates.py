"""A minimal logic-light template engine (mustache dialect).

The site builder renders pages through templates so themes stay separate
from content, mirroring Hugo's layout system.  Supported syntax:

* ``{{ name }}`` -- HTML-escaped interpolation; dotted paths traverse
  mappings, object attributes, and list indices (``{{ item.0 }}``).
* ``{{{ name }}}`` -- raw (unescaped) interpolation, for pre-rendered HTML.
* ``{{# name }} ... {{/ name }}`` -- section: iterates a list (binding each
  element as the context), recurses into a mapping/object, or acts as a
  conditional for other truthy values.
* ``{{^ name }} ... {{/ name }}`` -- inverted section (rendered when the
  value is falsy or an empty list).
* ``{{> partial }}`` -- partial inclusion from the environment.
* ``{{! comment }}`` -- ignored.

Templates are compiled once to a node tree and can be rendered many times;
the site-build benchmark renders hundreds of pages per build.
"""

from __future__ import annotations

import html
import re
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import TemplateError

__all__ = ["Template", "TemplateEnvironment", "render"]

_TAG_RE = re.compile(r"\{\{(\{?)\s*([#^/>!]?)\s*([^}]*?)\s*\}\}(\})?")


@dataclass
class _Node:
    pass


@dataclass
class _TextNode(_Node):
    text: str


@dataclass
class _VarNode(_Node):
    path: str
    raw: bool


@dataclass
class _SectionNode(_Node):
    path: str
    inverted: bool
    children: list[_Node]


@dataclass
class _PartialNode(_Node):
    name: str


class Template:
    """A compiled template."""

    def __init__(self, source: str, name: str = "<template>"):
        self.name = name
        self.source = source
        self._nodes = self._compile(source)

    # -- compilation -------------------------------------------------------

    def _compile(self, source: str) -> list[_Node]:
        root: list[_Node] = []
        stack: list[tuple[str, list[_Node]]] = [("", root)]
        pos = 0
        for match in _TAG_RE.finditer(source):
            if match.start() > pos:
                stack[-1][1].append(_TextNode(source[pos : match.start()]))
            pos = match.end()
            triple_open, sigil, body, triple_close = match.groups()
            raw = bool(triple_open and triple_close)
            if triple_open and not triple_close:
                raise TemplateError(f"{self.name}: unbalanced triple mustache at {match.group(0)!r}")
            body = body.strip()
            if sigil == "!":
                continue
            if sigil == ">":
                stack[-1][1].append(_PartialNode(body))
            elif sigil in ("#", "^"):
                node = _SectionNode(body, sigil == "^", [])
                stack[-1][1].append(node)
                stack.append((body, node.children))
            elif sigil == "/":
                if len(stack) == 1:
                    raise TemplateError(f"{self.name}: closing unopened section {body!r}")
                open_name, _ = stack.pop()
                if open_name != body:
                    raise TemplateError(
                        f"{self.name}: section mismatch, opened {open_name!r} closed {body!r}"
                    )
            else:
                if not body:
                    raise TemplateError(f"{self.name}: empty interpolation tag")
                stack[-1][1].append(_VarNode(body, raw))
        if len(stack) != 1:
            raise TemplateError(f"{self.name}: unclosed section {stack[-1][0]!r}")
        if pos < len(source):
            root.append(_TextNode(source[pos:]))
        return root

    # -- static analysis ---------------------------------------------------

    def tag_positions(self) -> list[tuple[str, str, int, int]]:
        """Every mustache tag in source as ``(sigil, body, line, column)``.

        ``sigil`` is ``""`` for plain interpolation, else one of
        ``# ^ / > !``; positions are 1-based.  Used by the lint site pass
        to anchor diagnostics at the offending tag.
        """
        out: list[tuple[str, str, int, int]] = []
        for match in _TAG_RE.finditer(self.source):
            line = self.source.count("\n", 0, match.start()) + 1
            col = match.start() - self.source.rfind("\n", 0, match.start())
            out.append((match.group(2), match.group(3).strip(), line, col))
        return out

    def referenced_partials(self) -> list[str]:
        """Names of every ``{{> partial }}`` this template includes."""
        names: list[str] = []

        def walk(nodes: list[_Node]) -> None:
            for node in nodes:
                if isinstance(node, _PartialNode):
                    names.append(node.name)
                elif isinstance(node, _SectionNode):
                    walk(node.children)

        walk(self._nodes)
        return names

    def missing_references(
        self, context: Any, env: "TemplateEnvironment | None" = None
    ) -> list[tuple[str, str]]:
        """References that do not resolve against ``context``.

        Walks the node tree the way :meth:`render` does, but instead of
        producing output records every variable or section path for which
        :func:`_lookup` finds nothing, and every partial missing from
        ``env`` — as ``(kind, name)`` pairs with kind one of
        ``"variable"``, ``"section"``, ``"partial"``.  Sections binding a
        list are descended with the first element only (enough to type-check
        the loop body without rendering the whole site).
        """
        missing: list[tuple[str, str]] = []

        def walk(nodes: list[_Node], scopes: list[Any]) -> None:
            for node in nodes:
                if isinstance(node, _VarNode):
                    if _lookup(scopes, node.path) is None:
                        missing.append(("variable", node.path))
                elif isinstance(node, _PartialNode):
                    if env is None or node.name not in env:
                        missing.append(("partial", node.name))
                    else:
                        partial = env.get(node.name)
                        walk(partial._nodes, scopes)
                elif isinstance(node, _SectionNode):
                    value = _lookup(scopes, node.path)
                    if node.inverted:
                        # Testing for absence is an inverted section's job;
                        # an unresolved path is not suspicious here.
                        walk(node.children, scopes)
                        continue
                    if value is None:
                        missing.append(("section", node.path))
                        continue
                    if isinstance(value, (list, tuple)):
                        if value:
                            walk(node.children, scopes + [value[0]])
                    elif isinstance(value, bool):
                        walk(node.children, scopes)
                    else:
                        walk(node.children, scopes + [value])

        walk(self._nodes, [context] if context is not None else [])
        return missing

    # -- rendering ---------------------------------------------------------

    def render(self, context: Any = None, env: "TemplateEnvironment | None" = None) -> str:
        out: list[str] = []
        self._render_nodes(self._nodes, [context] if context is not None else [], env, out)
        return "".join(out)

    def _render_nodes(
        self,
        nodes: list[_Node],
        scopes: list[Any],
        env: "TemplateEnvironment | None",
        out: list[str],
    ) -> None:
        for node in nodes:
            if isinstance(node, _TextNode):
                out.append(node.text)
            elif isinstance(node, _VarNode):
                value = _lookup(scopes, node.path)
                if value is None:
                    continue
                text = value if isinstance(value, str) else str(value)
                out.append(text if node.raw else html.escape(text, quote=False))
            elif isinstance(node, _PartialNode):
                if env is None:
                    raise TemplateError(f"{self.name}: partial {node.name!r} used without an environment")
                partial = env.get(node.name)
                partial._render_nodes(partial._nodes, scopes, env, out)
            elif isinstance(node, _SectionNode):
                value = _lookup(scopes, node.path)
                truthy = _is_truthy(value)
                if node.inverted:
                    if not truthy:
                        self._render_nodes(node.children, scopes, env, out)
                    continue
                if not truthy:
                    continue
                if isinstance(value, (list, tuple)):
                    for item in value:
                        self._render_nodes(node.children, scopes + [item], env, out)
                elif isinstance(value, bool):
                    self._render_nodes(node.children, scopes, env, out)
                else:
                    self._render_nodes(node.children, scopes + [value], env, out)


def _is_truthy(value: Any) -> bool:
    if value is None:
        return False
    if isinstance(value, (list, tuple, str, dict)):
        return len(value) > 0
    return bool(value)


def _lookup(scopes: list[Any], path: str) -> Any:
    """Resolve a dotted path against the scope stack, innermost first."""
    if path == ".":
        return scopes[-1] if scopes else None
    head, *rest = path.split(".")
    for scope in reversed(scopes):
        value = _get(scope, head)
        if value is not _MISSING:
            for part in rest:
                value = _get(value, part)
                if value is _MISSING:
                    return None
            return value
    return None


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()


def _get(obj: Any, key: str) -> Any:
    if obj is None:
        return _MISSING
    if isinstance(obj, Mapping):
        return obj.get(key, _MISSING)
    if isinstance(obj, (list, tuple)):
        try:
            return obj[int(key)]
        except (ValueError, IndexError):
            return _MISSING
    if hasattr(obj, key):
        value = getattr(obj, key)
        return value() if callable(value) and getattr(value, "__self__", None) is obj and _is_simple_method(value) else value
    return _MISSING


def _is_simple_method(fn: Any) -> bool:
    """Only auto-call bound methods with no required arguments."""
    import inspect

    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return False
    return all(
        p.default is not inspect.Parameter.empty
        or p.kind in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        for p in sig.parameters.values()
    )


class TemplateEnvironment:
    """A named collection of templates supporting partial inclusion."""

    def __init__(self, templates: Mapping[str, str] | None = None):
        self._templates: dict[str, Template] = {}
        for name, source in (templates or {}).items():
            self.add(name, source)

    def add(self, name: str, source: str) -> Template:
        template = Template(source, name=name)
        self._templates[name] = template
        return template

    def get(self, name: str) -> Template:
        try:
            return self._templates[name]
        except KeyError:
            raise TemplateError(f"unknown template {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def render(self, name: str, context: Any = None) -> str:
        return self.get(name).render(context, env=self)


def render(source: str, context: Any = None) -> str:
    """One-shot convenience render of a template string."""
    return Template(source).render(context)
