"""Fixed-width text rendering of the paper's tables and statistics.

Every benchmark prints through these renderers so the regenerated output
is directly comparable with the published tables: same rows, same column
meanings, percentages formatted the way the paper prints them (two
decimals, ``%`` suffix).
"""

from __future__ import annotations

from typing import Sequence

from repro.activities.catalog import Catalog
from repro.analytics.accessibility import accessibility_stats
from repro.analytics.coverage import (
    course_counts,
    cs2013_coverage,
    tcpp_category_coverage,
    tcpp_coverage,
)
from repro.analytics.resources import resource_stats

__all__ = [
    "format_table",
    "render_table1",
    "render_table2",
    "render_category_table",
    "render_course_counts",
    "render_accessibility",
    "render_resources",
    "percent",
]


def percent(value: float) -> str:
    """Format a percentage the way the paper prints them (e.g. '83.33%')."""
    return f"{value:.2f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in cells)
    return "\n".join(lines)


def render_table1(catalog: Catalog) -> str:
    """TABLE I: CS2013 coverage."""
    rows = [
        (
            row.display_name,
            row.num_outcomes,
            row.num_covered,
            percent(row.percent_coverage),
            row.total_activities,
        )
        for row in cs2013_coverage(catalog)
    ]
    return format_table(
        (
            "Knowledge Unit",
            "Num. Learning Outcomes",
            "Num. Covered Outcomes",
            "Percent Coverage",
            "Total Activities",
        ),
        rows,
    )


def render_table2(catalog: Catalog) -> str:
    """TABLE II: TCPP coverage."""
    rows = [
        (
            row.name,
            row.num_topics,
            row.num_covered,
            percent(row.percent_coverage),
            row.total_activities,
        )
        for row in tcpp_coverage(catalog)
    ]
    return format_table(
        ("Topic Area", "Num. Topics", "Num. Covered Topics",
         "Percent Coverage", "Total Activities"),
        rows,
    )


def render_category_table(catalog: Catalog) -> str:
    """§III-C drill-down: per-category TCPP coverage."""
    rows = [
        (
            row.area,
            row.category,
            row.num_topics,
            row.num_covered,
            percent(row.percent_coverage),
        )
        for row in tcpp_category_coverage(catalog)
    ]
    return format_table(
        ("Topic Area", "Category", "Num. Topics", "Num. Covered", "Percent"),
        rows,
    )


def render_course_counts(catalog: Catalog) -> str:
    """§III-A course distribution."""
    counts = course_counts(catalog)
    return format_table(
        ("Course", "Activities"), [(c, n) for c, n in counts.items()]
    )


def render_accessibility(catalog: Catalog) -> str:
    """§III-D medium and sense statistics."""
    stats = accessibility_stats(catalog)
    medium_rows = [(m, n) for m, n in stats.mediums.items()]
    sense_rows = [
        ("visual", stats.senses["visual"], percent(stats.visual_percent)),
        ("movement", stats.senses["movement"], percent(stats.movement_percent)),
        ("touch", stats.senses["touch"], percent(stats.touch_percent)),
        ("sound", stats.senses["sound"], ""),
        ("accessible", stats.senses["accessible"], ""),
    ]
    return (
        format_table(("Medium", "Activities"), medium_rows)
        + "\n\n"
        + format_table(("Sense", "Activities", "Percent of corpus"), sense_rows)
    )


def render_resources(catalog: Catalog) -> str:
    """§III-A external-resource availability."""
    stats = resource_stats(catalog)
    rows = [
        ("corpus size", stats.corpus_size),
        ("with external resources", stats.with_resources),
        ("percent", percent(stats.percent)),
        ("older half with resources",
         f"{stats.older_with_resources}/{stats.older_total}"),
        ("newer half with resources",
         f"{stats.newer_with_resources}/{stats.newer_total}"),
    ]
    return format_table(("Statistic", "Value"), rows)
