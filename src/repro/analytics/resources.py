"""External-resource availability analysis (§III-A).

"Less than half (41 %) of the materials have some sort of external
resource (slides, handouts, etc.) associated with them ... Older
activities in the literature were less likely to have associated external
resources."  These functions compute the availability fraction and its
breakdown by activity age.
"""

from __future__ import annotations

from dataclasses import dataclass
import re

from repro.activities.catalog import Catalog
from repro.activities.schema import Activity

__all__ = ["ResourceStats", "resource_stats", "with_resources", "earliest_citation_year"]

_YEAR_RE = re.compile(r"\b(19[5-9]\d|20[0-4]\d)\b")


def with_resources(catalog: Catalog) -> list[Activity]:
    """Activities that link at least one external resource."""
    return catalog.where(lambda a: a.has_external_resource)


def earliest_citation_year(activity: Activity) -> int | None:
    """Earliest publication year among the activity's citations."""
    years = [int(y) for y in _YEAR_RE.findall(activity.sections.get("Citations", ""))]
    return min(years) if years else None


@dataclass(frozen=True)
class ResourceStats:
    """Resource-availability aggregate."""

    corpus_size: int
    with_resources: int
    older_with_resources: int      # activities first described before the median year
    older_total: int
    newer_with_resources: int
    newer_total: int
    median_year: int | None

    @property
    def fraction(self) -> float:
        if self.corpus_size == 0:
            return 0.0
        return self.with_resources / self.corpus_size

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction

    @property
    def older_fraction(self) -> float:
        return self.older_with_resources / self.older_total if self.older_total else 0.0

    @property
    def newer_fraction(self) -> float:
        return self.newer_with_resources / self.newer_total if self.newer_total else 0.0


def resource_stats(catalog: Catalog) -> ResourceStats:
    """Compute availability overall and split at the median citation year.

    The old/new split substantiates the paper's qualitative claim that
    older activities were less likely to have external resources.
    """
    n = len(catalog)
    resourced = {a.name for a in with_resources(catalog)}

    dated = [(a, earliest_citation_year(a)) for a in catalog]
    years = sorted(y for _, y in dated if y is not None)
    median_year = years[len(years) // 2] if years else None

    older_total = older_res = newer_total = newer_res = 0
    if median_year is not None:
        for activity, year in dated:
            if year is None:
                continue
            if year < median_year:
                older_total += 1
                older_res += activity.name in resourced
            else:
                newer_total += 1
                newer_res += activity.name in resourced

    return ResourceStats(
        corpus_size=n,
        with_resources=len(resourced),
        older_with_resources=older_res,
        older_total=older_total,
        newer_with_resources=newer_res,
        newer_total=newer_total,
        median_year=median_year,
    )
