"""Accessibility analysis: the §III-D medium and sense statistics.

The paper characterizes the curation by communication medium ("11
analogies and 11 role-playing activities, and 4 activities labeled as
'games'; popular activity mediums include paper (8), chalk-/white-board
(6), and cards (6) ...") and by the senses activities engage ("the vast
majority (71.05 %) ... have a strong visual component").  These functions
compute the same distributions from the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activities.catalog import Catalog
from repro.activities.schema import MEDIUMS, SENSES

__all__ = [
    "AccessibilityStats",
    "medium_counts",
    "sense_counts",
    "sense_fractions",
    "accessibility_stats",
]

#: The §III-D reporting order for mediums.
MEDIUM_ORDER: tuple[str, ...] = (
    "analogy", "roleplay", "game", "paper", "board",
    "cards", "pens", "coins", "food", "music",
)

SENSE_ORDER: tuple[str, ...] = ("visual", "movement", "touch", "sound", "accessible")


def medium_counts(catalog: Catalog) -> dict[str, int]:
    """Number of activities per communication medium, §III-D order first."""
    counts = {m: catalog.term_count("medium", m) for m in MEDIUM_ORDER}
    for medium in sorted(MEDIUMS - set(MEDIUM_ORDER)):
        count = catalog.term_count("medium", medium)
        if count:
            counts[medium] = count
    return counts


def sense_counts(catalog: Catalog) -> dict[str, int]:
    """Number of activities engaging each sense (plus 'accessible')."""
    counts = {s: catalog.term_count("senses", s) for s in SENSE_ORDER}
    for sense in sorted(SENSES - set(SENSE_ORDER)):  # pragma: no cover - exhaustive
        count = catalog.term_count("senses", sense)
        if count:
            counts[sense] = count
    return counts


def sense_fractions(catalog: Catalog) -> dict[str, float]:
    """Fraction of the corpus engaging each sense (denominator = corpus size)."""
    n = len(catalog)
    if n == 0:
        return {s: 0.0 for s in SENSE_ORDER}
    return {s: c / n for s, c in sense_counts(catalog).items()}


@dataclass(frozen=True)
class AccessibilityStats:
    """The bundle of §III-D statistics."""

    corpus_size: int
    mediums: dict[str, int]
    senses: dict[str, int]

    @property
    def visual_percent(self) -> float:
        return self._percent("visual")

    @property
    def movement_percent(self) -> float:
        return self._percent("movement")

    @property
    def touch_percent(self) -> float:
        return self._percent("touch")

    @property
    def sound_count(self) -> int:
        return self.senses.get("sound", 0)

    @property
    def generally_accessible(self) -> int:
        return self.senses.get("accessible", 0)

    def _percent(self, sense: str) -> float:
        if self.corpus_size == 0:
            return 0.0
        return 100.0 * self.senses.get(sense, 0) / self.corpus_size


def accessibility_stats(catalog: Catalog) -> AccessibilityStats:
    return AccessibilityStats(
        corpus_size=len(catalog),
        mediums=medium_counts(catalog),
        senses=sense_counts(catalog),
    )
