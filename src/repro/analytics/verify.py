"""Verify a catalog against the paper's published numbers.

:func:`compare_to_paper` recomputes every aggregate the paper reports and
returns a list of human-readable differences (empty = exact reproduction).
The corpus generator, the test suite, and ``pdcunplugged verify`` all call
this one function, so there is a single definition of "reproduces the
paper".
"""

from __future__ import annotations

from repro import paper
from repro.activities.catalog import Catalog
from repro.analytics.accessibility import accessibility_stats
from repro.analytics.coverage import (
    course_counts,
    cs2013_coverage,
    tcpp_category_coverage,
    tcpp_coverage,
)
from repro.analytics.resources import resource_stats
from repro.standards import normalize

__all__ = ["compare_to_paper"]


def compare_to_paper(catalog: Catalog) -> list[str]:
    """Return every difference between the catalog's aggregates and the
    paper's reported values (reconciled where the paper's own arithmetic
    is inconsistent -- see :mod:`repro.paper`)."""
    diffs: list[str] = []

    if len(catalog) != paper.CORPUS_SIZE:
        diffs.append(f"corpus size {len(catalog)} != {paper.CORPUS_SIZE}")

    for row in cs2013_coverage(catalog):
        want = paper.TABLE1[row.term]
        got = (row.num_outcomes, row.num_covered, row.total_activities)
        if got != want:
            diffs.append(f"Table I {row.term}: got {got}, want {want}")

    for row in tcpp_coverage(catalog):
        want = paper.TABLE2[row.term]
        got = (row.num_topics, row.num_covered, row.total_activities)
        if got != want:
            diffs.append(f"Table II {row.term}: got {got}, want {want}")

    # Counts are folded through the shared canonicalizer (the same one the
    # lint taxonomy rules use) so an alias or case-variant spelling in the
    # corpus compares against the paper under its canonical name instead
    # of silently forking the tally.
    counts = normalize.canonicalize_counts("courses", course_counts(catalog))
    for course, want in paper.COURSE_COUNTS.items():
        if counts.get(course, 0) != want:
            diffs.append(
                f"courses {course}: got {counts.get(course, 0)}, want {want}")

    stats = accessibility_stats(catalog)
    mediums = normalize.canonicalize_counts("medium", stats.mediums)
    for medium, want in paper.MEDIUM_COUNTS.items():
        got = mediums.get(medium, 0)
        if got != want:
            diffs.append(f"medium {medium}: got {got}, want {want}")
    senses = normalize.canonicalize_counts("senses", stats.senses)
    for sense, want in paper.SENSE_COUNTS.items():
        got = senses.get(sense, 0)
        if got != want:
            diffs.append(f"sense {sense}: got {got}, want {want}")

    res = resource_stats(catalog)
    if res.with_resources != paper.RESOURCE_COUNT_REPRODUCED:
        diffs.append(
            f"external resources: got {res.with_resources}, "
            f"want {paper.RESOURCE_COUNT_REPRODUCED}"
        )

    cats = {(r.area, r.category): r for r in tcpp_category_coverage(catalog)}
    for (area, category), want_pct in paper.CATEGORY_CLAIMS.items():
        row = cats[(area, category)]
        if want_pct is None:
            if row.num_covered != 0:
                diffs.append(
                    f"category {area}/{category}: expected empty, "
                    f"got {row.num_covered} covered"
                )
        elif abs(row.percent_coverage - want_pct) > 0.01:
            diffs.append(
                f"category {area}/{category}: got "
                f"{row.percent_coverage:.2f}%, want {want_pct}%"
            )

    return diffs
