"""``repro.analytics``: the paper's evaluation, computed from the corpus.

* :mod:`repro.analytics.coverage` -- Tables I and II plus course counts.
* :mod:`repro.analytics.accessibility` -- §III-D medium/sense statistics.
* :mod:`repro.analytics.resources` -- §III-A external-resource availability.
* :mod:`repro.analytics.gaps` -- §III-B/C/E hole identification.
* :mod:`repro.analytics.citations` -- citation-graph history (networkx).
* :mod:`repro.analytics.tables` -- text rendering in the paper's format.
"""

from repro.analytics.accessibility import (
    AccessibilityStats,
    accessibility_stats,
    medium_counts,
    sense_counts,
    sense_fractions,
)
from repro.analytics.citations import CitationGraph, build_citation_graph
from repro.analytics.coverage import (
    CategoryCoverageRow,
    CS2013CoverageRow,
    TCPPCoverageRow,
    course_counts,
    cs2013_coverage,
    tcpp_category_coverage,
    tcpp_coverage,
)
from repro.analytics.gaps import GapReport, gap_report, uncovered_outcomes, uncovered_topics
from repro.analytics.resources import ResourceStats, resource_stats, with_resources
from repro.analytics.verify import compare_to_paper
from repro.analytics.tables import (
    format_table,
    percent,
    render_accessibility,
    render_category_table,
    render_course_counts,
    render_resources,
    render_table1,
    render_table2,
)

__all__ = [
    "AccessibilityStats",
    "compare_to_paper",
    "CS2013CoverageRow",
    "CategoryCoverageRow",
    "CitationGraph",
    "GapReport",
    "ResourceStats",
    "TCPPCoverageRow",
    "accessibility_stats",
    "build_citation_graph",
    "course_counts",
    "cs2013_coverage",
    "format_table",
    "gap_report",
    "medium_counts",
    "percent",
    "render_accessibility",
    "render_category_table",
    "render_course_counts",
    "render_resources",
    "render_table1",
    "render_table2",
    "resource_stats",
    "sense_counts",
    "sense_fractions",
    "tcpp_category_coverage",
    "tcpp_coverage",
    "uncovered_outcomes",
    "uncovered_topics",
    "with_resources",
]
