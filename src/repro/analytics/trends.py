"""Historical trends over the curation (§III-A and §III-E claims).

Quantifies the paper's qualitative history:

* "nearly forty unique activities gathered from the literature over the
  last thirty years" -- :func:`publication_histogram` buckets the corpus
  by the decade each activity first appeared;
* "assessing unplugged activities appears to be a relatively recent
  trend" -- :func:`assessment_trend` compares the first-publication years
  of assessed vs unassessed activities;
* "Older activities in the literature were less likely to have associated
  external resources" -- :func:`resource_trend` does the same for
  resource-bearing activities.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from repro.activities.catalog import Catalog
from repro.analytics.resources import earliest_citation_year

__all__ = [
    "TrendComparison",
    "publication_histogram",
    "assessment_trend",
    "resource_trend",
]


@dataclass(frozen=True)
class TrendComparison:
    """Two activity groups compared by first-publication year."""

    label_a: str
    label_b: str
    years_a: tuple[int, ...]
    years_b: tuple[int, ...]

    @property
    def median_a(self) -> float | None:
        return median(self.years_a) if self.years_a else None

    @property
    def median_b(self) -> float | None:
        return median(self.years_b) if self.years_b else None

    @property
    def gap_years(self) -> float | None:
        if self.median_a is None or self.median_b is None:
            return None
        return self.median_a - self.median_b

    def describe(self) -> str:
        return (
            f"{self.label_a}: median {self.median_a} (n={len(self.years_a)}); "
            f"{self.label_b}: median {self.median_b} (n={len(self.years_b)})"
        )

    def mannwhitney_p(self) -> float | None:
        """One-sided Mann-Whitney U p-value that group A's years rank
        higher (i.e. group A is more recent).  Requires scipy; returns
        ``None`` when scipy is unavailable or a group is empty.
        """
        if not self.years_a or not self.years_b:
            return None
        try:
            from scipy.stats import mannwhitneyu
        except ImportError:  # pragma: no cover - scipy is an extra
            return None
        result = mannwhitneyu(self.years_a, self.years_b, alternative="greater")
        return float(result.pvalue)


def _years(catalog: Catalog) -> dict[str, int]:
    out = {}
    for activity in catalog:
        year = earliest_citation_year(activity)
        if year is not None:
            out[activity.name] = year
    return out


def publication_histogram(catalog: Catalog) -> dict[str, int]:
    """Activities bucketed by the decade they first appeared."""
    buckets: dict[str, int] = {}
    for year in _years(catalog).values():
        decade = f"{year - year % 10}s"
        buckets[decade] = buckets.get(decade, 0) + 1
    return dict(sorted(buckets.items()))


def assessment_trend(catalog: Catalog) -> TrendComparison:
    """Assessed vs unassessed activities by first-publication year."""
    years = _years(catalog)
    assessed = tuple(
        years[a.name] for a in catalog if a.has_assessment and a.name in years
    )
    unassessed = tuple(
        years[a.name] for a in catalog if not a.has_assessment and a.name in years
    )
    return TrendComparison("assessed", "unassessed", assessed, unassessed)


def resource_trend(catalog: Catalog) -> TrendComparison:
    """Resource-bearing vs resource-less activities by year."""
    years = _years(catalog)
    with_res = tuple(
        years[a.name] for a in catalog
        if a.has_external_resource and a.name in years
    )
    without = tuple(
        years[a.name] for a in catalog
        if not a.has_external_resource and a.name in years
    )
    return TrendComparison("with resources", "without resources", with_res, without)
