"""Citation-graph analysis over the curated corpus.

The curation process (§III) traced references between papers to collapse
variations and build "accurate citations profiles".  This module rebuilds
that structure: a bipartite graph of activities and the publications that
describe them, from which we derive the paper's historical claims -- the
earliest activity paper (the 1990 Bachelis/Maxim tutorial), the thirty-year
span of the literature, which publications describe multiple activities,
and which activities are multiply-described (variation collapses).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import networkx as nx

from repro.activities.catalog import Catalog

__all__ = ["CitationGraph", "build_citation_graph", "Publication"]

_YEAR_RE = re.compile(r"\b(19[5-9]\d|20[0-4]\d)\b")


@dataclass(frozen=True)
class Publication:
    """One cited publication, keyed by its citation text."""

    key: str
    text: str
    year: int | None


def _publication_from_citation(text: str) -> Publication:
    match = _YEAR_RE.search(text)
    year = int(match.group(1)) if match else None
    # Key: first author surname-ish token + year keeps variations merged.
    head = re.split(r"[,.]", text.strip(), maxsplit=1)[0].strip().lower()
    key = f"{head}-{year}" if year else head
    return Publication(key=key, text=text.strip(), year=year)


class CitationGraph:
    """Bipartite activities <-> publications graph with summary queries."""

    def __init__(self, graph: nx.Graph):
        self.graph = graph

    @property
    def activities(self) -> list[str]:
        return sorted(
            n for n, d in self.graph.nodes(data=True) if d.get("kind") == "activity"
        )

    @property
    def publications(self) -> list[Publication]:
        return sorted(
            (
                d["publication"]
                for _, d in self.graph.nodes(data=True)
                if d.get("kind") == "publication"
            ),
            key=lambda p: (p.year or 0, p.key),
        )

    def publications_for(self, activity: str) -> list[Publication]:
        return sorted(
            (
                self.graph.nodes[nbr]["publication"]
                for nbr in self.graph.neighbors(activity)
            ),
            key=lambda p: (p.year or 0, p.key),
        )

    def activities_for(self, publication_key: str) -> list[str]:
        node = f"pub:{publication_key}"
        if node not in self.graph:
            return []
        return sorted(self.graph.neighbors(node))

    # -- the paper's historical claims ------------------------------------

    def earliest_year(self) -> int | None:
        years = [p.year for p in self.publications if p.year is not None]
        return min(years) if years else None

    def latest_year(self) -> int | None:
        years = [p.year for p in self.publications if p.year is not None]
        return max(years) if years else None

    def span_years(self) -> int:
        earliest, latest = self.earliest_year(), self.latest_year()
        if earliest is None or latest is None:
            return 0
        return latest - earliest

    def multi_activity_publications(self) -> list[tuple[Publication, list[str]]]:
        """Publications describing more than one activity ('several papers
        listed multiple activities', §III)."""
        out = []
        for pub in self.publications:
            acts = self.activities_for(pub.key)
            if len(acts) > 1:
                out.append((pub, acts))
        return out

    def multiply_described_activities(self) -> list[tuple[str, int]]:
        """Activities cited by more than one publication (variation collapses)."""
        out = []
        for activity in self.activities:
            degree = self.graph.degree(activity)
            if degree > 1:
                out.append((activity, degree))
        return sorted(out, key=lambda x: (-x[1], x[0]))


def build_citation_graph(catalog: Catalog) -> CitationGraph:
    """Build the bipartite citation graph from every Citations section."""
    graph = nx.Graph()
    for activity in catalog:
        graph.add_node(activity.name, kind="activity", bipartite=0)
        for citation in activity.citations:
            pub = _publication_from_citation(citation)
            node = f"pub:{pub.key}"
            if node not in graph:
                graph.add_node(node, kind="publication", bipartite=1, publication=pub)
            graph.add_edge(activity.name, node)
    return CitationGraph(graph)
