"""Gap analysis: where should educators concentrate on developing content?

The paper's third research question.  These functions enumerate the
"holes" in the curation that §§III-B/C/E call out:

* CS2013 learning outcomes with no corresponding activity, per knowledge
  unit, and the knowledge units below the CS2013 coverage recommendations,
* TCPP topics (and whole categories) with no corresponding activity,
* sparse senses/mediums (tactile and auditory engagement),
* activities lacking assessment ("assessing unplugged activities appears
  to be a relatively recent trend").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.activities.catalog import Catalog
from repro.analytics.coverage import (
    cs2013_coverage,
    tcpp_category_coverage,
    tcpp_coverage,
)
from repro.standards import cs2013, tcpp
from repro.standards.cs2013 import Tier

__all__ = ["GapReport", "gap_report", "uncovered_outcomes", "uncovered_topics"]


def uncovered_outcomes(catalog: Catalog) -> dict[str, list[str]]:
    """Per knowledge unit: detail terms of outcomes with zero activities."""
    gaps: dict[str, list[str]] = {}
    rows = {row.term: row for row in cs2013_coverage(catalog)}
    for ku in cs2013.PD_KNOWLEDGE_AREA:
        covered = set(rows[ku.term].covered_outcomes)
        missing = [t for t in ku.detail_terms() if t not in covered]
        if missing:
            gaps[ku.term] = missing
    return gaps


def uncovered_topics(catalog: Catalog) -> dict[str, list[str]]:
    """Per topic area: detail terms of topics with zero activities."""
    gaps: dict[str, list[str]] = {}
    rows = {row.term: row for row in tcpp_coverage(catalog)}
    for area in tcpp.TCPP_CURRICULUM:
        covered = set(rows[area.term].covered_topics)
        missing = [t for t in area.detail_terms() if t not in covered]
        if missing:
            gaps[area.term] = missing
    return gaps


@dataclass
class GapReport:
    """Structured summary of curation holes (§III-E 'Lessons Learned')."""

    cs2013_gaps: dict[str, list[str]] = field(default_factory=dict)
    tcpp_gaps: dict[str, list[str]] = field(default_factory=dict)
    empty_categories: list[str] = field(default_factory=list)
    units_below_tier_targets: list[str] = field(default_factory=list)
    sparse_senses: dict[str, int] = field(default_factory=dict)
    activities_without_assessment: list[str] = field(default_factory=list)

    @property
    def total_uncovered_outcomes(self) -> int:
        return sum(len(v) for v in self.cs2013_gaps.values())

    @property
    def total_uncovered_topics(self) -> int:
        return sum(len(v) for v in self.tcpp_gaps.values())


def gap_report(catalog: Catalog, sparse_sense_threshold: float = 0.3) -> GapReport:
    """Build the full gap report over a catalog.

    ``sparse_sense_threshold`` flags senses engaged by less than that
    fraction of the corpus (the paper highlights touch at 26.32 % and
    sound at 2 activities as underrepresented).
    """
    report = GapReport(
        cs2013_gaps=uncovered_outcomes(catalog),
        tcpp_gaps=uncovered_topics(catalog),
    )

    for row in tcpp_category_coverage(catalog):
        if row.num_covered == 0:
            report.empty_categories.append(f"{row.area}: {row.category}")

    # CS2013 recommends all Tier-1 and >=80 % of Tier-2 outcomes.
    coverage = {row.term: row for row in cs2013_coverage(catalog)}
    for ku in cs2013.PD_KNOWLEDGE_AREA:
        covered = set(coverage[ku.term].covered_outcomes)
        tier1 = [lo for lo in ku.outcomes if lo.tier == Tier.CORE1]
        tier2 = [lo for lo in ku.outcomes if lo.tier == Tier.CORE2]
        tier1_ok = all(lo.detail_term(ku.abbrev) in covered for lo in tier1)
        if tier2:
            tier2_frac = sum(
                lo.detail_term(ku.abbrev) in covered for lo in tier2
            ) / len(tier2)
        else:
            tier2_frac = 1.0
        if not tier1_ok or tier2_frac < cs2013.TIER2_TARGET:
            report.units_below_tier_targets.append(ku.term)

    n = len(catalog) or 1
    for sense in ("visual", "movement", "touch", "sound"):
        count = catalog.term_count("senses", sense)
        if count / n < sparse_sense_threshold:
            report.sparse_senses[sense] = count

    report.activities_without_assessment = [
        a.name for a in catalog if not a.has_assessment
    ]
    return report
