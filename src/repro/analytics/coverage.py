"""Curriculum coverage analysis: the engines behind Tables I and II.

Given the curated catalog, these functions compute exactly what the paper
reports:

* :func:`cs2013_coverage` -- for each of the nine CS2013 PD knowledge
  units: the number of learning outcomes, how many have at least one
  corresponding activity (via the hidden ``cs2013details`` taxonomy), the
  percent coverage, and the total number of activities tagging the unit
  (Table I).
* :func:`tcpp_coverage` -- the same per TCPP topic area over core-course
  topics via ``tcppdetails`` (Table II), with :func:`tcpp_category_coverage`
  drilling into the §III-C category subtotals (e.g. PD Models/Complexity at
  36.36 %).
* :func:`course_counts` -- activities recommended per course (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activities.catalog import Catalog
from repro.standards import cs2013, tcpp
from repro.standards.courses import COURSE_ORDER

__all__ = [
    "CS2013CoverageRow",
    "TCPPCoverageRow",
    "CategoryCoverageRow",
    "cs2013_coverage",
    "tcpp_coverage",
    "tcpp_category_coverage",
    "course_counts",
]


@dataclass(frozen=True)
class CS2013CoverageRow:
    """One Table I row."""

    term: str
    name: str
    elective: bool
    num_outcomes: int
    covered_outcomes: tuple[str, ...]   # detail terms with >=1 activity
    total_activities: int

    @property
    def num_covered(self) -> int:
        return len(self.covered_outcomes)

    @property
    def percent_coverage(self) -> float:
        if self.num_outcomes == 0:
            return 0.0
        return 100.0 * self.num_covered / self.num_outcomes

    @property
    def display_name(self) -> str:
        return f"{self.name} (E)" if self.elective else self.name


@dataclass(frozen=True)
class TCPPCoverageRow:
    """One Table II row."""

    term: str
    name: str
    num_topics: int
    covered_topics: tuple[str, ...]     # detail terms with >=1 activity
    total_activities: int

    @property
    def num_covered(self) -> int:
        return len(self.covered_topics)

    @property
    def percent_coverage(self) -> float:
        if self.num_topics == 0:
            return 0.0
        return 100.0 * self.num_covered / self.num_topics


@dataclass(frozen=True)
class CategoryCoverageRow:
    """Coverage of one category inside a TCPP topic area (§III-C)."""

    area: str
    category: str
    num_topics: int
    covered_topics: tuple[str, ...]

    @property
    def num_covered(self) -> int:
        return len(self.covered_topics)

    @property
    def percent_coverage(self) -> float:
        if self.num_topics == 0:
            return 0.0
        return 100.0 * self.num_covered / self.num_topics


def _detail_terms_in_use(catalog: Catalog, taxonomy: str) -> set[str]:
    used: set[str] = set()
    for activity in catalog:
        used.update(activity.terms(taxonomy))
    return used


def cs2013_coverage(catalog: Catalog) -> list[CS2013CoverageRow]:
    """Compute Table I over the catalog, rows in knowledge-area order."""
    used_details = _detail_terms_in_use(catalog, "cs2013details")
    rows: list[CS2013CoverageRow] = []
    for ku in cs2013.PD_KNOWLEDGE_AREA:
        covered = tuple(
            t for t in ku.detail_terms() if t in used_details
        )
        rows.append(
            CS2013CoverageRow(
                term=ku.term,
                name=ku.name,
                elective=ku.elective,
                num_outcomes=ku.num_outcomes,
                covered_outcomes=covered,
                total_activities=catalog.term_count("cs2013", ku.term),
            )
        )
    return rows


def tcpp_coverage(catalog: Catalog) -> list[TCPPCoverageRow]:
    """Compute Table II over the catalog, rows in curriculum order."""
    used_details = _detail_terms_in_use(catalog, "tcppdetails")
    rows: list[TCPPCoverageRow] = []
    for area in tcpp.TCPP_CURRICULUM:
        covered = tuple(
            t for t in area.detail_terms() if t in used_details
        )
        rows.append(
            TCPPCoverageRow(
                term=area.term,
                name=area.name,
                num_topics=area.num_topics,
                covered_topics=covered,
                total_activities=catalog.term_count("tcpp", area.term),
            )
        )
    return rows


def tcpp_category_coverage(catalog: Catalog) -> list[CategoryCoverageRow]:
    """Per-category drill-down of Table II (used by the §III-C claims)."""
    used_details = _detail_terms_in_use(catalog, "tcppdetails")
    rows: list[CategoryCoverageRow] = []
    for area in tcpp.TCPP_CURRICULUM:
        for category in area.categories:
            covered = tuple(
                t.detail_term for t in category.topics
                if t.detail_term in used_details
            )
            rows.append(
                CategoryCoverageRow(
                    area=area.name,
                    category=category.name,
                    num_topics=category.num_topics,
                    covered_topics=covered,
                )
            )
    return rows


def course_counts(catalog: Catalog) -> dict[str, int]:
    """Activities recommended per course, in the paper's reporting order."""
    return {
        course: catalog.term_count("courses", course)
        for course in COURSE_ORDER
    }
