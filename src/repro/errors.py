"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems define narrower
classes below it:

* :class:`FrontMatterError`, :class:`MarkdownError`, :class:`TemplateError`,
  :class:`SiteError` -- the ``repro.sitegen`` static-site substrate.
* :class:`ActivityError`, :class:`ValidationError` -- the activity corpus.
* :class:`StandardsError` -- curriculum standards lookups.
* :class:`SimulationError` and its children -- the discrete-event classroom
  simulator (``repro.unplugged.sim``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FrontMatterError(ReproError):
    """Malformed front-matter block in a content file."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MarkdownError(ReproError):
    """Malformed Markdown that the renderer refuses to process."""


class TemplateError(ReproError):
    """Template syntax or rendering failure."""


class SiteError(ReproError):
    """Site configuration or build failure."""


class ActivityError(ReproError):
    """An activity file violates the PDCunplugged activity structure."""


class ValidationError(ActivityError):
    """An activity's tags or sections fail schema validation.

    Carries the list of individual problems so callers can report all of
    them at once rather than fixing one at a time.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems) or "validation failed")


class StandardsError(ReproError):
    """Unknown knowledge unit, learning outcome, topic, or course."""


class SimulationError(ReproError):
    """Base class for errors in the unplugged-activity simulator."""


class DeadlockError(SimulationError):
    """The simulated classroom reached a state where no process can advance."""


class CommunicationError(SimulationError):
    """Invalid use of the message-passing communicator (bad rank, tag, ...)."""


class RaceConditionError(SimulationError):
    """A data race was detected and the memory model is set to ``raise``."""

    def __init__(self, message: str, races: list | None = None):
        self.races = list(races or [])
        super().__init__(message)
