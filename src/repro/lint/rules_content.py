"""Content-pass rules: per-activity and corpus-wide invariants.

Per-file rules take one :class:`~repro.lint.document.ParsedDocument` and
are safe to cache against the file's fingerprint; corpus rules take every
document's :class:`~repro.lint.document.DocumentInfo` (cheap, already
cached) because their verdicts depend on the whole corpus — duplicate
slugs, duplicate titles, and internal links that must resolve against the
full set of rendered URLs.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

from repro.activities import schema
from repro.errors import StandardsError
from repro.lint import links
from repro.lint.diagnostics import Diagnostic, Severity, make, rule
from repro.lint.document import DocumentInfo, ParsedDocument
from repro.standards import cs2013, normalize, tcpp

__all__ = ["PER_FILE_RULES", "CORPUS_RULES", "run_per_file", "run_corpus"]

_KNOWN_KEYS = frozenset(
    {"title", "date"} | set(normalize.TAXONOMIES)
)

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")

#: Taxonomy axes validated against closed vocabularies (paper §II-B).
_VOCAB_AXES = ("courses", "senses", "medium")

#: Axes validated against the pinned curriculum standards tables.
_STANDARDS_AXES = ("cs2013", "tcpp", "cs2013details", "tcppdetails")


# -- rule registry -----------------------------------------------------------

rule("frontmatter-schema", "content", Severity.ERROR,
     "front matter parses and matches the activity schema")
rule("taxonomy-unknown-term", "content", Severity.ERROR,
     "courses/senses/medium terms come from the known vocabularies")
rule("taxonomy-noncanonical-term", "content", Severity.WARNING,
     "taxonomy terms use the canonical spelling, not an alias or case variant")
rule("standards-unknown-term", "content", Severity.ERROR,
     "cs2013/tcpp tags name real knowledge units, topic areas, and details")
rule("standards-detail-parent", "content", Severity.ERROR,
     "detail tags belong to a knowledge unit / topic area the activity tags")
rule("section-structure", "content", Severity.ERROR,
     "body sections are the Fig. 1 set, in order, with Details when required")
rule("citation-missing", "content", Severity.WARNING,
     "activities carry a date and at least one citation entry")
rule("prose-heading-jump", "content", Severity.WARNING,
     "body heading depth never jumps more than one level at a time")
rule("prose-bare-url", "content", Severity.WARNING,
     "body URLs are autolinks or markdown links, never bare text")
rule("prose-todo-marker", "content", Severity.WARNING,
     "no TODO/FIXME/XXX markers are left in published activity text")
rule("internal-link", "content", Severity.ERROR,
     "internal links and anchors resolve to rendered pages", per_file=False)
rule("duplicate-slug", "content", Severity.ERROR,
     "no two activities share a URL slug", per_file=False)
rule("duplicate-title", "content", Severity.WARNING,
     "no two activities share a title", per_file=False)


# -- per-file rules ----------------------------------------------------------


def check_frontmatter_schema(doc: ParsedDocument) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if doc.parse_error is not None:
        out.append(make("frontmatter-schema", doc.file,
                        doc.parse_error_line, 1, doc.parse_error))
        return out
    for key, value in doc.params.items():
        if key not in _KNOWN_KEYS:
            out.append(make("frontmatter-schema", doc.file,
                            doc.key_line(key), doc.key_column(key),
                            f"unknown front-matter key {key!r}"))
        elif key in normalize.TAXONOMIES and not isinstance(
                value, (list, str)):
            out.append(make("frontmatter-schema", doc.file,
                            doc.key_line(key), doc.key_column(key),
                            f"{key} must be a list of terms, got "
                            f"{type(value).__name__}"))
    date = doc.params.get("date")
    if isinstance(date, str) and date and not _DATE_RE.match(date):
        out.append(make("frontmatter-schema", doc.file,
                        doc.key_line("date"), doc.key_column("date"),
                        f"date {date!r} is not ISO formatted (YYYY-MM-DD)"))
    return out


def _iter_terms(doc: ParsedDocument, axes: Iterable[str]):
    """Yield (axis, index, term, line, column) for declared terms."""
    if doc.activity is None:
        return
    for axis in axes:
        for index, term in enumerate(getattr(doc.activity, axis)):
            yield (axis, index, str(term),
                   doc.item_line(axis, index), doc.key_column(axis))


def check_taxonomy_terms(doc: ParsedDocument) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for axis, _idx, term, line, col in _iter_terms(doc, _VOCAB_AXES):
        if normalize.canonical_term(axis, term) is None:
            out.append(make("taxonomy-unknown-term", doc.file, line, col,
                            f"unknown {axis} term {term!r}"))
    return out


def check_noncanonical_terms(doc: ParsedDocument) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for axis, _idx, term, line, col in _iter_terms(
            doc, _VOCAB_AXES + _STANDARDS_AXES):
        canonical = normalize.canonical_term(axis, term)
        if canonical is not None and canonical != term:
            out.append(make("taxonomy-noncanonical-term", doc.file, line, col,
                            f"non-canonical {axis} term {term!r} "
                            f"(use {canonical!r})"))
    return out


def check_standards_terms(doc: ParsedDocument) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for axis, _idx, term, line, col in _iter_terms(doc, _STANDARDS_AXES):
        if normalize.canonical_term(axis, term) is None:
            table = "CS2013" if axis.startswith("cs2013") else "TCPP"
            out.append(make("standards-unknown-term", doc.file, line, col,
                            f"{axis} term {term!r} does not exist in the "
                            f"{table} tables"))
    return out


def check_detail_parents(doc: ParsedDocument) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if doc.activity is None:
        return out
    tagged_units = set()
    for term in doc.activity.cs2013:
        try:
            tagged_units.add(cs2013.knowledge_unit(term).abbrev)
        except StandardsError:
            continue
    for axis, _idx, term, line, col in _iter_terms(doc, ("cs2013details",)):
        try:
            ku, _ = cs2013.outcome_for_detail_term(term)
        except StandardsError:
            continue                    # standards-unknown-term covers this
        if ku.abbrev not in tagged_units:
            out.append(make("standards-detail-parent", doc.file, line, col,
                            f"cs2013details term {term!r} belongs to "
                            f"{ku.term}, which this activity does not tag"))
    tagged_areas = set()
    for term in doc.activity.tcpp:
        try:
            tagged_areas.add(tcpp.topic_area(term).term)
        except StandardsError:
            continue
    for axis, _idx, term, line, col in _iter_terms(doc, ("tcppdetails",)):
        try:
            area, _ = tcpp.topic_for_detail_term(term)
        except StandardsError:
            continue
        if area.term not in tagged_areas:
            out.append(make("standards-detail-parent", doc.file, line, col,
                            f"tcppdetails term {term!r} belongs to "
                            f"{area.term}, which this activity does not tag"))
    return out


def _section_line(doc: ParsedDocument, section: str) -> int:
    if doc.activity is None:
        return 1
    line = doc.activity.spans.get(f"section:{section}")
    return line if isinstance(line, int) else 1


def check_section_structure(doc: ParsedDocument) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if doc.activity is None:
        return out
    sections = doc.activity.sections
    known = set(schema.SECTION_ORDER)
    for section in sections:
        if section not in known:
            out.append(make("section-structure", doc.file,
                            _section_line(doc, section), 1,
                            f"unknown section {section!r}"))
    order = [s for s in sections if s in known]
    expected = [s for s in schema.SECTION_ORDER if s in sections]
    if order != expected:
        first_misplaced = next(
            (got for got, want in zip(order, expected) if got != want),
            order[0] if order else "")
        out.append(make("section-structure", doc.file,
                        _section_line(doc, first_misplaced), 1,
                        f"sections out of order: expected {expected}"))
    for required in schema.SECTION_ORDER:
        if required == "Details":
            continue                    # optional (paper Fig. 1)
        if required not in sections:
            out.append(make("section-structure", doc.file, 1, 1,
                            f"missing section {required!r}"))
    if (not doc.activity.has_external_resource
            and not doc.activity.has_details):
        out.append(make("section-structure", doc.file,
                        _section_line(doc, "Original Author/link"), 1,
                        "no external resource link and no Details section"))
    return out


def check_citations(doc: ParsedDocument) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if doc.activity is None:
        return out
    if not str(doc.params.get("date", "")).strip():
        out.append(make("citation-missing", doc.file,
                        doc.key_line("date", doc.key_line("title")), 1,
                        "activity has no date"))
    if "Citations" in doc.activity.sections and not doc.activity.citations:
        out.append(make("citation-missing", doc.file,
                        _section_line(doc, "Citations"), 1,
                        "Citations section has no citation entries"))
    return out


# -- prose rules (body-level style, wired into the autofix engine) -----------

_HEADING_RE = re.compile(r"^(#{1,6})\s")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_URL_RE = re.compile(r"https?://[^\s<>\[\]\"']+")
_TODO_RE = re.compile(r"\b(TODO|FIXME|XXX)\b")
_LINK_DEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s")

#: Punctuation that reads as sentence context, not as part of a URL.
_URL_TRAILING = ".,;:!?)'\""


def body_lines(doc: ParsedDocument):
    """Yield ``(absolute_line, text)`` for body lines outside code fences."""
    in_fence = False
    for index, raw in enumerate(doc.text.split("\n"), start=1):
        if index <= doc.body_offset:
            continue
        if _FENCE_RE.match(raw):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield index, raw


def mask_code_spans(raw: str) -> str:
    """Blank out inline code spans, preserving column positions."""
    return _CODE_SPAN_RE.sub(lambda m: " " * len(m.group()), raw)


def heading_jumps(doc: ParsedDocument):
    """Yield ``(line, prev_depth, depth)`` where depth increases by > 1."""
    prev = 0
    for line, raw in body_lines(doc):
        match = _HEADING_RE.match(raw)
        if match is None:
            continue
        depth = len(match.group(1))
        if prev and depth > prev + 1:
            yield line, prev, depth
        prev = depth


def bare_urls(doc: ParsedDocument):
    """Yield ``(line, column, url)`` for body URLs that are bare text.

    A URL already inside an autolink (``<url>``), a markdown link target
    (``](url)``), an inline code span, or a link reference definition is
    fine; trailing sentence punctuation is not counted as URL.
    """
    for line, raw in body_lines(doc):
        if _LINK_DEF_RE.match(raw):
            continue
        masked = mask_code_spans(raw)
        for match in _URL_RE.finditer(masked):
            start = match.start()
            before = masked[start - 1] if start else " "
            if before in "<(":
                continue
            url = match.group().rstrip(_URL_TRAILING)
            if url:
                yield line, start + 1, url


def todo_markers(doc: ParsedDocument):
    """Yield ``(line, column, marker)`` for TODO/FIXME/XXX in body text."""
    for line, raw in body_lines(doc):
        masked = mask_code_spans(raw)
        for match in _TODO_RE.finditer(masked):
            yield line, match.start() + 1, match.group(1)


def check_prose_headings(doc: ParsedDocument) -> list[Diagnostic]:
    return [
        make("prose-heading-jump", doc.file, line, 1,
             f"heading depth jumps from {prev} to {depth} "
             f"(use depth {prev + 1})")
        for line, prev, depth in heading_jumps(doc)
    ]


def check_prose_bare_urls(doc: ParsedDocument) -> list[Diagnostic]:
    return [
        make("prose-bare-url", doc.file, line, column,
             f"bare URL {url} (wrap it as <{url}> or cite it as a link)")
        for line, column, url in bare_urls(doc)
    ]


def check_prose_todo_markers(doc: ParsedDocument) -> list[Diagnostic]:
    return [
        make("prose-todo-marker", doc.file, line, column,
             f"{marker} marker left in activity text")
        for line, column, marker in todo_markers(doc)
    ]


PER_FILE_RULES: tuple[tuple[str, Callable[[ParsedDocument], list[Diagnostic]]], ...] = (
    ("frontmatter-schema", check_frontmatter_schema),
    ("taxonomy-unknown-term", check_taxonomy_terms),
    ("taxonomy-noncanonical-term", check_noncanonical_terms),
    ("standards-unknown-term", check_standards_terms),
    ("standards-detail-parent", check_detail_parents),
    ("section-structure", check_section_structure),
    ("citation-missing", check_citations),
    ("prose-heading-jump", check_prose_headings),
    ("prose-bare-url", check_prose_bare_urls),
    ("prose-todo-marker", check_prose_todo_markers),
)


def run_per_file(doc: ParsedDocument) -> list[Diagnostic]:
    """Run every per-file content rule over one parsed document."""
    out: list[Diagnostic] = []
    for _rule_id, check in PER_FILE_RULES:
        out.extend(check(doc))
    return out


# -- corpus rules ------------------------------------------------------------


def check_internal_links(docs: list[DocumentInfo]) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for doc, ref, problem in links.check_internal_refs(docs):
        out.append(make("internal-link", doc.file, ref.line, ref.column,
                        problem))
    return out


def check_duplicate_slugs(docs: list[DocumentInfo]) -> list[Diagnostic]:
    by_slug: dict[str, list[DocumentInfo]] = {}
    for doc in docs:
        by_slug.setdefault(doc.slug, []).append(doc)
    out: list[Diagnostic] = []
    for slug, group in by_slug.items():
        if len(group) < 2:
            continue
        names = sorted(d.name for d in group)
        for doc in group[1:]:
            out.append(make("duplicate-slug", doc.file, doc.title_line, 1,
                            f"slug {slug!r} is shared by activities "
                            f"{names} (URLs collide)"))
    return out


def check_duplicate_titles(docs: list[DocumentInfo]) -> list[Diagnostic]:
    by_title: dict[str, list[DocumentInfo]] = {}
    for doc in docs:
        title = doc.title.strip().lower()
        if title:
            by_title.setdefault(title, []).append(doc)
    out: list[Diagnostic] = []
    for _title, group in by_title.items():
        if len(group) < 2:
            continue
        names = sorted(d.name for d in group)
        for doc in group[1:]:
            out.append(make("duplicate-title", doc.file, doc.title_line, 1,
                            f"title {doc.title!r} is shared by activities "
                            f"{names}"))
    return out


CORPUS_RULES: tuple[tuple[str, Callable[[list[DocumentInfo]], list[Diagnostic]]], ...] = (
    ("internal-link", check_internal_links),
    ("duplicate-slug", check_duplicate_slugs),
    ("duplicate-title", check_duplicate_titles),
)


def run_corpus(docs: list[DocumentInfo]) -> list[Diagnostic]:
    """Run every corpus-scope content rule over the document set."""
    out: list[Diagnostic] = []
    for _rule_id, check in CORPUS_RULES:
        out.extend(check(docs))
    return out
