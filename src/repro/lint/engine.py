"""The lint engine: incremental, parallel, deterministic.

Incrementality uses the same content fingerprint the activity catalog and
the serve layer's rebuild scanner key on — ``(name, mtime_ns, size)`` per
file — so all three subsystems agree about what "changed" means.  The
per-file cache stores *raw* diagnostics (rule-default severities) plus
the distilled :class:`~repro.lint.document.DocumentInfo` and the file's
suppression comments; severity overrides, disabled rules, and suppression
filtering are applied at report time, so reconfiguring the linter never
invalidates the cache.

Corpus-scope rules (duplicate slugs, internal links, orphan terms) re-run
on every lint over the cached ``DocumentInfo`` set — they are cheap, and
their verdicts legitimately depend on files that did *not* change.

Parallelism fans per-file analysis out over a thread pool; results are
keyed by filename and the final report is globally sorted by
:func:`~repro.lint.diagnostics.sort_key`, so parallel output is
byte-identical to serial output.
"""

from __future__ import annotations

import sys
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, TypeVar

from repro.lint import (
    cachefile,
    forksafety,
    lockgraph,
    rules_code,
    rules_content,
    rules_site,
)
from repro.lint.baseline import baseline_key, load_baseline
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    Suppressions,
    is_suppressed,
    make,
    python_suppressions,
    rule,
    sort_key,
)
from repro.lint.document import DocumentInfo, load_document
from repro.lint.fixes import Fix, fixes_for_corpus, fixes_for_document

__all__ = ["LintConfig", "LintStats", "LintResult", "LintEngine"]

# A rule or the engine itself crashing must not take the whole run down
# (or collapse into a bare exit-2 message): the failure surfaces as a
# synthetic ERROR diagnostic so SARIF consumers see it, with the full
# traceback on stderr.  Crashed rows are never cached.
rule("lint-internal-error", "engine", Severity.ERROR,
     "the lint engine analyzed every file without crashing")

_T = TypeVar("_T")

Fingerprint = tuple[str, int, int]


def _fingerprint(path: Path) -> Fingerprint:
    """Same scheme as ``catalog._corpus_fingerprint`` / ``rebuild.scan_content``."""
    stat = path.stat()
    return (path.name, stat.st_mtime_ns, stat.st_size)


@dataclass
class LintConfig:
    """What to lint and how to report it."""

    content_dir: Path
    code_dir: Path | None = None         # default: repro.serve package dir
    theme: Mapping[str, str] | None = None
    archetype_sections: tuple[str, ...] | None = None
    jobs: int = 1
    content: bool = True
    site: bool = True
    code: bool = True
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    disabled: frozenset[str] = frozenset()
    #: When set (``--select``): only these rule ids are reported.
    #: Report-time only, like ``disabled`` — composes with the cache
    #: (no invalidation) and with ``--changed`` scoping.
    selected: frozenset[str] | None = None
    cache_dir: Path | None = None        # persist the fingerprint table here
    baseline: Path | None = None         # .lintbaseline.json (warn-first)
    #: When set (``--changed <ref>``): resolved absolute paths that
    #: changed vs the ref.  Analysis is restricted to those files plus
    #: their cross-class dependents from the summary graph; unchanged
    #: files are served from cache when fresh and skipped otherwise.
    changed_only: frozenset[str] | None = None

    def validate(self) -> None:
        unknown = (set(self.severity_overrides) | set(self.disabled)
                   | set(self.selected or ())) - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


@dataclass
class LintStats:
    """Where the work went — proves incrementality in tests and --stats."""

    files_total: int = 0
    files_analyzed: int = 0              # parsed / AST-visited this run
    files_cached: int = 0                # served from the fingerprint cache
    files_skipped: int = 0               # outside --changed scope, no cache
    baselined: int = 0                   # findings filtered by the baseline
    internal_errors: int = 0             # rule/engine crashes survived


@dataclass
class LintResult:
    """One lint run's report."""

    diagnostics: list[Diagnostic]
    stats: LintStats
    fixes: list[Fix] = field(default_factory=list)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def counts(self) -> dict[str, int]:
        return {s.value: self.count(s) for s in Severity}

    @property
    def fixable(self) -> int:
        """How many reported findings carry a machine-applicable fix."""
        return len(self.fixes)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        worst = max((d.severity.rank for d in self.diagnostics), default=-1)
        return 1 if worst >= fail_on.rank else 0


#: Cache rows: fingerprint -> (raw diagnostics, fixes, info, suppressions).
_ContentRow = tuple[Fingerprint, tuple[Diagnostic, ...], tuple[Fix, ...],
                    DocumentInfo, Suppressions]
_CodeRow = tuple[Fingerprint, tuple[Diagnostic, ...], tuple[Fix, ...],
                 Suppressions, tuple[lockgraph.ClassSummary, ...],
                 forksafety.ModuleSummary | None]


class LintEngine:
    """Reusable incremental linter; one instance per corpus."""

    def __init__(self, config: LintConfig):
        config.validate()
        self.config = config
        self._lock = threading.Lock()    # serializes lint(); caches below
        self._content_cache: dict[str, _ContentRow] = {}
        self._code_cache: dict[str, _CodeRow] = {}
        self._persistent_loaded = False
        self._cache_dirty = False

    # -- the persistent cache ------------------------------------------------

    def _load_persistent(self) -> None:
        """Warm the in-memory caches from ``cache_dir`` (once, lazily)."""
        if self._persistent_loaded or self.config.cache_dir is None:
            return
        self._persistent_loaded = True
        content, code = cachefile.load_cache(self.config.cache_dir)
        # Disk rows never clobber rows this process already computed.
        for key, row in content.items():
            self._content_cache.setdefault(key, row)
        for key, row in code.items():
            self._code_cache.setdefault(key, row)

    def _save_persistent(self, seen_content: set[str],
                         seen_code: set[str]) -> None:
        """Spill the caches back to disk, pruning rows for deleted files."""
        if self.config.cache_dir is None:
            return
        stale = ((set(self._content_cache) - seen_content)
                 | (set(self._code_cache) - seen_code))
        for key in stale:
            self._content_cache.pop(key, None)
            self._code_cache.pop(key, None)
        if not self._cache_dirty and not stale:
            return
        cachefile.save_cache(self.config.cache_dir,
                             self._content_cache, self._code_cache)
        self._cache_dirty = False

    # -- internal-error containment -----------------------------------------

    def _note_internal_error(self, label: str, file: str,
                             exc: BaseException) -> None:
        """Record a crash as a synthetic diagnostic + stderr traceback."""
        self._internal_stats_errors += 1
        self._internal_diags.append(make(
            "lint-internal-error", file, 0, 0,
            f"{label} crashed: {type(exc).__name__}: {exc}"))
        print(f"lint-internal-error [{label}] {file}:", file=sys.stderr)
        traceback.print_exc(file=sys.stderr)

    def _guard(self, label: str, file: str, fn: Callable[[], _T],
               fallback: _T) -> _T:
        try:
            return fn()
        except Exception as exc:  # noqa: BLE001 - containment is the point
            self._note_internal_error(label, file, exc)
            return fallback

    # -- per-file analysis (cache-aware) ------------------------------------

    def _analyze_content(self, path: Path) -> tuple[_ContentRow, bool]:
        key = str(path)
        try:
            fingerprint = _fingerprint(path)
            cached = self._content_cache.get(key)
            if cached is not None and cached[0] == fingerprint:
                return cached, True
            doc = load_document(path)
            row: _ContentRow = (fingerprint,
                                tuple(rules_content.run_per_file(doc)),
                                tuple(fixes_for_document(doc)),
                                doc.info, doc.suppressions)
        except Exception as exc:  # noqa: BLE001 - containment is the point
            self._note_internal_error(f"content:{path.name}", key, exc)
            # Degraded row: enough for corpus rules to skip it.  Never
            # cached, so the file is re-analyzed next run.
            info = DocumentInfo(
                file=key, name=path.stem, slug=path.stem, title="",
                title_line=0, url=f"/activities/{path.stem}/",
                anchors=frozenset(), internal_refs=(), terms=(),
                parse_failed=True)
            return ((key, -1, -1), (), (), info, Suppressions()), False
        self._content_cache[key] = row
        self._cache_dirty = True
        return row, False

    def _analyze_code(self, path: Path) -> tuple[_CodeRow, bool]:
        key = str(path)
        try:
            fingerprint = _fingerprint(path)
            cached = self._code_cache.get(key)
            if cached is not None and cached[0] == fingerprint:
                return cached, True
            source = path.read_text(encoding="utf-8")
            diags, fixes, summaries, fork = rules_code.analyze_source_full(
                key, source)
            row: _CodeRow = (fingerprint, tuple(diags), tuple(fixes),
                             python_suppressions(source), summaries, fork)
        except Exception as exc:  # noqa: BLE001 - containment is the point
            self._note_internal_error(f"code:{path.name}", key, exc)
            return ((key, -1, -1), (), (), Suppressions(), (), None), False
        self._code_cache[key] = row
        self._cache_dirty = True
        return row, False

    def _map(self, paths: list[Path], analyze, stats: LintStats,
             jobs: int | None = None) -> list:
        """Apply ``analyze`` over ``paths``, optionally in parallel.

        Results come back ordered by input path regardless of worker
        scheduling, and stats are tallied serially afterwards; the final
        global sort makes parallel output byte-identical to serial output.
        ``jobs`` overrides the configured width for passes that must not
        fan out.
        """
        if jobs is None:
            jobs = self.config.jobs
        if jobs > 1 and len(paths) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(analyze, paths))
        else:
            results = [analyze(path) for path in paths]
        for _row, was_cached in results:
            if was_cached:
                stats.files_cached += 1
            else:
                stats.files_analyzed += 1
        return [row for row, _was_cached in results]

    # -- --changed restriction ----------------------------------------------

    def _partition_changed(
        self, paths: list[Path], allowed: set[str] | None,
        cache: dict, stats: LintStats,
    ) -> tuple[list[Path], list]:
        """Split ``paths`` into (to-analyze, cached rows) under --changed.

        Files outside the allowed set are served from the cache when the
        fingerprint still matches; otherwise they are skipped this run
        (and not reported on).  With no restriction every path is
        analyzed normally.
        """
        if allowed is None:
            return paths, []
        analyze: list[Path] = []
        reused: list = []
        for path in paths:
            if str(path.resolve()) in allowed:
                analyze.append(path)
                continue
            row = cache.get(str(path))
            try:
                fresh = row is not None and row[0] == _fingerprint(path)
            except OSError:
                fresh = False
            if fresh:
                reused.append((str(path), row))
                stats.files_cached += 1
            else:
                stats.files_skipped += 1
        return analyze, reused

    def _code_dependents(self, changed: frozenset[str]) -> set[str]:
        """Resolved paths of files coupled to ``changed`` via class refs.

        Two files are coupled when one's functions call into a class the
        other defines (from the cached fork-safety module summaries —
        the same call edges the corpus pass resolves).  The closure is
        one hop: dependents of dependents did not change behaviorally.
        """
        defines: dict[str, set[str]] = {}      # class -> resolved files
        references: dict[str, set[str]] = {}   # resolved file -> classes
        for key, row in self._code_cache.items():
            summary = row[5]
            if summary is None:
                continue
            resolved = str(Path(key).resolve())
            for cls in summary.classes:
                defines.setdefault(cls, set()).add(resolved)
            refs = references.setdefault(resolved, set())
            for fn in summary.functions:
                for ev in fn.events:
                    if ev[0] == "call" and ev[1] in ("class", "ctor"):
                        refs.add(ev[2].split(".", 1)[0])
        out: set[str] = set()
        for file, classes in references.items():
            for cls in classes:
                deffiles = defines.get(cls, ())
                if file in changed:
                    out.update(deffiles)
                elif changed.intersection(deffiles):
                    out.add(file)
        return out

    # -- passes --------------------------------------------------------------

    def _content_pass(self, stats: LintStats) -> list[Diagnostic]:
        paths = sorted(Path(self.config.content_dir).glob("*.md"))
        stats.files_total += len(paths)
        self._seen_content = {str(path) for path in paths}
        allowed = (set(self.config.changed_only)
                   if self.config.changed_only is not None else None)
        self._allowed_content = allowed
        paths, reused = self._partition_changed(
            paths, allowed, self._content_cache, stats)
        rows = [row for _key, row in reused]
        rows += self._map(paths, self._analyze_content, stats)
        rows.sort(key=lambda row: row[3].file)
        suppressions = {row[3].file: row[4] for row in rows}
        diagnostics: list[Diagnostic] = []
        fixes: list[Fix] = []
        infos: list[DocumentInfo] = []
        for _fp, diags, file_fixes, info, _supp in rows:
            diagnostics.extend(diags)
            fixes.extend(file_fixes)
            infos.append(info)
        if self.config.content:
            diagnostics.extend(self._guard(
                "content-corpus", "<lint>",
                lambda: rules_content.run_corpus(infos), []))
            fixes.extend(self._guard(
                "content-corpus-fixes", "<lint>",
                lambda: fixes_for_corpus(infos), []))
        else:
            diagnostics = []
            fixes = []
        self._infos = infos
        self._content_suppressions = suppressions
        self._raw_fixes = fixes
        return diagnostics

    def _site_pass(self) -> list[Diagnostic]:
        return rules_site.run_site(
            self._infos,
            theme=self.config.theme,
            archetype_sections=self.config.archetype_sections,
        )

    def _code_pass(self, stats: LintStats) -> list[Diagnostic]:
        code_dir = self.config.code_dir
        if code_dir is not None:
            code_dirs = [Path(code_dir)]
        else:
            import repro.serve as serve
            import repro.sweep as sweep

            code_dirs = [Path(serve.__file__).parent,
                         Path(sweep.__file__).parent]
        paths = sorted(path for root in code_dirs
                       for path in Path(root).rglob("*.py"))
        stats.files_total += len(paths)
        self._seen_code = {str(path) for path in paths}
        allowed: set[str] | None = None
        if self.config.changed_only is not None:
            # Changed files plus their cross-class dependents, resolved
            # from the *cached* summaries (the coupling existed before
            # the edit; brand-new couplings surface on the next full run).
            allowed = set(self.config.changed_only)
            allowed |= self._code_dependents(self.config.changed_only)
        self._allowed_code = allowed
        paths, reused = self._partition_changed(
            paths, allowed, self._code_cache, stats)
        # Fans out like the content pass: rules_code._parse pauses cyclic
        # GC behind a *counting* guard (CPython 3.11 SystemError
        # workaround), so concurrent parses are safe.
        rows = {str(p): row for p, row in
                zip(paths, self._map(paths, self._analyze_code, stats))}
        rows.update(dict(reused))
        diagnostics: list[Diagnostic] = []
        summaries: list[lockgraph.ClassSummary] = []
        fork_summaries: list[forksafety.ModuleSummary | None] = []
        for key in sorted(rows):
            _fp, diags, fixes, supp, file_summaries, fork = rows[key]
            self._code_suppressions[key] = supp
            diagnostics.extend(diags)
            self._raw_fixes.extend(fixes)
            summaries.extend(file_summaries)
            fork_summaries.append(fork)
        # Corpus scope, like the content corpus rules: cheap to re-run
        # over cached summaries, and their verdicts legitimately depend
        # on files that did not change.
        diagnostics.extend(self._guard(
            "cross-class-locks", "<lint>",
            lambda: lockgraph.analyze_cross_class(summaries), []))
        diagnostics.extend(self._guard(
            "fork-safety", "<lint>",
            lambda: forksafety.analyze_corpus(fork_summaries), []))
        return diagnostics

    # -- the run -------------------------------------------------------------

    def lint(self) -> LintResult:
        """Run every enabled pass; thread-safe, incremental, deterministic."""
        with self._lock:
            self._load_persistent()
            stats = LintStats()
            self._infos = []
            self._content_suppressions: dict[str, Suppressions] = {}
            self._code_suppressions: dict[str, Suppressions] = {}
            self._raw_fixes: list[Fix] = []
            self._seen_content: set[str] = set()
            self._seen_code: set[str] = set()
            self._internal_diags: list[Diagnostic] = []
            self._internal_stats_errors = 0
            self._allowed_content: set[str] | None = None
            self._allowed_code: set[str] | None = None
            raw: list[Diagnostic] = []
            # The content files are always *scanned* (site rules need the
            # DocumentInfos) even when the content pass itself is disabled.
            raw.extend(self._content_pass(stats))
            if self.config.site:
                raw.extend(self._guard("site", "<lint>",
                                       self._site_pass, []))
            if self.config.code:
                raw.extend(self._code_pass(stats))
            raw.extend(self._internal_diags)
            stats.internal_errors = self._internal_stats_errors
            diagnostics, fixes = self._finalize(raw, self._raw_fixes, stats)
            self._save_persistent(self._seen_content, self._seen_code)
            return LintResult(diagnostics=diagnostics, stats=stats,
                              fixes=fixes)

    def _finalize(self, raw: Iterable[Diagnostic], raw_fixes: list[Fix],
                  stats: LintStats) -> tuple[list[Diagnostic], list[Fix]]:
        """Report-time filtering: suppressions, disables, baseline, config.

        Fixes survive only when their diagnostic does — a suppressed,
        disabled, or baselined finding must not be auto-"fixed" behind
        the author's back.  The join key is the diagnostic sort key, not
        object identity, so severity overrides don't sever the link.
        """
        baselined = (load_baseline(self.config.baseline)
                     if self.config.baseline is not None else frozenset())
        allowed_report: set[str] | None = None
        if self.config.changed_only is not None:
            allowed_report = ((self._allowed_content or set())
                              | (self._allowed_code or set()))
        out: list[Diagnostic] = []
        for diag in raw:
            if (allowed_report is not None and diag.file != "<lint>"
                    and str(Path(diag.file).resolve()) not in allowed_report):
                continue
            if diag.rule_id in self.config.disabled:
                continue
            if (self.config.selected is not None
                    and diag.rule_id not in self.config.selected):
                continue
            suppressions = (self._content_suppressions.get(diag.file)
                            or self._code_suppressions.get(diag.file))
            if suppressions is not None and is_suppressed(diag, suppressions):
                continue
            if baselined and baseline_key(diag) in baselined:
                stats.baselined += 1
                continue
            override = self.config.severity_overrides.get(diag.rule_id)
            if override is not None and override is not diag.severity:
                diag = diag.with_severity(override)
            out.append(diag)
        out.sort(key=sort_key)
        surviving = {sort_key(diag) for diag in out}
        fixes = sorted((fix for fix in raw_fixes if fix.key in surviving),
                       key=lambda fix: fix.key)
        return out, fixes
