"""The lint engine: incremental, parallel, deterministic.

Incrementality uses the same content fingerprint the activity catalog and
the serve layer's rebuild scanner key on — ``(name, mtime_ns, size)`` per
file — so all three subsystems agree about what "changed" means.  The
per-file cache stores *raw* diagnostics (rule-default severities) plus
the distilled :class:`~repro.lint.document.DocumentInfo` and the file's
suppression comments; severity overrides, disabled rules, and suppression
filtering are applied at report time, so reconfiguring the linter never
invalidates the cache.

Corpus-scope rules (duplicate slugs, internal links, orphan terms) re-run
on every lint over the cached ``DocumentInfo`` set — they are cheap, and
their verdicts legitimately depend on files that did *not* change.

Parallelism fans per-file analysis out over a thread pool; results are
keyed by filename and the final report is globally sorted by
:func:`~repro.lint.diagnostics.sort_key`, so parallel output is
byte-identical to serial output.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.lint import cachefile, lockgraph, rules_code, rules_content, rules_site
from repro.lint.baseline import baseline_key, load_baseline
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    Suppressions,
    is_suppressed,
    python_suppressions,
    sort_key,
)
from repro.lint.document import DocumentInfo, load_document
from repro.lint.fixes import Fix, fixes_for_corpus, fixes_for_document

__all__ = ["LintConfig", "LintStats", "LintResult", "LintEngine"]

Fingerprint = tuple[str, int, int]


def _fingerprint(path: Path) -> Fingerprint:
    """Same scheme as ``catalog._corpus_fingerprint`` / ``rebuild.scan_content``."""
    stat = path.stat()
    return (path.name, stat.st_mtime_ns, stat.st_size)


@dataclass
class LintConfig:
    """What to lint and how to report it."""

    content_dir: Path
    code_dir: Path | None = None         # default: repro.serve package dir
    theme: Mapping[str, str] | None = None
    archetype_sections: tuple[str, ...] | None = None
    jobs: int = 1
    content: bool = True
    site: bool = True
    code: bool = True
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    disabled: frozenset[str] = frozenset()
    cache_dir: Path | None = None        # persist the fingerprint table here
    baseline: Path | None = None         # .lintbaseline.json (warn-first)

    def validate(self) -> None:
        unknown = (set(self.severity_overrides) | set(self.disabled)) - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


@dataclass
class LintStats:
    """Where the work went — proves incrementality in tests and --stats."""

    files_total: int = 0
    files_analyzed: int = 0              # parsed / AST-visited this run
    files_cached: int = 0                # served from the fingerprint cache
    baselined: int = 0                   # findings filtered by the baseline


@dataclass
class LintResult:
    """One lint run's report."""

    diagnostics: list[Diagnostic]
    stats: LintStats
    fixes: list[Fix] = field(default_factory=list)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def counts(self) -> dict[str, int]:
        return {s.value: self.count(s) for s in Severity}

    @property
    def fixable(self) -> int:
        """How many reported findings carry a machine-applicable fix."""
        return len(self.fixes)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        worst = max((d.severity.rank for d in self.diagnostics), default=-1)
        return 1 if worst >= fail_on.rank else 0


#: Cache rows: fingerprint -> (raw diagnostics, fixes, info, suppressions).
_ContentRow = tuple[Fingerprint, tuple[Diagnostic, ...], tuple[Fix, ...],
                    DocumentInfo, Suppressions]
_CodeRow = tuple[Fingerprint, tuple[Diagnostic, ...], Suppressions,
                 tuple[lockgraph.ClassSummary, ...]]


class LintEngine:
    """Reusable incremental linter; one instance per corpus."""

    def __init__(self, config: LintConfig):
        config.validate()
        self.config = config
        self._lock = threading.Lock()    # serializes lint(); caches below
        self._content_cache: dict[str, _ContentRow] = {}
        self._code_cache: dict[str, _CodeRow] = {}
        self._persistent_loaded = False
        self._cache_dirty = False

    # -- the persistent cache ------------------------------------------------

    def _load_persistent(self) -> None:
        """Warm the in-memory caches from ``cache_dir`` (once, lazily)."""
        if self._persistent_loaded or self.config.cache_dir is None:
            return
        self._persistent_loaded = True
        content, code = cachefile.load_cache(self.config.cache_dir)
        # Disk rows never clobber rows this process already computed.
        for key, row in content.items():
            self._content_cache.setdefault(key, row)
        for key, row in code.items():
            self._code_cache.setdefault(key, row)

    def _save_persistent(self, seen_content: set[str],
                         seen_code: set[str]) -> None:
        """Spill the caches back to disk, pruning rows for deleted files."""
        if self.config.cache_dir is None:
            return
        stale = ((set(self._content_cache) - seen_content)
                 | (set(self._code_cache) - seen_code))
        for key in stale:
            self._content_cache.pop(key, None)
            self._code_cache.pop(key, None)
        if not self._cache_dirty and not stale:
            return
        cachefile.save_cache(self.config.cache_dir,
                             self._content_cache, self._code_cache)
        self._cache_dirty = False

    # -- per-file analysis (cache-aware) ------------------------------------

    def _analyze_content(self, path: Path) -> tuple[_ContentRow, bool]:
        key = str(path)
        fingerprint = _fingerprint(path)
        cached = self._content_cache.get(key)
        if cached is not None and cached[0] == fingerprint:
            return cached, True
        doc = load_document(path)
        row: _ContentRow = (fingerprint,
                            tuple(rules_content.run_per_file(doc)),
                            tuple(fixes_for_document(doc)),
                            doc.info, doc.suppressions)
        self._content_cache[key] = row
        self._cache_dirty = True
        return row, False

    def _analyze_code(self, path: Path) -> tuple[_CodeRow, bool]:
        key = str(path)
        fingerprint = _fingerprint(path)
        cached = self._code_cache.get(key)
        if cached is not None and cached[0] == fingerprint:
            return cached, True
        source = path.read_text(encoding="utf-8")
        diags, summaries = rules_code.analyze_source_full(key, source)
        row: _CodeRow = (fingerprint, tuple(diags),
                         python_suppressions(source), summaries)
        self._code_cache[key] = row
        self._cache_dirty = True
        return row, False

    def _map(self, paths: list[Path], analyze, stats: LintStats,
             jobs: int | None = None) -> list:
        """Apply ``analyze`` over ``paths``, optionally in parallel.

        Results come back ordered by input path regardless of worker
        scheduling, and stats are tallied serially afterwards; the final
        global sort makes parallel output byte-identical to serial output.
        ``jobs`` overrides the configured width for passes that must not
        fan out.
        """
        if jobs is None:
            jobs = self.config.jobs
        if jobs > 1 and len(paths) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(analyze, paths))
        else:
            results = [analyze(path) for path in paths]
        for _row, was_cached in results:
            if was_cached:
                stats.files_cached += 1
            else:
                stats.files_analyzed += 1
        return [row for row, _was_cached in results]

    # -- passes --------------------------------------------------------------

    def _content_pass(self, stats: LintStats) -> list[Diagnostic]:
        paths = sorted(Path(self.config.content_dir).glob("*.md"))
        stats.files_total += len(paths)
        self._seen_content = {str(path) for path in paths}
        rows = self._map(paths, self._analyze_content, stats)
        suppressions = {row[3].file: row[4] for row in rows}
        diagnostics: list[Diagnostic] = []
        fixes: list[Fix] = []
        infos: list[DocumentInfo] = []
        for _fp, diags, file_fixes, info, _supp in rows:
            diagnostics.extend(diags)
            fixes.extend(file_fixes)
            infos.append(info)
        if self.config.content:
            diagnostics.extend(rules_content.run_corpus(infos))
            fixes.extend(fixes_for_corpus(infos))
        else:
            diagnostics = []
            fixes = []
        self._infos = infos
        self._content_suppressions = suppressions
        self._raw_fixes = fixes
        return diagnostics

    def _site_pass(self) -> list[Diagnostic]:
        return rules_site.run_site(
            self._infos,
            theme=self.config.theme,
            archetype_sections=self.config.archetype_sections,
        )

    def _code_pass(self, stats: LintStats) -> list[Diagnostic]:
        code_dir = self.config.code_dir
        if code_dir is not None:
            code_dirs = [Path(code_dir)]
        else:
            import repro.serve as serve
            import repro.sweep as sweep

            code_dirs = [Path(serve.__file__).parent,
                         Path(sweep.__file__).parent]
        paths = sorted(path for root in code_dirs
                       for path in Path(root).rglob("*.py"))
        stats.files_total += len(paths)
        self._seen_code = {str(path) for path in paths}
        # Fans out like the content pass: rules_code._parse pauses cyclic
        # GC behind a *counting* guard (CPython 3.11 SystemError
        # workaround), so concurrent parses are safe.
        rows = self._map(paths, self._analyze_code, stats)
        diagnostics: list[Diagnostic] = []
        summaries: list[lockgraph.ClassSummary] = []
        for key, (_fp, diags, supp, file_summaries) in zip(
                (str(p) for p in paths), rows):
            self._code_suppressions[key] = supp
            diagnostics.extend(diags)
            summaries.extend(file_summaries)
        # Corpus scope, like the content corpus rules: cheap to re-run
        # over cached summaries, and its verdicts legitimately depend on
        # files that did not change.
        diagnostics.extend(lockgraph.analyze_cross_class(summaries))
        return diagnostics

    # -- the run -------------------------------------------------------------

    def lint(self) -> LintResult:
        """Run every enabled pass; thread-safe, incremental, deterministic."""
        with self._lock:
            self._load_persistent()
            stats = LintStats()
            self._infos = []
            self._content_suppressions: dict[str, Suppressions] = {}
            self._code_suppressions: dict[str, Suppressions] = {}
            self._raw_fixes: list[Fix] = []
            self._seen_content: set[str] = set()
            self._seen_code: set[str] = set()
            raw: list[Diagnostic] = []
            # The content files are always *scanned* (site rules need the
            # DocumentInfos) even when the content pass itself is disabled.
            raw.extend(self._content_pass(stats))
            if self.config.site:
                raw.extend(self._site_pass())
            if self.config.code:
                raw.extend(self._code_pass(stats))
            diagnostics, fixes = self._finalize(raw, self._raw_fixes, stats)
            self._save_persistent(self._seen_content, self._seen_code)
            return LintResult(diagnostics=diagnostics, stats=stats,
                              fixes=fixes)

    def _finalize(self, raw: Iterable[Diagnostic], raw_fixes: list[Fix],
                  stats: LintStats) -> tuple[list[Diagnostic], list[Fix]]:
        """Report-time filtering: suppressions, disables, baseline, config.

        Fixes survive only when their diagnostic does — a suppressed,
        disabled, or baselined finding must not be auto-"fixed" behind
        the author's back.  The join key is the diagnostic sort key, not
        object identity, so severity overrides don't sever the link.
        """
        baselined = (load_baseline(self.config.baseline)
                     if self.config.baseline is not None else frozenset())
        out: list[Diagnostic] = []
        for diag in raw:
            if diag.rule_id in self.config.disabled:
                continue
            suppressions = (self._content_suppressions.get(diag.file)
                            or self._code_suppressions.get(diag.file))
            if suppressions is not None and is_suppressed(diag, suppressions):
                continue
            if baselined and baseline_key(diag) in baselined:
                stats.baselined += 1
                continue
            override = self.config.severity_overrides.get(diag.rule_id)
            if override is not None and override is not diag.severity:
                diag = diag.with_severity(override)
            out.append(diag)
        out.sort(key=sort_key)
        surviving = {sort_key(diag) for diag in out}
        fixes = sorted((fix for fix in raw_fixes if fix.key in surviving),
                       key=lambda fix: fix.key)
        return out, fixes
