"""The lint engine: incremental, parallel, deterministic.

Incrementality uses the same content fingerprint the activity catalog and
the serve layer's rebuild scanner key on — ``(name, mtime_ns, size)`` per
file — so all three subsystems agree about what "changed" means.  The
per-file cache stores *raw* diagnostics (rule-default severities) plus
the distilled :class:`~repro.lint.document.DocumentInfo` and the file's
suppression comments; severity overrides, disabled rules, and suppression
filtering are applied at report time, so reconfiguring the linter never
invalidates the cache.

Corpus-scope rules (duplicate slugs, internal links, orphan terms) re-run
on every lint over the cached ``DocumentInfo`` set — they are cheap, and
their verdicts legitimately depend on files that did *not* change.

Parallelism fans per-file analysis out over a thread pool; results are
keyed by filename and the final report is globally sorted by
:func:`~repro.lint.diagnostics.sort_key`, so parallel output is
byte-identical to serial output.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.lint import rules_code, rules_content, rules_site
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    Suppressions,
    is_suppressed,
    python_suppressions,
    sort_key,
)
from repro.lint.document import DocumentInfo, load_document

__all__ = ["LintConfig", "LintStats", "LintResult", "LintEngine"]

Fingerprint = tuple[str, int, int]


def _fingerprint(path: Path) -> Fingerprint:
    """Same scheme as ``catalog._corpus_fingerprint`` / ``rebuild.scan_content``."""
    stat = path.stat()
    return (path.name, stat.st_mtime_ns, stat.st_size)


@dataclass
class LintConfig:
    """What to lint and how to report it."""

    content_dir: Path
    code_dir: Path | None = None         # default: repro.serve package dir
    theme: Mapping[str, str] | None = None
    archetype_sections: tuple[str, ...] | None = None
    jobs: int = 1
    content: bool = True
    site: bool = True
    code: bool = True
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    disabled: frozenset[str] = frozenset()

    def validate(self) -> None:
        unknown = (set(self.severity_overrides) | set(self.disabled)) - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


@dataclass
class LintStats:
    """Where the work went — proves incrementality in tests and --stats."""

    files_total: int = 0
    files_analyzed: int = 0              # parsed / AST-visited this run
    files_cached: int = 0                # served from the fingerprint cache


@dataclass
class LintResult:
    """One lint run's report."""

    diagnostics: list[Diagnostic]
    stats: LintStats

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def counts(self) -> dict[str, int]:
        return {s.value: self.count(s) for s in Severity}

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        worst = max((d.severity.rank for d in self.diagnostics), default=-1)
        return 1 if worst >= fail_on.rank else 0


#: Cache rows: fingerprint -> (raw per-file diagnostics, info, suppressions).
_ContentRow = tuple[Fingerprint, tuple[Diagnostic, ...], DocumentInfo,
                    Suppressions]
_CodeRow = tuple[Fingerprint, tuple[Diagnostic, ...], Suppressions]


class LintEngine:
    """Reusable incremental linter; one instance per corpus."""

    def __init__(self, config: LintConfig):
        config.validate()
        self.config = config
        self._lock = threading.Lock()    # serializes lint(); caches below
        self._content_cache: dict[str, _ContentRow] = {}
        self._code_cache: dict[str, _CodeRow] = {}

    # -- per-file analysis (cache-aware) ------------------------------------

    def _analyze_content(self, path: Path) -> tuple[_ContentRow, bool]:
        key = str(path)
        fingerprint = _fingerprint(path)
        cached = self._content_cache.get(key)
        if cached is not None and cached[0] == fingerprint:
            return cached, True
        doc = load_document(path)
        row: _ContentRow = (fingerprint,
                            tuple(rules_content.run_per_file(doc)),
                            doc.info, doc.suppressions)
        self._content_cache[key] = row
        return row, False

    def _analyze_code(self, path: Path) -> tuple[_CodeRow, bool]:
        key = str(path)
        fingerprint = _fingerprint(path)
        cached = self._code_cache.get(key)
        if cached is not None and cached[0] == fingerprint:
            return cached, True
        source = path.read_text(encoding="utf-8")
        row: _CodeRow = (fingerprint,
                         tuple(rules_code.analyze_source(key, source)),
                         python_suppressions(source))
        self._code_cache[key] = row
        return row, False

    def _map(self, paths: list[Path], analyze, stats: LintStats,
             jobs: int | None = None) -> list:
        """Apply ``analyze`` over ``paths``, optionally in parallel.

        Results come back ordered by input path regardless of worker
        scheduling, and stats are tallied serially afterwards; the final
        global sort makes parallel output byte-identical to serial output.
        ``jobs`` overrides the configured width for passes that must not
        fan out.
        """
        if jobs is None:
            jobs = self.config.jobs
        if jobs > 1 and len(paths) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(analyze, paths))
        else:
            results = [analyze(path) for path in paths]
        for _row, was_cached in results:
            if was_cached:
                stats.files_cached += 1
            else:
                stats.files_analyzed += 1
        return [row for row, _was_cached in results]

    # -- passes --------------------------------------------------------------

    def _content_pass(self, stats: LintStats) -> list[Diagnostic]:
        paths = sorted(Path(self.config.content_dir).glob("*.md"))
        stats.files_total += len(paths)
        rows = self._map(paths, self._analyze_content, stats)
        suppressions = {row[2].file: row[3] for row in rows}
        diagnostics: list[Diagnostic] = []
        infos: list[DocumentInfo] = []
        for _fp, diags, info, _supp in rows:
            diagnostics.extend(diags)
            infos.append(info)
        if self.config.content:
            diagnostics.extend(rules_content.run_corpus(infos))
        else:
            diagnostics = []
        self._infos = infos
        self._content_suppressions = suppressions
        return diagnostics

    def _site_pass(self) -> list[Diagnostic]:
        return rules_site.run_site(
            self._infos,
            theme=self.config.theme,
            archetype_sections=self.config.archetype_sections,
        )

    def _code_pass(self, stats: LintStats) -> list[Diagnostic]:
        code_dir = self.config.code_dir
        if code_dir is None:
            import repro.serve as serve

            code_dir = Path(serve.__file__).parent
        paths = sorted(Path(code_dir).rglob("*.py"))
        stats.files_total += len(paths)
        # Serial on purpose: rules_code serializes ast.parse behind a
        # GC-pausing guard (CPython 3.11 SystemError workaround, see
        # rules_code._parse), so fanning the handful of serve modules over
        # threads buys nothing.
        rows = self._map(paths, self._analyze_code, stats, jobs=1)
        diagnostics: list[Diagnostic] = []
        for key, (_fp, diags, supp) in zip((str(p) for p in paths), rows):
            self._code_suppressions[key] = supp
            diagnostics.extend(diags)
        return diagnostics

    # -- the run -------------------------------------------------------------

    def lint(self) -> LintResult:
        """Run every enabled pass; thread-safe, incremental, deterministic."""
        with self._lock:
            stats = LintStats()
            self._infos = []
            self._content_suppressions: dict[str, Suppressions] = {}
            self._code_suppressions: dict[str, Suppressions] = {}
            raw: list[Diagnostic] = []
            # The content files are always *scanned* (site rules need the
            # DocumentInfos) even when the content pass itself is disabled.
            raw.extend(self._content_pass(stats))
            if self.config.site:
                raw.extend(self._site_pass())
            if self.config.code:
                raw.extend(self._code_pass(stats))
            diagnostics = self._finalize(raw)
            return LintResult(diagnostics=diagnostics, stats=stats)

    def _finalize(self, raw: Iterable[Diagnostic]) -> list[Diagnostic]:
        """Report-time filtering: suppressions, disables, severity config."""
        out: list[Diagnostic] = []
        for diag in raw:
            if diag.rule_id in self.config.disabled:
                continue
            suppressions = (self._content_suppressions.get(diag.file)
                            or self._code_suppressions.get(diag.file))
            if suppressions is not None and is_suppressed(diag, suppressions):
                continue
            override = self.config.severity_overrides.get(diag.rule_id)
            if override is not None and override is not diag.severity:
                diag = diag.with_severity(override)
            out.append(diag)
        out.sort(key=sort_key)
        return out
