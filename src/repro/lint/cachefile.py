"""Persistent cross-run lint cache: the fingerprint table, spilled to disk.

The in-memory engine caches ``fingerprint -> (diagnostics, fixes, info,
suppressions)`` per file; this module serializes that table to
``lint-cache.json`` under ``--cache-dir`` so a *separate process* (CI
step, warm serve worker, next CLI invocation) re-analyzes only files
whose ``(name, mtime_ns, size)`` fingerprint changed.  Against an
unchanged corpus a warm run re-analyzes zero files.

Invalidation is two-level:

* **Whole-cache**: the header carries a format version plus a signature
  hashing the tool version and the registered rule set.  A new repro
  release or any rule addition/removal drops the entire cache — rule
  *logic* may have changed, and stale verdicts are worse than a cold run.
* **Per-row**: each row embeds its file fingerprint; the engine compares
  on lookup exactly as it does for in-memory rows, so touched files fall
  out row-by-row.

Rows store *raw* diagnostics (rule-default severities), mirroring the
in-memory cache: severity overrides, disabled rules, suppressions, and
the baseline are applied at report time, so reconfiguring the linter
never invalidates a persistent cache either.

Writes are atomic and durable (:func:`repro.ioutil.atomic_write_text`:
tmp file + fsync + ``os.replace``, the same primitive ``serve.persist``
uses) and loads are tolerant: a corrupt, truncated, or foreign file is
treated as an empty cache, never an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import repro
from repro.ioutil import atomic_write_text
from repro.lint.diagnostics import (
    Diagnostic,
    RULES,
    Severity,
    Span,
    Suppressions,
)
from repro.lint.document import DocumentInfo
from repro.lint.fixes import Edit, Fix
from repro.lint.forksafety import FunctionSummary, ModuleSummary
from repro.lint.links import InternalRef
from repro.lint.lockgraph import ClassSummary, CrossCall

__all__ = [
    "CACHE_VERSION",
    "CACHE_FILENAME",
    "cache_signature",
    "cache_path",
    "load_cache",
    "save_cache",
]

CACHE_VERSION = 3                        # v3: code rows carry fixes plus
                                         # fork-safety ModuleSummaries
CACHE_FILENAME = "lint-cache.json"


def cache_signature() -> str:
    """Hash of everything that invalidates cached verdicts wholesale."""
    payload = "\n".join([
        str(CACHE_VERSION),
        getattr(repro, "__version__", "0"),
        *sorted(RULES),
    ])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def cache_path(cache_dir: str | Path) -> Path:
    return Path(cache_dir) / CACHE_FILENAME


# -- (de)serialization -------------------------------------------------------


def _diag_to_json(diag: Diagnostic) -> dict:
    return diag.to_dict()


def _diag_from_json(data: dict) -> Diagnostic:
    return Diagnostic(
        rule_id=data["rule"],
        severity=Severity(data["severity"]),
        file=data["file"],
        span=Span(int(data["line"]), int(data["column"])),
        message=data["message"],
    )


def _fix_to_json(fix: Fix) -> dict:
    return fix.to_dict()


def _fix_from_json(data: dict) -> Fix:
    return Fix(
        rule_id=data["rule"],
        file=data["file"],
        line=int(data["line"]),
        column=int(data["column"]),
        message=data["message"],
        description=data["description"],
        edits=tuple(
            Edit(int(e["start_line"]), int(e["start_column"]),
                 int(e["end_line"]), int(e["end_column"]),
                 e["replacement"])
            for e in data.get("edits", ())
        ),
        rename_to=data.get("rename_to"),
    )


def _info_to_json(info: DocumentInfo) -> dict:
    return {
        "file": info.file,
        "name": info.name,
        "slug": info.slug,
        "title": info.title,
        "title_line": info.title_line,
        "url": info.url,
        "anchors": sorted(info.anchors),
        "internal_refs": [
            {"target": r.target, "path": r.path, "fragment": r.fragment,
             "line": r.line, "column": r.column}
            for r in info.internal_refs
        ],
        "terms": [[axis, list(values)] for axis, values in info.terms],
        "parse_failed": info.parse_failed,
    }


def _info_from_json(data: dict) -> DocumentInfo:
    return DocumentInfo(
        file=data["file"],
        name=data["name"],
        slug=data["slug"],
        title=data["title"],
        title_line=int(data["title_line"]),
        url=data["url"],
        anchors=frozenset(data["anchors"]),
        internal_refs=tuple(
            InternalRef(target=r["target"], path=r["path"],
                        fragment=r["fragment"], line=int(r["line"]),
                        column=int(r["column"]))
            for r in data["internal_refs"]
        ),
        terms=tuple(
            (axis, tuple(values)) for axis, values in data["terms"]
        ),
        parse_failed=bool(data.get("parse_failed", False)),
    )


def _supp_to_json(supp: Suppressions) -> dict:
    return {
        "file_rules": sorted(supp.file_rules),
        "line_rules": [[line, sorted(rules)]
                       for line, rules in supp.line_rules],
        "reach": supp.reach,
    }


def _supp_from_json(data: dict) -> Suppressions:
    return Suppressions(
        file_rules=frozenset(data["file_rules"]),
        line_rules=tuple(
            (int(line), frozenset(rules))
            for line, rules in data["line_rules"]
        ),
        reach=int(data.get("reach", 1)),
    )


def _summary_to_json(summary: ClassSummary) -> dict:
    return {
        "file": summary.file,
        "name": summary.name,
        "locks": [list(pair) for pair in summary.locks],
        "bindings": [[attr, list(names)] for attr, names in summary.bindings],
        "methods": [[method, list(locks)] for method, locks in summary.methods],
        "intra_calls": [[method, callee, list(held), line, column]
                        for method, callee, held, line, column
                        in summary.intra_calls],
        "cross_calls": [
            {"obj": c.obj, "callee": c.callee, "held": list(c.held),
             "method": c.method, "line": c.line, "column": c.column}
            for c in summary.cross_calls
        ],
        "edges": [[held, taken, line, text]
                  for held, taken, line, text in summary.edges],
    }


def _summary_from_json(data: dict) -> ClassSummary:
    return ClassSummary(
        file=data["file"],
        name=data["name"],
        locks=tuple((str(a), str(k)) for a, k in data["locks"]),
        bindings=tuple((str(attr), tuple(str(n) for n in names))
                       for attr, names in data["bindings"]),
        methods=tuple((str(method), tuple(str(l) for l in locks))
                      for method, locks in data["methods"]),
        intra_calls=tuple(
            (str(method), str(callee), tuple(str(h) for h in held),
             int(line), int(column))
            for method, callee, held, line, column in data["intra_calls"]),
        cross_calls=tuple(
            CrossCall(obj=str(c["obj"]), callee=str(c["callee"]),
                      held=tuple(str(h) for h in c["held"]),
                      method=str(c["method"]), line=int(c["line"]),
                      column=int(c["column"]))
            for c in data["cross_calls"]
        ),
        edges=tuple((str(held), str(taken), int(line), str(text))
                    for held, taken, line, text in data["edges"]),
    )


def _module_summary_to_json(summary: ModuleSummary | None) -> dict | None:
    if summary is None:
        return None
    return {
        "file": summary.file,
        "classes": list(summary.classes),
        "functions": [
            {
                "qual": fn.qual,
                "events": [[etype, a, b, line, column, list(held)]
                           for etype, a, b, line, column, held in fn.events],
                "registrations": [list(reg) for reg in fn.registrations],
            }
            for fn in summary.functions
        ],
        "atexit_sites": [list(site) for site in summary.atexit_sites],
        "global_mutables": [list(g) for g in summary.global_mutables],
    }


def _module_summary_from_json(data: dict | None) -> ModuleSummary | None:
    if data is None:
        return None
    return ModuleSummary(
        file=str(data["file"]),
        classes=tuple(str(c) for c in data["classes"]),
        functions=tuple(
            FunctionSummary(
                qual=str(fn["qual"]),
                events=tuple(
                    (str(etype), str(a), str(b), int(line), int(column),
                     tuple(str(h) for h in held))
                    for etype, a, b, line, column, held in fn["events"]),
                registrations=tuple(
                    (str(tag), str(target), int(line), int(column))
                    for tag, target, line, column in fn["registrations"]),
            )
            for fn in data["functions"]
        ),
        atexit_sites=tuple((int(line), int(column))
                           for line, column in data["atexit_sites"]),
        global_mutables=tuple(
            (str(name), int(line), int(column), str(kind))
            for name, line, column, kind in data["global_mutables"]),
    )


def _fingerprint_from_json(data: list) -> tuple[str, int, int]:
    return (str(data[0]), int(data[1]), int(data[2]))


# -- load / save -------------------------------------------------------------


def load_cache(cache_dir: str | Path) -> tuple[dict, dict]:
    """Read the persistent cache; ``(content_rows, code_rows)``.

    Missing file, unreadable JSON, version/signature mismatch, or any
    malformed row all degrade to an empty (partial) cache — a persistent
    cache is an accelerator, never a correctness dependency.
    """
    content: dict = {}
    code: dict = {}
    path = cache_path(cache_dir)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return content, code
    if not isinstance(data, dict) \
            or data.get("version") != CACHE_VERSION \
            or data.get("signature") != cache_signature():
        return content, code
    for key, row in (data.get("content") or {}).items():
        try:
            content[key] = (
                _fingerprint_from_json(row["fingerprint"]),
                tuple(_diag_from_json(d) for d in row["diagnostics"]),
                tuple(_fix_from_json(f) for f in row["fixes"]),
                _info_from_json(row["info"]),
                _supp_from_json(row["suppressions"]),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            continue                     # skip the bad row, keep the rest
    for key, row in (data.get("code") or {}).items():
        try:
            code[key] = (
                _fingerprint_from_json(row["fingerprint"]),
                tuple(_diag_from_json(d) for d in row["diagnostics"]),
                tuple(_fix_from_json(f) for f in row["fixes"]),
                _supp_from_json(row["suppressions"]),
                tuple(_summary_from_json(s) for s in row["summaries"]),
                _module_summary_from_json(row["module_summary"]),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            continue
    return content, code


def save_cache(cache_dir: str | Path, content: dict, code: dict) -> Path:
    """Atomically write the cache table; returns the cache file path."""
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CACHE_VERSION,
        "signature": cache_signature(),
        "content": {
            key: {
                "fingerprint": list(fingerprint),
                "diagnostics": [_diag_to_json(d) for d in diags],
                "fixes": [_fix_to_json(f) for f in fixes],
                "info": _info_to_json(info),
                "suppressions": _supp_to_json(supp),
            }
            for key, (fingerprint, diags, fixes, info, supp)
            in sorted(content.items())
        },
        "code": {
            key: {
                "fingerprint": list(fingerprint),
                "diagnostics": [_diag_to_json(d) for d in diags],
                "fixes": [_fix_to_json(f) for f in fixes],
                "suppressions": _supp_to_json(supp),
                "summaries": [_summary_to_json(s) for s in summaries],
                "module_summary": _module_summary_to_json(module_summary),
            }
            for key, (fingerprint, diags, fixes, supp, summaries,
                      module_summary)
            in sorted(code.items())
        },
    }
    path = cache_path(cache_dir)
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path
