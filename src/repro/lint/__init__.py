"""repro.lint — incremental, parallel static analysis for the repository.

Three passes over three artifact kinds:

* **content** — the activity corpus: front-matter schema, taxonomy and
  curriculum-standards vocabularies, section structure, citations,
  duplicate slugs/titles, internal links and anchors.
* **site** — the scaffolding: theme templates (undefined partials and
  variables), archetype drift against the schema, orphaned taxonomy
  terms.
* **code** — concurrency hygiene of :mod:`repro.serve`: unlocked writes
  to shared state and blocking I/O under a held lock.

Entry points: :class:`LintEngine` (library), ``pdcunplugged lint``
(CLI), and ``GET /api/lint`` (serve layer).
"""

from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    Span,
    sort_key,
)
from repro.lint.engine import LintConfig, LintEngine, LintResult, LintStats

# Importing the rule modules registers every rule in RULES.
from repro.lint import rules_code, rules_content, rules_site  # noqa: F401
from repro.lint.reporters import (
    REPORTERS,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintEngine",
    "LintResult",
    "LintStats",
    "REPORTERS",
    "RULES",
    "Rule",
    "Severity",
    "Span",
    "render_json",
    "render_sarif",
    "render_text",
    "sort_key",
]
