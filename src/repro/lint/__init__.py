"""repro.lint — incremental, parallel static analysis for the repository.

Three passes over three artifact kinds:

* **content** — the activity corpus: front-matter schema, taxonomy and
  curriculum-standards vocabularies, section structure, citations,
  duplicate slugs/titles, internal links and anchors.
* **site** — the scaffolding: theme templates (undefined partials and
  variables), archetype drift against the schema, orphaned taxonomy
  terms.
* **code** — concurrency hygiene of :mod:`repro.serve`: unlocked writes
  to shared state, blocking I/O under a held lock, and deadlock-risk
  shapes in the per-class lock-acquisition graph
  (:mod:`~repro.lint.lockgraph`).

Beyond detection, mechanical rules carry remediations: the fixit
pipeline (:mod:`~repro.lint.fixes`, ``lint --fix``) applies
span-anchored edits and canonical rewrites that round-trip through the
activity parser.  The fingerprint cache persists across processes via
``--cache-dir`` (:mod:`~repro.lint.cachefile`), and a baseline file
(:mod:`~repro.lint.baseline`) lets new rules land warn-first.

Entry points: :class:`LintEngine` (library), ``pdcunplugged lint``
(CLI), and ``GET /api/lint`` (serve layer).
"""

from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    Span,
    sort_key,
)
from repro.lint.engine import LintConfig, LintEngine, LintResult, LintStats
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.fixes import (
    Edit,
    Fix,
    FixReport,
    CheckReport,
    check_fixes,
    fix_engine,
    render_check_report,
)

# Importing the rule modules registers every rule in RULES
# (rules_code pulls in lockgraph, forksafety, and resources).
from repro.lint import rules_code, rules_content, rules_site  # noqa: F401
from repro.lint.reporters import (
    REPORTERS,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "CheckReport",
    "Diagnostic",
    "Edit",
    "Fix",
    "FixReport",
    "LintConfig",
    "LintEngine",
    "LintResult",
    "LintStats",
    "REPORTERS",
    "RULES",
    "Rule",
    "Severity",
    "Span",
    "check_fixes",
    "fix_engine",
    "load_baseline",
    "render_check_report",
    "render_json",
    "render_sarif",
    "render_text",
    "sort_key",
    "write_baseline",
]
