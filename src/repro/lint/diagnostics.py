"""Core lint vocabulary: severities, spans, diagnostics, the rule registry.

A *rule* is a named invariant with a default severity; a *diagnostic* is
one violation of a rule at a source location.  Rules live in one of three
passes:

* ``content`` — per-activity and corpus-wide checks over the Markdown
  corpus (front-matter schema, taxonomy/standards tags, sections,
  citations, internal links, duplicate slugs/titles),
* ``site``    — checks over the theme templates and site scaffolding
  (undefined partials/variables, archetype drift, orphan terms),
* ``code``    — concurrency-hygiene AST checks over the serving layer.

Diagnostics are value objects ordered by a stable key so a parallel lint
run prints byte-identically to a serial one.  Severity overrides are
applied at *report* time, never baked into cached diagnostics, so a config
change does not invalidate the per-file cache.

Suppression comments (checked by the engine when filtering):

* Markdown: ``<!-- lint:disable=rule-a,rule-b -->`` anywhere in the file
  suppresses those rules file-wide; ``<!-- lint:disable-line=rule -->``
  suppresses on its own line and the next.
* Python: ``# lint: disable=rule`` on the flagged line or the line above.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace

__all__ = [
    "Severity",
    "Span",
    "Diagnostic",
    "Rule",
    "RULES",
    "rule",
    "sort_key",
    "markdown_suppressions",
    "python_suppressions",
    "is_suppressed",
]


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r} (expected info, warning, or error)"
            ) from None


@dataclass(frozen=True)
class Span:
    """1-based source position; ``line=0`` marks a whole-file finding."""

    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at one location."""

    rule_id: str
    severity: Severity
    file: str
    span: Span
    message: str

    def with_severity(self, severity: Severity) -> "Diagnostic":
        return replace(self, severity=severity)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.span.line,
            "column": self.span.column,
            "message": self.message,
        }


def sort_key(diag: Diagnostic) -> tuple:
    """Total order making lint output deterministic across schedules."""
    return (diag.file, diag.span.line, diag.span.column,
            diag.rule_id, diag.message)


@dataclass(frozen=True)
class Rule:
    """Registry entry for one lint rule."""

    id: str
    pass_name: str                       # "content" | "site" | "code"
    severity: Severity
    description: str
    per_file: bool = True                # False: needs the whole corpus


#: Every known rule, id -> :class:`Rule`.  Populated by :func:`rule` at
#: import time of the ``rules_*`` modules (re-registration is idempotent).
RULES: dict[str, Rule] = {}


def rule(rule_id: str, pass_name: str, severity: Severity,
         description: str, per_file: bool = True) -> Rule:
    """Register (or look up) a rule definition."""
    existing = RULES.get(rule_id)
    if existing is not None:
        return existing
    entry = Rule(rule_id, pass_name, severity, description, per_file)
    RULES[rule_id] = entry
    return entry


def make(rule_id: str, file: str, line: int, column: int, message: str,
         ) -> Diagnostic:
    """Build a diagnostic carrying its rule's default severity."""
    return Diagnostic(rule_id, RULES[rule_id].severity, file,
                      Span(line, column), message)


# -- suppression comments ----------------------------------------------------

_MD_FILE_RE = re.compile(r"<!--\s*lint:disable=([\w,\- ]+?)\s*-->")
_MD_LINE_RE = re.compile(r"<!--\s*lint:disable-line=([\w,\- ]+?)\s*-->")
_PY_LINE_RE = re.compile(r"#\s*lint:\s*disable=([\w,\-]+)")


def _split_rules(raw: str) -> frozenset[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


@dataclass(frozen=True)
class Suppressions:
    """Parsed suppression comments for one source file."""

    file_rules: frozenset[str] = frozenset()
    line_rules: tuple[tuple[int, frozenset[str]], ...] = ()
    #: How far below the comment line a suppression reaches (markdown
    #: comments suppress the next line; python comments the line above).
    reach: int = 1

    def _rules_at(self, line: int) -> frozenset[str]:
        out: set[str] = set()
        for comment_line, rules in self.line_rules:
            if comment_line <= line <= comment_line + self.reach:
                out.update(rules)
        return frozenset(out)

    def suppresses(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_rules:
            return True
        return rule_id in self._rules_at(line)


def markdown_suppressions(text: str) -> Suppressions:
    """Suppressions for a Markdown source file."""
    file_rules: set[str] = set()
    line_rules: list[tuple[int, frozenset[str]]] = []
    for lineno, line in enumerate(text.split("\n"), start=1):
        for match in _MD_LINE_RE.finditer(line):
            line_rules.append((lineno, _split_rules(match.group(1))))
        # Strip disable-line comments first so the file-wide pattern does
        # not also match them (`disable=` is a prefix of `disable-line=`).
        remaining = _MD_LINE_RE.sub("", line)
        for match in _MD_FILE_RE.finditer(remaining):
            file_rules.update(_split_rules(match.group(1)))
    return Suppressions(frozenset(file_rules), tuple(line_rules), reach=1)


def python_suppressions(text: str) -> Suppressions:
    """Suppressions for a Python source file (same line or line below)."""
    line_rules: list[tuple[int, frozenset[str]]] = []
    for lineno, line in enumerate(text.split("\n"), start=1):
        match = _PY_LINE_RE.search(line)
        if match:
            line_rules.append((lineno, _split_rules(match.group(1))))
    return Suppressions(frozenset(), tuple(line_rules), reach=1)


def is_suppressed(diag: Diagnostic, suppressions: Suppressions | None) -> bool:
    if suppressions is None:
        return False
    return suppressions.suppresses(diag.rule_id, diag.span.line)
