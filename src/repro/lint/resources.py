"""Resource-lifecycle analysis: leaks, double-closes, use-after-close.

A flow-sensitive, per-function pass over local resource bindings —
sockets, files, process pools, temp dirs, subprocesses.  The tracked
shape is ``name = factory(...)`` where ``factory`` is a known
resource constructor; ``self.attr`` resources are object lifetime, not
function lifetime, and stay out of scope (a documented false-negative
shape — see DESIGN §9).

Three rules:

* ``resource-lifecycle-unguarded`` (WARNING, fixable) — the acquisition
  is not dominated by a release: not a ``with`` target, no enclosing or
  immediately-following ``try``/``finally`` that closes it, and the
  value never escapes the function (return / yield / attribute-store /
  container-store / aliasing all transfer ownership and suppress the
  finding).  When the resource is trivially local — single-line
  acquisition, only simple single-line statements up to a same-block
  ``name.close()`` that is its last use — the finding carries a
  machine-applicable wrap-in-``with`` fix.
* ``resource-lifecycle-double-close`` (ERROR) — a second release on a
  path where the resource is already closed on *every* branch (a must-
  analysis: branch outcomes intersect, loop bodies may run zero times
  and are ignored, ``finally`` blocks always run).  Finalizer calls
  that are legal after close (``join``, ``wait``, ``communicate``,
  ``poll``) do not count as releases.
* ``resource-lifecycle-use-after-close`` (ERROR) — any other use of the
  name once it is must-closed, except the sanctioned post-close
  finalizers and status attributes (``closed``, ``returncode``, ``pid``).

The lattice per name is {untracked, open, closed}: assignment rebinds to
untracked, acquisition moves to open, a release moves to closed, and the
merge of open/closed across branches is open (closing on one branch only
is not a must-close).  Straight-line paths are exact; branching is
conservative in the direction of silence, so every report is real under
the binding assumptions.
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import Diagnostic, Severity, make, rule
from repro.lint.fixes import Edit, Fix

__all__ = ["run_file"]

rule("resource-lifecycle-unguarded", "code", Severity.WARNING,
     "resources are released via with, try/finally, or ownership escape")
rule("resource-lifecycle-double-close", "code", Severity.ERROR,
     "a resource is released at most once on every path")
rule("resource-lifecycle-use-after-close", "code", Severity.ERROR,
     "no use of a resource after it is released")

#: factory trailing-name -> resource kind.
_FACTORIES = {
    "open": "file",
    "NamedTemporaryFile": "file",
    "TemporaryFile": "file",
    "SpooledTemporaryFile": "file",
    "socket": "socket",
    "create_server": "socket",
    "create_connection": "socket",
    "HTTPConnection": "connection",
    "HTTPSConnection": "connection",
    "TemporaryDirectory": "tempdir",
    "mkdtemp": "temppath",
    "Pool": "pool",
    "Popen": "process",
}

#: kind -> method names that release the resource.
_CLOSERS = {
    "file": frozenset({"close"}),
    "socket": frozenset({"close"}),
    "connection": frozenset({"close"}),
    "tempdir": frozenset({"cleanup"}),
    "temppath": frozenset(),             # released via shutil.rmtree(name)
    "pool": frozenset({"close", "terminate"}),
    "process": frozenset({"terminate", "kill"}),
}

#: Method calls that are legal on an already-released resource.
_AFTER_CLOSE_CALLS = frozenset({"join", "wait", "communicate", "poll"})
#: Attribute reads that are legal on an already-released resource.
_AFTER_CLOSE_ATTRS = frozenset({"closed", "returncode", "pid"})

_WITH_WRAPPABLE = frozenset({"file", "socket", "connection"})


def _factory_kind(value: ast.AST) -> str | None:
    """Resource kind when ``value`` calls a tracked factory."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    kind = _FACTORIES.get(name)
    if kind == "socket" and name == "socket":
        # Only ``socket.socket(...)`` / ``sock_mod.socket(...)`` — a bare
        # ``socket(...)`` name call is too ambiguous to track.
        if not isinstance(func, ast.Attribute):
            return None
    return kind


def _release_target(node: ast.Call, kinds: dict[str, str]) -> str | None:
    """Tracked name released by this call, or None."""
    func = node.func
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
            and func.value.id in kinds
            and func.attr in _CLOSERS[kinds[func.value.id]]):
        return func.value.id
    # shutil.rmtree(path) releases an mkdtemp path.
    if (isinstance(func, ast.Attribute) and func.attr == "rmtree"
            and node.args and isinstance(node.args[0], ast.Name)
            and kinds.get(node.args[0].id) == "temppath"):
        return node.args[0].id
    return None


def _escaped_names(body: list[ast.stmt]) -> frozenset[str]:
    """Names whose ownership may leave the function."""
    out: set[str] = set()

    def names_of(value: ast.AST | None) -> list[str]:
        if isinstance(value, ast.Name):
            return [value.id]
        if isinstance(value, (ast.Tuple, ast.List)):
            return [e.id for e in value.elts if isinstance(e, ast.Name)]
        return []

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Return):
                out.update(names_of(node.value))
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                out.update(names_of(node.value))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        out.update(names_of(node.value))
                    elif isinstance(target, ast.Name):
                        # Aliasing: the copy may outlive this flow.
                        for name in names_of(node.value):
                            if name != target.id:
                                out.add(name)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in ("append", "add", "put",
                                         "setdefault")):
                for arg in node.args:
                    out.update(names_of(arg))
    return frozenset(out)


def _closes_name(stmts: list[ast.stmt], name: str,
                 kinds: dict[str, str]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and _release_target(node, kinds) == name):
                return True
    return False


# -- unguarded-acquisition walk ----------------------------------------------


class _Acquisition:
    def __init__(self, stmt: ast.Assign, name: str, kind: str,
                 block: list[ast.stmt], index: int):
        self.stmt = stmt
        self.name = name
        self.kind = kind
        self.block = block
        self.index = index


def _collect_acquisitions(
    body: list[ast.stmt], kinds: dict[str, str],
) -> tuple[list[_Acquisition], list[_Acquisition]]:
    """(unguarded, all) acquisitions in one function body."""
    unguarded: list[_Acquisition] = []
    acquired: list[_Acquisition] = []

    def walk(block: list[ast.stmt], finallies: list[list[ast.stmt]]) -> None:
        for index, stmt in enumerate(block):
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                kind = _factory_kind(stmt.value)
                if kind is not None:
                    name = stmt.targets[0].id
                    acq = _Acquisition(stmt, name, kind, block, index)
                    acquired.append(acq)
                    guarded = any(
                        _closes_name(final, name, kinds)
                        for final in finallies
                    ) or any(
                        isinstance(later, ast.Try)
                        and _closes_name(later.finalbody, name, kinds)
                        for later in block[index + 1:]
                    )
                    if not guarded:
                        unguarded.append(acq)
            if isinstance(stmt, ast.Try):
                inner = finallies + ([stmt.finalbody] if stmt.finalbody
                                     else [])
                walk(stmt.body, inner)
                for handler in stmt.handlers:
                    walk(handler.body, inner)
                walk(stmt.orelse, inner)
                walk(stmt.finalbody, finallies)
            elif isinstance(stmt, (ast.If,)):
                walk(stmt.body, finallies)
                walk(stmt.orelse, finallies)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                walk(stmt.body, finallies)
                walk(stmt.orelse, finallies)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                walk(stmt.body, finallies)
    walk(body, [])
    return unguarded, acquired


# -- wrap-in-with fix ---------------------------------------------------------


def _wrap_fix(acq: _Acquisition, source_lines: list[str], file: str,
              message: str, kinds: dict[str, str]) -> Fix | None:
    """A wrap-in-``with`` fix when the resource is trivially local."""
    if acq.kind not in _WITH_WRAPPABLE:
        return None
    stmt = acq.stmt
    if stmt.lineno != stmt.end_lineno:
        return None
    line_text = source_lines[stmt.lineno - 1]
    if line_text.strip() != ast.get_source_segment(
            "\n".join(source_lines), stmt):
        return None                      # trailing comment or odd layout
    close_index: int | None = None
    for later_index in range(acq.index + 1, len(acq.block)):
        later = acq.block[later_index]
        if (isinstance(later, ast.Expr) and isinstance(later.value, ast.Call)
                and _release_target(later.value, kinds) == acq.name):
            close_index = later_index
            break
    if close_index is None:
        return None
    between = acq.block[acq.index + 1:close_index]
    for mid in between:
        if not isinstance(mid, (ast.Expr, ast.Assign, ast.AugAssign,
                                ast.AnnAssign, ast.Pass)):
            return None
        if mid.lineno != mid.end_lineno:
            return None
        if mid.col_offset != stmt.col_offset:
            return None
    close_stmt = acq.block[close_index]
    if close_stmt.lineno != close_stmt.end_lineno:
        return None
    # The close must be the resource's last use in the whole function.
    for later in acq.block[close_index + 1:]:
        for node in ast.walk(later):
            if isinstance(node, ast.Name) and node.id == acq.name:
                return None
    value_src = ast.get_source_segment("\n".join(source_lines), stmt.value)
    if value_src is None or "\n" in value_src:
        return None
    edits = [Edit(stmt.lineno, stmt.col_offset + 1,
                  stmt.lineno, len(line_text) + 1,
                  f"with {value_src} as {acq.name}:")]
    for mid_line in range(stmt.lineno + 1, close_stmt.lineno):
        if source_lines[mid_line - 1].strip():
            edits.append(Edit(mid_line, 1, mid_line, 1, "    "))
    edits.append(Edit(close_stmt.lineno, 1, close_stmt.lineno + 1, 1, ""))
    return Fix(
        rule_id="resource-lifecycle-unguarded",
        file=file,
        line=stmt.lineno,
        column=stmt.col_offset + 1,
        message=message,
        description=f"wrap {acq.name!r} in a with statement",
        edits=tuple(edits),
    )


# -- must-close analysis ------------------------------------------------------


_OPEN, _CLOSED = "open", "closed"


class _MustClose:
    """Straight-line must-analysis for double-close / use-after-close."""

    def __init__(self, file: str, kinds: dict[str, str]):
        self.file = file
        self.kinds = kinds
        self.findings: list[Diagnostic] = []
        self._seen: set[tuple] = set()

    def _note(self, rule_id: str, line: int, col: int, msg: str) -> None:
        key = (rule_id, line, col, msg)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(make(rule_id, self.file, line, col, msg))

    def scan_block(self, stmts: list[ast.stmt],
                   state: dict[str, str]) -> None:
        for stmt in stmts:
            self.scan_stmt(stmt, state)

    def scan_stmt(self, stmt: ast.stmt, state: dict[str, str]) -> None:
        if isinstance(stmt, ast.If):
            then_state = dict(state)
            self.scan_block(stmt.body, then_state)
            else_state = dict(state)
            self.scan_block(stmt.orelse, else_state)
            for name in set(then_state) | set(else_state):
                a = then_state.get(name)
                b = else_state.get(name)
                state[name] = _CLOSED if a == b == _CLOSED else _OPEN
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # The body may run zero times: analyze for findings on a
            # copy, keep the pre-loop state (conservative both ways).
            self.scan_block(stmt.body, dict(state))
            self.scan_block(stmt.orelse, dict(state))
            return
        if isinstance(stmt, ast.Try):
            self.scan_block(stmt.body, dict(state))
            for handler in stmt.handlers:
                self.scan_block(handler.body, dict(state))
            self.scan_block(stmt.orelse, dict(state))
            self.scan_block(stmt.finalbody, state)   # always runs
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.scan_block(stmt.body, state)        # runs exactly once
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return                                   # separate flow
        self._scan_simple(stmt, state)

    def _scan_simple(self, stmt: ast.stmt, state: dict[str, str]) -> None:
        sanctioned: set[int] = set()
        releases: list[tuple[str, int, int]] = []
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                target = _release_target(node, self.kinds)
                func = node.func
                if target is not None:
                    releases.append((target, node.lineno,
                                     node.col_offset + 1))
                    # The releasing statement's own mention of the name
                    # is the release, not a use: sanction whichever node
                    # names the target (``name.close()`` receiver or the
                    # ``shutil.rmtree(name)`` argument).
                    if isinstance(func, ast.Attribute):
                        sanctioned.add(id(func.value))
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id == target:
                            sanctioned.add(id(arg))
                elif (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id in self.kinds
                        and func.attr in _AFTER_CLOSE_CALLS):
                    sanctioned.add(id(func.value))
            elif (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in self.kinds
                    and node.attr in _AFTER_CLOSE_ATTRS):
                sanctioned.add(id(node.value))

        for name, line, col in releases:
            if state.get(name) == _CLOSED:
                self._note(
                    "resource-lifecycle-double-close", line, col,
                    f"{name} is released again here; it is already "
                    f"closed on every path reaching this statement")
            elif name in state:
                state[name] = _CLOSED

        for node in ast.walk(stmt):
            if (isinstance(node, ast.Name) and id(node) not in sanctioned
                    and isinstance(node.ctx, ast.Load)
                    and state.get(node.id) == _CLOSED):
                self._note(
                    "resource-lifecycle-use-after-close",
                    node.lineno, node.col_offset + 1,
                    f"{node.id} is used after it was closed; the handle "
                    f"is already released on every path reaching here")

        # Rebinding makes the name a fresh object (possibly a fresh
        # resource): reset, then re-track acquisitions.
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
                    if _factory_kind(stmt.value) is not None:
                        state[target.id] = _OPEN


def _function_kinds(body: list[ast.stmt]) -> dict[str, str]:
    """name -> resource kind for every tracked acquisition in ``body``."""
    kinds: dict[str, str] = {}
    for stmt in body:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                kind = _factory_kind(node.value)
                if kind is not None:
                    kinds[node.targets[0].id] = kind
    return kinds


def _analyze_function(
    file: str, node: ast.FunctionDef | ast.AsyncFunctionDef,
    source_lines: list[str],
) -> tuple[list[Diagnostic], list[Fix]]:
    kinds = _function_kinds(node.body)
    if not kinds:
        return [], []
    diags: list[Diagnostic] = []
    fixes: list[Fix] = []

    escaped = _escaped_names(node.body)
    unguarded, _all_acqs = _collect_acquisitions(node.body, kinds)
    for acq in unguarded:
        if acq.name in escaped:
            continue
        message = (f"{acq.name} acquires a {acq.kind} that no with block "
                   f"or try/finally releases; wrap it in a with statement "
                   f"or close it in a finally")
        diags.append(make(
            "resource-lifecycle-unguarded", file,
            acq.stmt.lineno, acq.stmt.col_offset + 1, message))
        fix = _wrap_fix(acq, source_lines, file, message, kinds)
        if fix is not None:
            fixes.append(fix)

    must = _MustClose(file, kinds)
    must.scan_block(node.body, {})
    diags.extend(must.findings)
    return diags, fixes


def run_file(file: str, tree: ast.Module,
             source: str) -> tuple[list[Diagnostic], list[Fix]]:
    """Run the resource-lifecycle rules over one parsed module."""
    diags: list[Diagnostic] = []
    fixes: list[Fix] = []
    source_lines = source.split("\n")
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            new_diags, new_fixes = _analyze_function(file, node,
                                                     source_lines)
            diags.extend(new_diags)
            fixes.extend(new_fixes)
    return diags, fixes
