"""Code-pass rules: concurrency hygiene for the serve layer.

An AST pass over ``src/repro/serve/`` (or any Python tree) that encodes
the locking conventions the serving code actually follows, so drift shows
up as a diagnostic instead of a race:

* ``serve-unlocked-write`` — a method of a lock-owning class assigns to
  an instance attribute outside any lock scope.
* ``serve-blocking-io-under-lock`` — a known blocking call (``open``,
  ``time.sleep``, ``Path.read_text`` …) happens lexically inside a held
  lock, stalling every other thread contending for it.
* ``serve-lock-order`` — the lock-acquisition graph has a deadlock
  shape: a non-reentrant lock nested inside itself, a held-before cycle
  between two locks, or — at corpus scope, stitched across class
  boundaries via attribute bindings — a cycle spanning classes
  (see :mod:`repro.lint.lockgraph`).

Heuristics, deliberately conservative (convention-encoding, not proof):

* A class "owns locks" when ``__init__`` assigns
  ``self.X = threading.Lock()`` / ``RLock()`` / ``Condition()``, or a
  dataclass class body declares
  ``X: ... = field(default_factory=threading.Lock)``.  A ``Condition``
  is a lock plus a wait queue, so ``with self._cond:`` scopes count
  exactly like ``with self._lock:``.
* A lock scope is ``with self.<lock-attr>:`` or a ``with
  self.<anything>_locked():`` context-manager call; methods whose *own*
  name ends in ``_locked`` are callee-side critical sections and exempt
  in full, as is ``__init__`` (no concurrent access before construction
  completes).
* A lexical ``self.X.acquire(...)`` earlier in the function covers later
  writes (the manual acquire/release idiom).

Classes without locks are exempt: single-threaded by design is a choice,
not a bug.
"""

from __future__ import annotations

import ast
import gc
import threading
from pathlib import Path

from repro.lint import forksafety, lockgraph, resources
from repro.lint.diagnostics import Diagnostic, Severity, make, rule
from repro.lint.fixes import Fix

__all__ = ["analyze_source", "analyze_source_full", "analyze_tree",
           "run_code"]

rule("serve-unlocked-write", "code", Severity.WARNING,
     "instance attributes of lock-owning classes are written under a lock")
rule("serve-blocking-io-under-lock", "code", Severity.WARNING,
     "no blocking I/O while holding a lock")

#: Bare-name calls treated as blocking.
_BLOCKING_NAMES = frozenset({"open", "input"})

#: Attribute-call names treated as blocking (``x.sleep(...)`` etc.).
_BLOCKING_ATTRS = frozenset({
    "sleep", "read_text", "write_text", "read_bytes", "write_bytes",
    "urlopen", "urlretrieve", "getaddrinfo", "gethostbyname",
})

def _self_attr(node: ast.AST) -> str | None:
    """Return ``attr`` when ``node`` is ``self.attr``, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _lock_attr_kinds(cls: ast.ClassDef) -> dict[str, str]:
    """Instance lock attributes, attr -> kind (``lockgraph._LOCK_KINDS``)."""
    return lockgraph.lock_attr_kinds(cls)


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Names of instance attributes holding locks."""
    return set(_lock_attr_kinds(cls))


def _is_lock_context(item: ast.withitem, locks: set[str]) -> bool:
    """``with self.<lock>:`` or ``with self.<name>_locked():``."""
    expr = item.context_expr
    attr = _self_attr(expr)
    if attr is not None and attr in locks:
        return True
    if isinstance(expr, ast.Call):
        attr = _self_attr(expr.func)
        if attr is not None and (attr in locks or attr.endswith("_locked")):
            return True
    return False


def _blocking_call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_ATTRS:
        return func.attr
    return None


class _MethodVisitor(ast.NodeVisitor):
    """One pass over a method body tracking lexical lock depth."""

    def __init__(self, file: str, cls: str, method: str, locks: set[str]):
        self.file = file
        self.cls = cls
        self.method = method
        self.locks = locks
        self.lock_depth = 0
        self.acquired_at: int | None = None   # lineno of first .acquire()
        self.diagnostics: list[Diagnostic] = []

    # -- lock scopes --------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        held = any(_is_lock_context(item, self.locks) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if held:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if held:
            self.lock_depth -= 1

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested function body runs later, possibly on another thread;
        # do not carry the enclosing lock scope into it.
        saved, self.lock_depth = self.lock_depth, 0
        self.generic_visit(node)
        self.lock_depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- findings -----------------------------------------------------------

    def _note_write(self, target: ast.AST, lineno: int, col: int) -> None:
        attr = _self_attr(target)
        if attr is None or attr in self.locks:
            return
        if self.lock_depth > 0:
            return
        if self.acquired_at is not None and lineno >= self.acquired_at:
            return
        self.diagnostics.append(make(
            "serve-unlocked-write", self.file, lineno, col + 1,
            f"{self.cls}.{self.method} writes self.{attr} outside a lock "
            f"scope (class owns {sorted(self.locks)})"))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_write(target, node.lineno, node.col_offset)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_write(node.target, node.lineno, node.col_offset)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_write(node.target, node.lineno, node.col_offset)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            owner = _self_attr(func.value)
            if owner is not None and owner in self.locks:
                if self.acquired_at is None:
                    self.acquired_at = node.lineno
        blocking = _blocking_call_name(node)
        if blocking is not None and self.lock_depth > 0:
            self.diagnostics.append(make(
                "serve-blocking-io-under-lock", self.file,
                node.lineno, node.col_offset + 1,
                f"{self.cls}.{self.method} calls blocking {blocking}() "
                f"while holding a lock"))
        self.generic_visit(node)


class _GcPause:
    """Counting guard: cyclic GC stays paused while any parse is in flight.

    Unlike a plain lock around the parse, the guard does not serialize
    parsers — any number of threads parse concurrently; only the
    first-in disables collection and only the last-out restores it, so
    overlapping holders can never re-enable GC under each other.
    Reentrant within a thread (it is just a counter).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._depth = 0
        self._was_enabled = False

    def __enter__(self) -> "_GcPause":
        with self._lock:
            if self._depth == 0:
                self._was_enabled = gc.isenabled()
                if self._was_enabled:
                    gc.disable()
            self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        with self._lock:
            self._depth -= 1
            if self._depth == 0 and self._was_enabled:
                gc.enable()

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth


_PARSE_GUARD = _GcPause()


def _parse(source: str) -> ast.Module:
    """``ast.parse`` with the cyclic GC paused for the duration.

    On CPython 3.11, a garbage collection that fires while the parser is
    converting the C AST to Python objects — easy to hit once anything
    (e.g. hypothesis) has registered Python-level ``gc.callbacks`` — dies
    with ``SystemError: AST constructor recursion depth mismatch``.  It is
    not a real syntax problem: pausing collection around the parse
    (reference counting still runs) avoids it entirely.  The counting
    guard lets the engine fan parses over a thread pool (GC is off while
    *any* parse runs, restored when the last finishes); a fresh-thread
    retry backstops anything that still slips through.
    """
    with _PARSE_GUARD:
        try:
            return ast.parse(source)
        except (RecursionError, SystemError):
            result: list = []

            def worker() -> None:
                try:
                    result.append(ast.parse(source))
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    result.append(exc)

            thread = threading.Thread(target=worker, name="lint-ast-retry")
            thread.start()
            thread.join()
            if result and isinstance(result[0], ast.Module):
                return result[0]
            raise


def analyze_source_full(
    file: str, source: str,
) -> tuple[list[Diagnostic], tuple[Fix, ...],
           tuple[lockgraph.ClassSummary, ...],
           forksafety.ModuleSummary | None]:
    """Run the per-file code rules; also distill corpus summaries.

    Returns ``(diagnostics, fixes, class summaries, module summary)``.
    The class summaries feed
    :func:`repro.lint.lockgraph.analyze_cross_class` and the module
    summary feeds :func:`repro.lint.forksafety.analyze_corpus` at corpus
    scope — both are cached alongside the diagnostics, so an incremental
    run re-summarizes only changed files.
    """
    try:
        tree = _parse(source)
    except SyntaxError as exc:
        return [make("serve-unlocked-write", file, exc.lineno or 1,
                     (exc.offset or 0) + 1,
                     f"file does not parse: {exc.msg}")], (), (), None
    out: list[Diagnostic] = []
    summaries: list[lockgraph.ClassSummary] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        kinds = _lock_attr_kinds(node)
        locks = set(kinds)
        if not locks:
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__" or stmt.name.endswith("_locked"):
                continue
            visitor = _MethodVisitor(file, node.name, stmt.name, locks)
            for inner in stmt.body:
                visitor.visit(inner)
            out.extend(visitor.diagnostics)
        out.extend(lockgraph.analyze_class(file, node, kinds))
        summaries.append(lockgraph.summarize_class(file, node, kinds))
    resource_diags, resource_fixes = resources.run_file(file, tree, source)
    out.extend(resource_diags)
    fork_summary = forksafety.summarize_module(file, tree)
    return out, tuple(resource_fixes), tuple(summaries), fork_summary


def analyze_source(file: str, source: str) -> list[Diagnostic]:
    """Run the per-file code rules over one Python source file."""
    return analyze_source_full(file, source)[0]


def analyze_tree(root: str | Path) -> list[Diagnostic]:
    """Run the code pass — per-file rules plus the cross-class lock and
    fork-safety corpus passes — over every ``*.py`` under ``root``."""
    out: list[Diagnostic] = []
    summaries: list[lockgraph.ClassSummary] = []
    fork_summaries: list[forksafety.ModuleSummary | None] = []
    for path in sorted(Path(root).rglob("*.py")):
        diags, _fixes, file_summaries, fork_summary = analyze_source_full(
            str(path), path.read_text(encoding="utf-8"))
        out.extend(diags)
        summaries.extend(file_summaries)
        fork_summaries.append(fork_summary)
    out.extend(lockgraph.analyze_cross_class(summaries))
    out.extend(forksafety.analyze_corpus(fork_summaries))
    return out


def run_code(root: str | Path) -> list[Diagnostic]:
    """Alias matching the other passes' ``run_*`` naming."""
    return analyze_tree(root)
