"""Internal link and anchor checking — the one implementation.

Extracts every *internal* reference (site-absolute ``/path/``, bare
``#fragment``, or scheme-less relative target) from activity Markdown and
validates it against the set of URLs the site actually renders plus the
heading anchors of the target page.  External http(s)/mailto links are
someone else's problem: :mod:`repro.sitegen.linkcheck` keeps the
injectable fetch path for those and delegates internal checks here, so
the two can never disagree about what a valid internal link is.

Line positions: the Markdown AST carries no source offsets, so each
extracted reference is located by scanning the body text for its raw
``](target)`` occurrence, left to right, so repeated targets resolve to
successive lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SiteError
from repro.sitegen import markdown
from repro.sitegen.taxonomy import DEFAULT_TAXONOMIES, slugify


def _safe_slug(text: str) -> str:
    """`slugify` that degrades instead of raising on unsluggable input."""
    try:
        return slugify(text)
    except SiteError:
        return ""

__all__ = [
    "InternalRef",
    "extract_internal_refs",
    "heading_anchors",
    "site_urls",
    "check_internal_refs",
]

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://", "tel:")


@dataclass(frozen=True)
class InternalRef:
    """One internal reference found in a page body."""

    target: str                          # raw link target as written
    path: str                            # URL part ("" for bare #fragment)
    fragment: str                        # anchor part without '#'
    line: int                            # 1-based source line
    column: int                          # 1-based source column


def _is_internal(target: str) -> bool:
    if not target:
        return False
    lowered = target.lower()
    return not any(lowered.startswith(scheme) for scheme in _EXTERNAL_SCHEMES)


def _link_targets(body: str) -> list[str]:
    """Every link/image target in document order (AST walk)."""
    targets: list[str] = []

    def walk_inlines(inlines: list[markdown.Inline]) -> None:
        for node in inlines:
            if isinstance(node, markdown.Link):
                targets.append(node.url)
                walk_inlines(node.children)
            elif isinstance(node, markdown.Image):
                targets.append(node.url)
            elif isinstance(node, (markdown.Emphasis, markdown.Strong)):
                walk_inlines(node.children)

    def walk_blocks(blocks: list[markdown.Block]) -> None:
        for block in blocks:
            if isinstance(block, (markdown.Paragraph, markdown.Heading)):
                walk_inlines(block.children)
            elif isinstance(block, (markdown.BlockQuote, markdown.ListItem)):
                walk_blocks(block.children)
            elif isinstance(block, markdown.ListBlock):
                walk_blocks(list(block.items))
            elif isinstance(block, markdown.Table):
                for cell in block.header:
                    walk_inlines(cell)
                for row in block.rows:
                    for cell in row:
                        walk_inlines(cell)

    walk_blocks(markdown.parse(body).children)
    return targets


def extract_internal_refs(body: str, line_offset: int = 0) -> list[InternalRef]:
    """All internal references in ``body``, with source positions.

    ``line_offset`` is added to every reported line, so callers passing a
    body extracted from below a front-matter header (see
    :func:`repro.sitegen.frontmatter.split_document_with_lines`) get
    document-absolute lines.
    """
    refs: list[InternalRef] = []
    lines = body.split("\n")
    # (line index, char index) scan cursor so duplicate targets resolve to
    # successive occurrences.
    cursor: dict[str, tuple[int, int]] = {}

    def locate(target: str) -> tuple[int, int]:
        needle = f"({target})"
        start_line, start_col = cursor.get(target, (0, 0))
        for idx in range(start_line, len(lines)):
            begin = start_col if idx == start_line else 0
            pos = lines[idx].find(needle, begin)
            if pos == -1:
                pos = lines[idx].find(target, begin)
            if pos != -1:
                cursor[target] = (idx, pos + 1)
                return idx + 1, pos + 2 if lines[idx][pos] == "(" else pos + 1
        return 1, 1

    for target in _link_targets(body):
        if not _is_internal(target):
            continue
        path, _, fragment = target.partition("#")
        line, column = locate(target)
        refs.append(InternalRef(target=target, path=path, fragment=fragment,
                                line=line + line_offset, column=column))
    return refs


def heading_anchors(body: str) -> frozenset[str]:
    """Slugs of every heading in ``body`` (the linkable ``#fragment`` set)."""
    anchors: set[str] = set()
    for block in markdown.parse(body).children:
        if isinstance(block, markdown.Heading):
            text = "".join(c.to_text() for c in block.children)
            if text.strip():
                slug = _safe_slug(text)
                if slug:
                    anchors.add(slug)
    return anchors


def site_urls(docs: Iterable) -> frozenset[str]:
    """Every URL the site renders for this corpus.

    ``docs`` is an iterable of objects exposing ``url`` and
    ``terms_for(taxonomy)`` (the lint :class:`~repro.lint.document.DocumentInfo`
    shape).  Mirrors :meth:`repro.sitegen.site.Site.render_plan`: the home
    page, one page per activity, a listing per taxonomy, a page per used
    term, and the four browsing views.
    """
    urls: set[str] = {"/"}
    for view in ("cs2013", "tcpp", "courses", "accessibility"):
        urls.add(f"/views/{view}/")
    for config in DEFAULT_TAXONOMIES:
        urls.add(f"/{_safe_slug(config.name)}/")
    for doc in docs:
        urls.add(doc.url)
        for config in DEFAULT_TAXONOMIES:
            for term in doc.terms_for(config.name):
                term_slug = _safe_slug(str(term))
                if term_slug:
                    urls.add(f"/{_safe_slug(config.name)}/{term_slug}/")
    return frozenset(urls)


def check_internal_refs(
    docs: Iterable,
) -> list[tuple[object, InternalRef, str]]:
    """Validate every internal reference across a corpus.

    Returns ``(doc, ref, problem)`` triples; an empty list means every
    internal link resolves.  This is the single implementation both the
    lint rule and :meth:`repro.sitegen.linkcheck.LinkAuditor.audit_internal`
    report from.
    """
    docs = list(docs)
    urls = site_urls(docs)
    anchors_by_url: Mapping[str, frozenset[str]] = {
        doc.url: doc.anchors for doc in docs
    }
    problems: list[tuple[object, InternalRef, str]] = []
    for doc in docs:
        for ref in doc.internal_refs:
            if ref.path:
                if not ref.path.startswith("/"):
                    problems.append((doc, ref,
                                     f"relative link target {ref.target!r} "
                                     f"(use a site-absolute path)"))
                    continue
                normalized = ref.path if ref.path.endswith("/") \
                    else ref.path + "/"
                if normalized not in urls:
                    problems.append((doc, ref,
                                     f"broken internal link {ref.path!r}: "
                                     f"no such page"))
                    continue
                if ref.fragment:
                    page_anchors = anchors_by_url.get(normalized)
                    if (page_anchors is not None
                            and _safe_slug(ref.fragment) not in page_anchors):
                        problems.append((doc, ref,
                                         f"broken anchor #{ref.fragment} "
                                         f"on {normalized!r}"))
            elif ref.fragment:
                if _safe_slug(ref.fragment) not in doc.anchors:
                    problems.append((doc, ref,
                                     f"broken anchor #{ref.fragment}: no such "
                                     f"heading in this page"))
    return problems
