"""Per-file parsing for the content pass.

:func:`load_document` parses one activity source file exactly once per
lint run and packages everything the rules need: the parsed
:class:`~repro.activities.schema.Activity` (or the parse failure), the
raw text and per-key source spans, plus the distilled
:class:`DocumentInfo` that corpus-scope rules (duplicate slugs/titles,
internal links) consume without re-reading the file.  ``DocumentInfo`` is
what the engine caches alongside the per-file diagnostics, so an
incremental re-lint still runs corpus rules over the *whole* corpus while
re-parsing only the changed file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.activities.schema import Activity
from repro.errors import ReproError
from repro.lint.diagnostics import Suppressions, markdown_suppressions
from repro.lint.links import InternalRef, extract_internal_refs, heading_anchors
from repro.sitegen import frontmatter
from repro.sitegen.taxonomy import slugify

__all__ = ["DocumentInfo", "ParsedDocument", "load_document"]

_TAXONOMY_KEYS = ("cs2013", "tcpp", "courses", "senses",
                  "cs2013details", "tcppdetails", "medium")


@dataclass(frozen=True)
class DocumentInfo:
    """What corpus-scope rules need to know about one document."""

    file: str                            # path as given to the engine
    name: str                            # slug stem
    slug: str                            # slugify(name) — collision domain
    title: str
    title_line: int
    url: str                             # /activities/<name>/
    anchors: frozenset[str]              # heading slugs linkable as #fragment
    internal_refs: tuple[InternalRef, ...]
    terms: tuple[tuple[str, tuple[str, ...]], ...]   # taxonomy -> terms
    parse_failed: bool = False

    def terms_for(self, taxonomy: str) -> tuple[str, ...]:
        for axis, values in self.terms:
            if axis == taxonomy:
                return values
        return ()


@dataclass
class ParsedDocument:
    """Everything the per-file content rules see for one source file."""

    file: str
    name: str
    text: str
    activity: Activity | None = None
    params: dict = field(default_factory=dict)
    key_spans: dict = field(default_factory=dict)
    parse_error: str | None = None
    parse_error_line: int = 0
    body_offset: int = 0
    info: DocumentInfo | None = None
    suppressions: Suppressions | None = None

    def key_line(self, key: str, default: int = 1) -> int:
        span = self.key_spans.get(key)
        return span.line if span is not None else default

    def key_column(self, key: str, default: int = 1) -> int:
        span = self.key_spans.get(key)
        return span.column if span is not None else default

    def item_line(self, key: str, index: int) -> int:
        """Source line of the ``index``-th list item under ``key``."""
        span = self.key_spans.get(key)
        if span is not None and index < len(span.item_lines):
            return span.item_lines[index]
        return self.key_line(key)


def load_document(file: str | Path, text: str | None = None) -> ParsedDocument:
    """Parse one activity source file for linting (never raises)."""
    path = Path(file)
    if text is None:
        text = path.read_text(encoding="utf-8")
    name = path.stem
    doc = ParsedDocument(file=str(file), name=name, text=text,
                         suppressions=markdown_suppressions(text))

    from repro.activities.parser import parse_activity

    body = ""
    try:
        block, body, block_offset, body_offset = (
            frontmatter.split_document_with_lines(text)
        )
        doc.body_offset = body_offset
        if block is not None:
            doc.params, doc.key_spans = frontmatter.parse_with_spans(
                block, line_offset=block_offset
            )
        activity = parse_activity(name, text)
        doc.activity = activity
    except ReproError as exc:
        doc.parse_error = str(exc)
        doc.parse_error_line = getattr(exc, "line", None) or 0

    title = doc.activity.title if doc.activity else str(
        doc.params.get("title", ""))
    doc.info = DocumentInfo(
        file=doc.file,
        name=name,
        slug=slugify(name),
        title=title,
        title_line=doc.key_line("title"),
        url=f"/activities/{name}/",
        anchors=heading_anchors(body),
        internal_refs=tuple(
            extract_internal_refs(body, line_offset=doc.body_offset)
        ),
        terms=tuple(
            (key, tuple(getattr(doc.activity, key)) if doc.activity
             else tuple(_as_terms(doc.params.get(key))))
            for key in _TAXONOMY_KEYS
        ),
        parse_failed=doc.parse_error is not None,
    )
    return doc


def _as_terms(value: object) -> list[str]:
    if value is None:
        return []
    if isinstance(value, str):
        return [value] if value else []
    if isinstance(value, (list, tuple)):
        return [str(v) for v in value]
    return []
