"""The fixit framework: machine-applicable remediations for lint findings.

Mechanical rules emit :class:`Fix` objects — span-anchored text edits (or
a file rename) keyed to the exact diagnostic they remediate.  The applier
(:func:`apply_edits`, :func:`fix_engine`) resolves overlapping edits,
rewrites activity files, and re-lints to a fixed point, so one
``pdcunplugged lint --fix`` invocation converges: a second invocation
changes zero bytes.

Design rules:

* A fix's coordinates ``(file, line, column, rule_id, message)`` must
  equal its diagnostic's :func:`~repro.lint.diagnostics.sort_key`, so the
  engine can drop fixes whose findings were suppressed, disabled, or
  baselined, and reporters can attach SARIF ``fixes`` objects to results.
* Structural fixes (Fig. 1 section reordering) are whole-file
  replacements produced by :func:`repro.activities.writer.write_activity`
  over the *parsed* activity — the fix round-trips through the parser by
  construction.  Unknown front-matter keys are preserved verbatim.
* After editing, a file that parsed before must still parse; otherwise
  every edit to it is reverted and counted as skipped.
* Overlap resolution is greedy by source position: the earliest edit
  wins, later overlapping edits are deferred to the next fix iteration
  (the driver loops until no fix makes progress).

Fixable rules: ``taxonomy-noncanonical-term`` (canonical respelling via
``standards.normalize``), ``frontmatter-schema`` (malformed dates
coerced to ISO), ``citation-missing`` (missing dates derived from the
earliest citation year), ``section-structure`` (Fig. 1 reordering),
``internal-link`` (dead-anchor rewrites), and ``duplicate-slug``
(file renames).
"""

from __future__ import annotations

import difflib
import re
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping

from repro.activities.parser import parse_activity
from repro.activities.writer import write_activity
from repro.errors import ReproError, SiteError
from repro.lint import links
from repro.lint.diagnostics import Diagnostic, sort_key
from repro.lint.document import DocumentInfo, ParsedDocument
from repro.lint.rules_content import (
    _KNOWN_KEYS,
    _STANDARDS_AXES,
    _VOCAB_AXES,
    _iter_terms,
    _section_line,
    bare_urls,
    heading_jumps,
    todo_markers,
)
from repro.sitegen.taxonomy import slugify
from repro.standards import normalize

__all__ = [
    "Edit",
    "Fix",
    "FixReport",
    "CheckReport",
    "FIXABLE_RULES",
    "fixes_for_document",
    "fixes_for_corpus",
    "apply_edits",
    "fix_engine",
    "check_fixes",
    "render_check_report",
]

#: Rules with at least one mechanical remediation.
FIXABLE_RULES = frozenset({
    "taxonomy-noncanonical-term",
    "frontmatter-schema",
    "citation-missing",
    "section-structure",
    "internal-link",
    "duplicate-slug",
    "prose-heading-jump",
    "prose-bare-url",
    "prose-todo-marker",
    "resource-lifecycle-unguarded",
})

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_YEAR_RE = re.compile(r"\b(1[89]\d{2}|20\d{2})\b")

_MONTHS = {
    name[:3]: index
    for index, name in enumerate(
        ("january", "february", "march", "april", "may", "june", "july",
         "august", "september", "october", "november", "december"),
        start=1,
    )
}


@dataclass(frozen=True)
class Edit:
    """One span-anchored text replacement (1-based, end-exclusive columns).

    ``start == end`` is a pure insertion.  Whole-file rewrites span the
    entire document (see :func:`whole_file_edit`).
    """

    start_line: int
    start_column: int
    end_line: int
    end_column: int
    replacement: str


@dataclass(frozen=True)
class Fix:
    """A machine-applicable remediation for exactly one diagnostic.

    ``(file, line, column, rule_id, message)`` mirror the diagnostic's
    identity so the two can be joined without carrying a severity (which
    report-time overrides may rewrite).
    """

    rule_id: str
    file: str
    line: int
    column: int
    message: str
    description: str
    edits: tuple[Edit, ...] = ()
    rename_to: str | None = None         # new file stem (duplicate-slug)

    @property
    def key(self) -> tuple:
        """Join key; equals ``sort_key`` of the matching diagnostic."""
        return (self.file, self.line, self.column, self.rule_id, self.message)

    def matches(self, diag: Diagnostic) -> bool:
        return self.key == sort_key(diag)

    def to_dict(self) -> dict:
        payload: dict = {
            "rule": self.rule_id,
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "description": self.description,
            "edits": [
                {
                    "start_line": e.start_line,
                    "start_column": e.start_column,
                    "end_line": e.end_line,
                    "end_column": e.end_column,
                    "replacement": e.replacement,
                }
                for e in self.edits
            ],
        }
        if self.rename_to is not None:
            payload["rename_to"] = self.rename_to
        return payload


def whole_file_edit(text: str, replacement: str) -> Edit:
    """An edit replacing the entire document."""
    lines = text.split("\n")
    return Edit(1, 1, len(lines), len(lines[-1]) + 1, replacement)


# -- per-file fix generation -------------------------------------------------


def fixes_for_document(doc: ParsedDocument) -> list[Fix]:
    """Every per-file fix for one parsed activity document.

    Files that do not parse get no fixes: every per-file remediation is
    defined in terms of the parsed activity, and the post-apply round-trip
    check needs a parseable baseline.
    """
    if doc.activity is None:
        return []
    out: list[Fix] = []
    out.extend(_fix_noncanonical_terms(doc))
    out.extend(_fix_malformed_date(doc))
    out.extend(_fix_missing_date(doc))
    out.extend(_fix_section_order(doc))
    out.extend(_fix_heading_jumps(doc))
    out.extend(_fix_bare_urls(doc))
    out.extend(_fix_todo_markers(doc))
    return out


def _fix_noncanonical_terms(doc: ParsedDocument) -> list[Fix]:
    out: list[Fix] = []
    cursor: dict[int, int] = {}          # per-line scan position
    for axis, _idx, term, line, col in _iter_terms(
            doc, _VOCAB_AXES + _STANDARDS_AXES):
        canonical = normalize.canonical_term(axis, term)
        if canonical is None or canonical == term:
            continue
        edit = _term_edit(doc.text, line, term, canonical, cursor)
        if edit is None:
            continue
        out.append(Fix(
            "taxonomy-noncanonical-term", doc.file, line, col,
            f"non-canonical {axis} term {term!r} (use {canonical!r})",
            f"replace {term!r} with the canonical spelling {canonical!r}",
            edits=(edit,)))
    return out


def _term_edit(text: str, line: int, term: str, canonical: str,
               cursor: dict[int, int]) -> Edit | None:
    """Locate one written occurrence of ``term`` on ``line`` and respell it.

    Quoted occurrences are preferred (unambiguous); bare occurrences must
    sit on word boundaries so a term never matches inside a longer one.
    ``cursor`` advances past each consumed occurrence, so repeated terms
    on one inline-list line resolve left to right.
    """
    lines = text.split("\n")
    if not 1 <= line <= len(lines):
        return None
    raw = lines[line - 1]
    start = cursor.get(line, 0)
    for quote in ('"', "'"):
        needle = f"{quote}{term}{quote}"
        pos = raw.find(needle, start)
        if pos != -1:
            cursor[line] = pos + len(needle)
            return Edit(line, pos + 2, line, pos + 2 + len(term), canonical)
    pos = raw.find(term, start)
    while pos != -1:
        before = raw[pos - 1] if pos > 0 else " "
        end = pos + len(term)
        after = raw[end] if end < len(raw) else " "
        if not (before.isalnum() or before == "_") \
                and not (after.isalnum() or after == "_"):
            cursor[line] = end
            return Edit(line, pos + 1, line, end + 1, canonical)
        pos = raw.find(term, pos + 1)
    return None


def _coerce_iso_date(text: str) -> str | None:
    """Mechanically recognizable date spellings, coerced to YYYY-MM-DD."""
    t = text.strip()
    match = re.fullmatch(r"(\d{4})[-/.](\d{1,2})[-/.](\d{1,2})", t)
    if match:
        return _iso(match.group(1), match.group(2), match.group(3))
    match = re.fullmatch(r"(\d{1,2})[-/.](\d{1,2})[-/.](\d{4})", t)
    if match:                            # US-style month/day/year
        return _iso(match.group(3), match.group(1), match.group(2))
    match = re.fullmatch(r"([A-Za-z]+)\.?\s+(\d{1,2}),?\s+(\d{4})", t)
    if match:
        month = _MONTHS.get(match.group(1)[:3].lower())
        if month is not None:
            return _iso(match.group(3), str(month), match.group(2))
    if re.fullmatch(r"\d{4}", t):
        return f"{t}-01-01"
    return None


def _iso(year: str, month: str, day: str) -> str | None:
    y, m, d = int(year), int(month), int(day)
    if not (1 <= m <= 12 and 1 <= d <= 31):
        return None
    return f"{y:04d}-{m:02d}-{d:02d}"


def _fix_malformed_date(doc: ParsedDocument) -> list[Fix]:
    date = doc.params.get("date")
    if not isinstance(date, str) or not date or _DATE_RE.match(date):
        return []
    iso = _coerce_iso_date(date)
    if iso is None:
        return []
    line = doc.key_line("date")
    lines = doc.text.split("\n")
    if not 1 <= line <= len(lines):
        return []
    raw = lines[line - 1]
    edit = None
    for quote in ('"', "'"):
        needle = f"{quote}{date}{quote}"
        pos = raw.find(needle)
        if pos != -1:
            edit = Edit(line, pos + 2, line, pos + 2 + len(date), iso)
            break
    if edit is None:
        pos = raw.find(date)
        if pos == -1:
            return []
        edit = Edit(line, pos + 1, line, pos + 1 + len(date), iso)
    return [Fix(
        "frontmatter-schema", doc.file, line, doc.key_column("date"),
        f"date {date!r} is not ISO formatted (YYYY-MM-DD)",
        f"rewrite date {date!r} as {iso!r}",
        edits=(edit,))]


def _fix_missing_date(doc: ParsedDocument) -> list[Fix]:
    if str(doc.params.get("date", "")).strip():
        return []
    citations = doc.activity.sections.get("Citations", "") \
        if doc.activity else ""
    years = _YEAR_RE.findall(citations)
    if not years:
        return []                        # nothing mechanical to derive
    derived = f"{min(years)}-01-01"
    lines = doc.text.split("\n")
    if "date" in doc.params:             # present but empty: rewrite the line
        line = doc.key_line("date")
        if not 1 <= line <= len(lines):
            return []
        edit = Edit(line, 1, line, len(lines[line - 1]) + 1,
                    f'date: "{derived}"')
    else:                                # absent: insert below the title
        title_line = doc.key_line("title")
        if not 1 <= title_line <= len(lines):
            return []
        edit = Edit(title_line + 1, 1, title_line + 1, 1,
                    f'date: "{derived}"\n')
    return [Fix(
        "citation-missing", doc.file,
        doc.key_line("date", doc.key_line("title")), 1,
        "activity has no date",
        f"set date to {derived!r} (earliest citation year)",
        edits=(edit,))]


def _fix_section_order(doc: ParsedDocument) -> list[Fix]:
    from repro.activities import schema

    activity = doc.activity
    known = set(schema.SECTION_ORDER)
    order = [s for s in activity.sections if s in known]
    expected = [s for s in schema.SECTION_ORDER if s in activity.sections]
    if order == expected:
        return []
    first_misplaced = next(
        (got for got, want in zip(order, expected) if got != want),
        order[0] if order else "")
    extras = {key: value for key, value in doc.params.items()
              if key not in _KNOWN_KEYS}
    canonical = write_activity(activity, extra_params=extras)
    return [Fix(
        "section-structure", doc.file,
        _section_line(doc, first_misplaced), 1,
        f"sections out of order: expected {expected}",
        "rewrite the file in canonical Fig. 1 section order",
        edits=(whole_file_edit(doc.text, canonical),))]


def _fix_heading_jumps(doc: ParsedDocument) -> list[Fix]:
    out: list[Fix] = []
    for line, prev, depth in heading_jumps(doc):
        want = prev + 1
        out.append(Fix(
            "prose-heading-jump", doc.file, line, 1,
            f"heading depth jumps from {prev} to {depth} "
            f"(use depth {want})",
            f"demote the heading to depth {want}",
            edits=(Edit(line, 1, line, depth + 1, "#" * want),)))
    return out


def _fix_bare_urls(doc: ParsedDocument) -> list[Fix]:
    out: list[Fix] = []
    for line, column, url in bare_urls(doc):
        out.append(Fix(
            "prose-bare-url", doc.file, line, column,
            f"bare URL {url} (wrap it as <{url}> or cite it as a link)",
            "wrap the bare URL in an autolink",
            edits=(Edit(line, column, line, column + len(url), f"<{url}>"),)))
    return out


def _fix_todo_markers(doc: ParsedDocument) -> list[Fix]:
    out: list[Fix] = []
    lines = doc.text.split("\n")
    for line, column, marker in todo_markers(doc):
        raw = lines[line - 1]
        end = column - 1 + len(marker)
        end += re.match(r":?\s*", raw[end:]).end()
        out.append(Fix(
            "prose-todo-marker", doc.file, line, column,
            f"{marker} marker left in activity text",
            f"remove the {marker} marker",
            edits=(Edit(line, column, line, end + 1, ""),)))
    return out


# -- corpus-scope fix generation ---------------------------------------------


def fixes_for_corpus(docs: list[DocumentInfo]) -> list[Fix]:
    """Fixes whose verdicts depend on the whole corpus."""
    return _fix_dead_anchors(docs) + _fix_duplicate_slugs(docs)


def _letters(text: str) -> str:
    return re.sub(r"[^a-z0-9]", "", text.lower())


def _fix_dead_anchors(docs: list[DocumentInfo]) -> list[Fix]:
    """Rewrite a broken ``#fragment`` when exactly one real anchor matches.

    "Matches" means the letters-and-digits skeleton is identical — the
    author wrote ``#Set_Up`` or ``#set--up`` for the heading anchored as
    ``set-up``.  Anything looser is a judgment call, not a mechanical fix.
    """
    anchors_by_url = {doc.url: doc.anchors for doc in docs}
    out: list[Fix] = []
    for doc, ref, problem in links.check_internal_refs(docs):
        if "broken anchor" not in problem or not ref.fragment:
            continue
        if ref.path:
            normalized = ref.path if ref.path.endswith("/") else ref.path + "/"
            anchors = anchors_by_url.get(normalized)
        else:
            anchors = doc.anchors
        if not anchors:
            continue
        want = _letters(ref.fragment)
        candidates = sorted(a for a in anchors if _letters(a) == want)
        if len(candidates) != 1:
            continue
        fragment_col = ref.column + len(ref.path) + 1
        out.append(Fix(
            "internal-link", doc.file, ref.line, ref.column, problem,
            f"rewrite anchor #{ref.fragment} as #{candidates[0]}",
            edits=(Edit(ref.line, fragment_col, ref.line,
                        fragment_col + len(ref.fragment), candidates[0]),)))
    return out


def _safe_slug(text: str) -> str:
    try:
        return slugify(text)
    except SiteError:
        return text


def _fix_duplicate_slugs(docs: list[DocumentInfo]) -> list[Fix]:
    by_slug: dict[str, list[DocumentInfo]] = {}
    for doc in docs:
        by_slug.setdefault(doc.slug, []).append(doc)
    taken = {doc.slug for doc in docs}
    out: list[Fix] = []
    for slug, group in sorted(by_slug.items()):
        if len(group) < 2:
            continue
        names = sorted(d.name for d in group)
        for doc in group[1:]:
            suffix = 2
            while _safe_slug(f"{doc.name}-{suffix}") in taken:
                suffix += 1
            new_name = f"{doc.name}-{suffix}"
            taken.add(_safe_slug(new_name))
            out.append(Fix(
                "duplicate-slug", doc.file, doc.title_line, 1,
                f"slug {slug!r} is shared by activities {names} "
                f"(URLs collide)",
                f"rename {Path(doc.file).name} to {new_name}.md",
                rename_to=new_name))
    return out


# -- applying ----------------------------------------------------------------


def apply_edits(text: str, edits: Iterable[Edit],
                ) -> tuple[str, set[Edit], set[Edit]]:
    """Apply non-overlapping edits to ``text``.

    Returns ``(new_text, applied, skipped)``.  Edits are deduplicated,
    ordered by source position, and applied greedily: an edit overlapping
    an already-accepted span is skipped (the caller re-generates fixes and
    retries on the rewritten text).
    """
    line_starts = [0]
    for line in text.split("\n")[:-1]:
        line_starts.append(line_starts[-1] + len(line) + 1)

    def offset(line: int, column: int) -> int:
        index = min(max(line, 1), len(line_starts)) - 1
        return min(line_starts[index] + max(column, 1) - 1, len(text))

    ordered = sorted(set(edits), key=lambda e: (
        offset(e.start_line, e.start_column),
        offset(e.end_line, e.end_column), e.replacement))
    applied: set[Edit] = set()
    skipped: set[Edit] = set()
    pieces: list[str] = []
    consumed = 0
    for edit in ordered:
        start = offset(edit.start_line, edit.start_column)
        end = offset(edit.end_line, edit.end_column)
        if end < start or start < consumed \
                or (start == consumed and pieces and start == end
                    and pieces[-1] == ""):
            skipped.add(edit)
            continue
        pieces.append(text[consumed:start])
        pieces.append(edit.replacement)
        consumed = end
        applied.add(edit)
    pieces.append(text[consumed:])
    return "".join(pieces), applied, skipped


@dataclass
class FixReport:
    """What one ``--fix`` run did."""

    applied: int = 0
    skipped: int = 0
    iterations: int = 0
    changed_files: list[str] = field(default_factory=list)
    renamed: list[tuple[str, str]] = field(default_factory=list)
    remaining: object = None             # final LintResult

    def note_changed(self, file: str) -> None:
        if file not in self.changed_files:
            self.changed_files.append(file)


def _roundtrip_ok(path: Path, before: str, after: str) -> bool:
    """A file that parsed before the edits must still parse after.

    Python sources round-trip through ``ast.parse`` (code-pass fixes),
    everything else through the activity parser.  A file that did not
    parse before carries no proof obligation.
    """
    if path.suffix == ".py":
        import ast

        try:
            ast.parse(before)
        except SyntaxError:
            return True
        try:
            ast.parse(after)
        except SyntaxError:
            return False
        return True
    try:
        parse_activity(path.stem, before)
    except ReproError:
        return True
    try:
        parse_activity(path.stem, after)
    except ReproError:
        return False
    return True


def _apply_file_fixes(path: Path, fixes: list[Fix],
                      report: FixReport) -> bool:
    """Apply every span edit for one file; returns True when it changed.

    Reverts the file (and counts every fix as skipped) when a previously
    parseable file stops parsing after the edits — the round-trip proof
    that a fix never trades a finding for a corrupt document.
    """
    edit_fixes = [fix for fix in fixes if fix.edits]
    if not edit_fixes:
        return False
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        report.skipped += len(edit_fixes)
        return False
    all_edits = [edit for fix in edit_fixes for edit in fix.edits]
    new_text, applied, _ = apply_edits(text, all_edits)
    if new_text == text:
        report.skipped += len(edit_fixes)
        return False
    if not _roundtrip_ok(path, text, new_text):
        report.skipped += len(edit_fixes)
        return False
    path.write_text(new_text, encoding="utf-8")
    for fix in edit_fixes:
        if all(edit in applied for edit in fix.edits):
            report.applied += 1
        else:
            report.skipped += 1
    report.note_changed(str(path))
    return True


def _apply_renames(fixes: list[Fix], report: FixReport) -> bool:
    progressed = False
    for fix in fixes:
        if fix.rename_to is None:
            continue
        path = Path(fix.file)
        target = path.with_name(f"{fix.rename_to}.md")
        if not path.exists() or target.exists():
            report.skipped += 1
            continue
        path.rename(target)
        report.applied += 1
        report.renamed.append((str(path), str(target)))
        report.note_changed(str(path))
        progressed = True
    return progressed


def fix_engine(engine, max_iterations: int = 10) -> FixReport:
    """Drive ``engine`` to a fixed point, applying fixes on disk.

    Each iteration lints, applies every applicable fix, and repeats until
    a lint reports no fixes (or no fix makes progress).  The returned
    report carries the final :class:`~repro.lint.engine.LintResult` so
    callers can render what remains *after* remediation.
    """
    report = FixReport()
    result = engine.lint()
    for _ in range(max_iterations):
        fixes = result.fixes
        if not fixes:
            break
        report.iterations += 1
        by_file: dict[str, list[Fix]] = {}
        for fix in fixes:
            by_file.setdefault(fix.file, []).append(fix)
        progressed = False
        for file, file_fixes in sorted(by_file.items()):
            if _apply_file_fixes(Path(file), file_fixes, report):
                progressed = True
            if _apply_renames(file_fixes, report):
                progressed = True
        if not progressed:
            break
        result = engine.lint()
    report.remaining = result
    return report


@dataclass
class CheckReport:
    """What ``--fix --check`` *would* do (dry run)."""

    pending: int = 0                     # fixes that would apply
    diffs: list[str] = field(default_factory=list)
    renamed: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.pending == 0 and not self.diffs and not self.renamed


def check_fixes(config) -> CheckReport:
    """Dry-run the fixer over a scratch copy of the corpus.

    Copies the content directory into a temp dir, runs the real fixer
    there, and reports unified diffs against the originals — the check is
    exactly as strong as ``--fix`` itself because it *is* ``--fix``.
    """
    from repro.lint.engine import LintEngine

    report = CheckReport()
    content_dir = Path(config.content_dir)
    with tempfile.TemporaryDirectory(prefix="lint-fix-check-") as scratch:
        scratch_dir = Path(scratch) / "content"
        scratch_dir.mkdir()
        originals: dict[str, str] = {}
        for source in sorted(content_dir.glob("*.md")):
            text = source.read_text(encoding="utf-8")
            originals[source.name] = text
            (scratch_dir / source.name).write_text(text, encoding="utf-8")
        # The scratch copy holds only the content corpus: the code pass
        # must stay off or its (now fixable) findings would drive the
        # fixer at the *real* source tree.
        scratch_config = replace(config, content_dir=scratch_dir,
                                 cache_dir=None, code=False,
                                 changed_only=None)
        fix_report = fix_engine(LintEngine(scratch_config))
        report.pending = fix_report.applied
        for old, new in fix_report.renamed:
            report.renamed.append((Path(old).name, Path(new).name))
        fixed = {path.name: path.read_text(encoding="utf-8")
                 for path in sorted(scratch_dir.glob("*.md"))}
        for name in sorted(set(originals) | set(fixed)):
            before = originals.get(name, "")
            after = fixed.get(name, "")
            if before == after:
                continue
            diff = difflib.unified_diff(
                before.splitlines(keepends=True),
                after.splitlines(keepends=True),
                fromfile=f"a/{name}", tofile=f"b/{name}")
            report.diffs.append("".join(diff))
    return report


def render_check_report(report: CheckReport) -> str:
    """Human-readable ``--fix --check`` output."""
    lines: list[str] = []
    for old, new in report.renamed:
        lines.append(f"rename {old} -> {new}")
    lines.extend(diff.rstrip("\n") for diff in report.diffs)
    if report.clean:
        lines.append("no fixes pending")
    else:
        lines.append(f"{report.pending} fix(es) pending in "
                     f"{len(report.diffs)} file(s)"
                     + (f", {len(report.renamed)} rename(s)"
                        if report.renamed else ""))
    return "\n".join(lines) + "\n"


def copy_corpus(source: str | Path, target: str | Path) -> Path:
    """Copy a content directory's ``*.md`` files (fixture/bench helper)."""
    source_dir, target_dir = Path(source), Path(target)
    target_dir.mkdir(parents=True, exist_ok=True)
    for path in sorted(source_dir.glob("*.md")):
        shutil.copy(path, target_dir / path.name)
    return target_dir
