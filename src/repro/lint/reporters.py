"""Reporters: text for humans, JSON for tooling, SARIF for CI annotation.

Every reporter takes the already-sorted diagnostics list from
:class:`~repro.lint.engine.LintResult` and is a pure function of it, so
text, JSON, and SARIF views of the same run always agree.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import RULES, Diagnostic, Severity
from repro.lint.engine import LintResult

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]

#: SARIF ``level`` per severity (SARIF has no "warning vs error vs info"
#: enum of its own beyond these three).
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(result: LintResult, stats: bool = False) -> str:
    """``file:line:col: severity: message [rule-id]`` per finding."""
    lines = []
    for diag in result.diagnostics:
        location = f"{diag.file}:{diag.span.line}:{diag.span.column}"
        lines.append(f"{location}: {diag.severity.value}: "
                     f"{diag.message} [{diag.rule_id}]")
    counts = result.counts
    summary = ", ".join(f"{counts[s.value]} {s.value}(s)" for s in Severity)
    lines.append(summary if result.diagnostics else f"clean ({summary})")
    if stats:
        lines.append(
            f"files: {result.stats.files_total} total, "
            f"{result.stats.files_analyzed} analyzed, "
            f"{result.stats.files_cached} cached")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult, stats: bool = False) -> str:
    payload = {
        "diagnostics": [diag.to_dict() for diag in result.diagnostics],
        "counts": result.counts,
    }
    if stats:
        payload["stats"] = {
            "files_total": result.stats.files_total,
            "files_analyzed": result.stats.files_analyzed,
            "files_cached": result.stats.files_cached,
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_result(diag: Diagnostic) -> dict:
    return {
        "ruleId": diag.rule_id,
        "level": _SARIF_LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": diag.file},
                "region": {
                    "startLine": max(diag.span.line, 1),
                    "startColumn": max(diag.span.column, 1),
                },
            },
        }],
    }


def render_sarif(result: LintResult, stats: bool = False) -> str:
    """SARIF 2.1.0; one run, one rule descriptor per registered rule."""
    run = {
        "tool": {
            "driver": {
                "name": "pdcunplugged-lint",
                "informationUri": "https://pdcunplugged.org/",
                "rules": [
                    {
                        "id": rule.id,
                        "shortDescription": {"text": rule.description},
                        "defaultConfiguration": {
                            "level": _SARIF_LEVELS[rule.severity],
                        },
                    }
                    for rule in sorted(RULES.values(), key=lambda r: r.id)
                ],
            },
        },
        "results": [_sarif_result(d) for d in result.diagnostics],
    }
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [run],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


REPORTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
