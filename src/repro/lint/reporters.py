"""Reporters: text for humans, JSON for tooling, SARIF for CI annotation.

Every reporter takes the already-sorted diagnostics list from
:class:`~repro.lint.engine.LintResult` and is a pure function of it, so
text, JSON, and SARIF views of the same run always agree.

Machine-applicable fixes travel with their findings: the text summary
counts them (``run with --fix to apply``), JSON carries a ``fixes``
array, and SARIF results attach spec ``fixes`` objects (deleted region +
inserted content) that CI annotation UIs can offer as suggested edits.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import RULES, Diagnostic, Severity, sort_key
from repro.lint.engine import LintResult
from repro.lint.fixes import Fix

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]

#: SARIF ``level`` per severity (SARIF has no "warning vs error vs info"
#: enum of its own beyond these three).
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(result: LintResult, stats: bool = False) -> str:
    """``file:line:col: severity: message [rule-id]`` per finding."""
    fixable = {fix.key for fix in result.fixes}
    lines = []
    for diag in result.diagnostics:
        location = f"{diag.file}:{diag.span.line}:{diag.span.column}"
        suffix = " (fixable)" if sort_key(diag) in fixable else ""
        lines.append(f"{location}: {diag.severity.value}: "
                     f"{diag.message} [{diag.rule_id}]{suffix}")
    counts = result.counts
    summary = ", ".join(f"{counts[s.value]} {s.value}(s)" for s in Severity)
    if result.fixable:
        summary += f"; {result.fixable} fixable (run with --fix to apply)"
    lines.append(summary if result.diagnostics else f"clean ({summary})")
    if stats:
        line = (
            f"files: {result.stats.files_total} total, "
            f"{result.stats.files_analyzed} analyzed, "
            f"{result.stats.files_cached} cached, "
            f"{result.stats.baselined} baselined finding(s)")
        if result.stats.files_skipped:
            line += f", {result.stats.files_skipped} skipped (--changed)"
        if result.stats.internal_errors:
            line += f", {result.stats.internal_errors} internal error(s)"
        lines.append(line)
    return "\n".join(lines) + "\n"


def render_json(result: LintResult, stats: bool = False) -> str:
    counts = dict(result.counts)
    counts["fixable"] = result.fixable
    payload = {
        "diagnostics": [diag.to_dict() for diag in result.diagnostics],
        "counts": counts,
        "fixes": [fix.to_dict() for fix in result.fixes],
    }
    if stats:
        payload["stats"] = {
            "files_total": result.stats.files_total,
            "files_analyzed": result.stats.files_analyzed,
            "files_cached": result.stats.files_cached,
            "files_skipped": result.stats.files_skipped,
            "baselined": result.stats.baselined,
            "internal_errors": result.stats.internal_errors,
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_region(fix: Fix) -> list[dict]:
    return [
        {
            "deletedRegion": {
                "startLine": edit.start_line,
                "startColumn": edit.start_column,
                "endLine": edit.end_line,
                "endColumn": edit.end_column,
            },
            "insertedContent": {"text": edit.replacement},
        }
        for edit in fix.edits
    ]


def _sarif_fix(fix: Fix) -> dict:
    """One SARIF ``fix`` object (2.1.0 §3.55) for one finding."""
    return {
        "description": {"text": fix.description},
        "artifactChanges": [{
            "artifactLocation": {"uri": fix.file},
            "replacements": _sarif_region(fix),
        }],
    }


def _sarif_result(diag: Diagnostic, fixes: dict[tuple, Fix]) -> dict:
    result = {
        "ruleId": diag.rule_id,
        "level": _SARIF_LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": diag.file},
                "region": {
                    "startLine": max(diag.span.line, 1),
                    "startColumn": max(diag.span.column, 1),
                },
            },
        }],
    }
    fix = fixes.get(sort_key(diag))
    if fix is not None and fix.edits:
        result["fixes"] = [_sarif_fix(fix)]
    return result


def render_sarif(result: LintResult, stats: bool = False) -> str:
    """SARIF 2.1.0; one run, one rule descriptor per registered rule."""
    fixes = {fix.key: fix for fix in result.fixes}
    run = {
        "tool": {
            "driver": {
                "name": "pdcunplugged-lint",
                "informationUri": "https://pdcunplugged.org/",
                "rules": [
                    {
                        "id": rule.id,
                        "shortDescription": {"text": rule.description},
                        "defaultConfiguration": {
                            "level": _SARIF_LEVELS[rule.severity],
                        },
                    }
                    for rule in sorted(RULES.values(), key=lambda r: r.id)
                ],
            },
        },
        "results": [_sarif_result(d, fixes) for d in result.diagnostics],
    }
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [run],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


REPORTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
